//! Offline stand-in for the `serde` crate.
//!
//! Real serde streams through a visitor-based data model; this stand-in goes
//! through an owned, self-describing [`Value`] tree instead — dramatically
//! simpler, and fully adequate for the JSON persistence BlackForest does
//! (datasets and fitted models, written once and read once).
//!
//! The [`Serialize`]/[`Deserialize`] derive macros (re-exported from
//! `serde_derive`) cover named-field structs and enums with unit, newtype,
//! tuple, and struct variants, using serde's externally-tagged enum
//! representation so the JSON output looks like what upstream serde would
//! produce.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;

/// A self-describing value tree: the interchange format between
/// [`Serialize`]/[`Deserialize`] impls and data formats such as `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (used for negative integers).
    I64(i64),
    /// Unsigned integer (used for non-negative integers; full u64 range).
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object with insertion-ordered keys.
    Map(Vec<(String, Value)>),
}

/// A deserialization error with a human-readable message.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// Builds an error from anything displayable.
    pub fn msg(m: impl std::fmt::Display) -> Error {
        Error(m.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

static NULL: Value = Value::Null;

impl Value {
    /// Looks a key up in a map value; missing keys and non-maps yield `Null`
    /// (so `Option` fields tolerate elision, as serde's `default` would).
    pub fn field(&self, key: &str) -> &Value {
        match self {
            Value::Map(pairs) => pairs
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// The value as i64, accepting any integral representation.
    pub fn as_i64(&self) -> Result<i64, Error> {
        match *self {
            Value::I64(v) => Ok(v),
            Value::U64(v) => i64::try_from(v).map_err(Error::msg),
            Value::F64(v) if v.fract() == 0.0 => Ok(v as i64),
            ref other => Err(Error(format!("expected integer, found {other:?}"))),
        }
    }

    /// The value as u64, accepting any non-negative integral representation.
    pub fn as_u64(&self) -> Result<u64, Error> {
        match *self {
            Value::U64(v) => Ok(v),
            Value::I64(v) => u64::try_from(v).map_err(Error::msg),
            Value::F64(v) if v.fract() == 0.0 && v >= 0.0 => Ok(v as u64),
            ref other => Err(Error(format!("expected unsigned integer, found {other:?}"))),
        }
    }

    /// The value as f64, accepting any numeric representation (`null` maps
    /// to NaN, mirroring serde_json's lossy round-trip of non-finite floats).
    pub fn as_f64(&self) -> Result<f64, Error> {
        match *self {
            Value::F64(v) => Ok(v),
            Value::I64(v) => Ok(v as f64),
            Value::U64(v) => Ok(v as f64),
            Value::Null => Ok(f64::NAN),
            ref other => Err(Error(format!("expected number, found {other:?}"))),
        }
    }
}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn serialize_value(&self) -> Value;
}

/// Conversion from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Deserializes `Self` from a value tree.
    fn deserialize_value(v: &Value) -> Result<Self, Error>;
}

// --- primitive impls -------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_u64()?;
                <$t>::try_from(raw).map_err(Error::msg)
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                if *self >= 0 { Value::U64(*self as u64) } else { Value::I64(*self as i64) }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_i64()?;
                <$t>::try_from(raw).map_err(Error::msg)
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64()? as f32)
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    // Static-catalogue types (counter/metric tables) carry `&'static str`
    // fields; deserializing one leaks the string, which is fine for their
    // descriptive, load-once role.
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(Error(format!("expected string, found {other:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.serialize_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(Error(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_value(&self) -> Value {
        Value::Seq(vec![self.0.serialize_value(), self.1.serialize_value()])
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) if items.len() == 2 => Ok((
                A::deserialize_value(&items[0])?,
                B::deserialize_value(&items[1])?,
            )),
            other => Err(Error(format!("expected 2-element array, found {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
                .collect(),
            other => Err(Error(format!("expected object, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_round_trips_preserve_u64_precision() {
        let big: u64 = u64::MAX - 3;
        let v = big.serialize_value();
        assert_eq!(u64::deserialize_value(&v).unwrap(), big);
    }

    #[test]
    fn option_null_round_trip() {
        let none: Option<f64> = None;
        assert_eq!(none.serialize_value(), Value::Null);
        assert_eq!(
            Option::<f64>::deserialize_value(&Value::Null).unwrap(),
            None
        );
        let some = Some(2.5f64);
        assert_eq!(
            Option::<f64>::deserialize_value(&some.serialize_value()).unwrap(),
            some
        );
    }

    #[test]
    fn missing_field_reads_as_null() {
        let v = Value::Map(vec![("a".into(), Value::U64(1))]);
        assert_eq!(*v.field("b"), Value::Null);
        assert_eq!(v.field("a").as_u64().unwrap(), 1);
    }

    #[test]
    fn btreemap_round_trip() {
        let mut m = BTreeMap::new();
        m.insert("x".to_string(), 1.5f64);
        m.insert("y".to_string(), -2.0f64);
        let v = m.serialize_value();
        assert_eq!(BTreeMap::<String, f64>::deserialize_value(&v).unwrap(), m);
    }
}
