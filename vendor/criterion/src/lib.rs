//! Offline stand-in for the `criterion` crate.
//!
//! Measures wall-clock time per iteration with a warmup pass and a bounded
//! sampling loop, printing a one-line summary per benchmark. Statistical
//! analysis, HTML reports, and regression detection of real criterion are out
//! of scope; timings are honest but simpler.
//!
//! When the binary is executed without a `--bench` argument (as a plain run
//! would) each benchmark does a single smoke iteration, so accidental
//! invocations stay fast. `cargo bench` passes `--bench`, which enables real
//! measurement.

use std::time::{Duration, Instant};

/// Top-level benchmark driver, handed to `criterion_group!` functions.
pub struct Criterion {
    measure: bool,
    filter: Option<String>,
    default_sample_size: usize,
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

/// Identifies one parameterised benchmark within a group.
pub struct BenchmarkId {
    function_name: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id like `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function_name: function_name.into(),
            parameter: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    measure: bool,
    sample_size: usize,
    /// Mean time per iteration of the measured routine, filled by `iter`.
    last_mean: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, storing the mean wall-clock duration per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if !self.measure {
            std::hint::black_box(routine());
            self.last_mean = None;
            return;
        }
        // Warmup: at least one call, up to ~200ms.
        let warm_start = Instant::now();
        let mut warm_iters = 0u32;
        while warm_iters == 0
            || (warm_start.elapsed() < Duration::from_millis(200) && warm_iters < 10)
        {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        // Measure: up to `sample_size` calls or ~1s, whichever first.
        let budget = Duration::from_secs(1);
        let start = Instant::now();
        let mut iters = 0u32;
        while iters == 0 || (start.elapsed() < budget && (iters as usize) < self.sample_size) {
            std::hint::black_box(routine());
            iters += 1;
        }
        self.last_mean = Some(start.elapsed() / iters);
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

impl Criterion {
    /// Builds a driver from the process arguments (`--bench` enables
    /// measurement; a bare non-flag argument filters benchmarks by substring).
    pub fn from_args() -> Criterion {
        let mut measure = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if arg == "--bench" {
                measure = true;
            } else if !arg.starts_with('-') {
                filter = Some(arg);
            }
        }
        Criterion {
            measure,
            filter,
            default_sample_size: 20,
        }
    }

    fn enabled(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    fn run_one(&mut self, name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
        if !self.enabled(name) {
            return;
        }
        let mut bencher = Bencher {
            measure: self.measure,
            sample_size,
            last_mean: None,
        };
        f(&mut bencher);
        match bencher.last_mean {
            Some(mean) => println!("{name:<50} time: {}", format_duration(mean)),
            None => println!("{name:<50} smoke ok"),
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let sample_size = self.default_sample_size;
        self.run_one(name, sample_size, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Prints the closing line (called by `criterion_main!`).
    pub fn final_summary(&mut self) {
        if self.measure {
            println!("benchmarks complete");
        }
    }
}

impl<'a> BenchmarkGroup<'a> {
    /// Caps the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        let sample_size = self.sample_size;
        self.criterion.run_one(&full, sample_size, &mut f);
        self
    }

    /// Runs a parameterised benchmark inside this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}/{}", self.name, id.function_name, id.parameter);
        let sample_size = self.sample_size;
        self.criterion
            .run_one(&full, sample_size, &mut |b| f(b, input));
        self
    }

    /// Finishes the group (reporting is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Bundles benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once_without_timing() {
        let mut c = Criterion {
            measure: false,
            filter: None,
            default_sample_size: 20,
        };
        let mut hits = 0;
        c.bench_function("noop", |b| b.iter(|| hits += 1));
        assert_eq!(hits, 1);
    }

    #[test]
    fn groups_and_ids_compose_names() {
        let id = BenchmarkId::new("n", 128);
        assert_eq!(id.function_name, "n");
        assert_eq!(id.parameter, "128");
        let mut c = Criterion {
            measure: false,
            filter: Some("other_bench".into()),
            default_sample_size: 20,
        };
        let mut ran = false;
        {
            let mut g = c.benchmark_group("unwanted");
            g.sample_size(10);
            g.bench_function("x", |b| b.iter(|| ran = true));
            g.finish();
        }
        assert!(!ran, "filtered-out benchmark must not run");
    }
}
