//! Offline stand-in for the `rayon` crate.
//!
//! Implements the `par_iter().map().collect()` surface BlackForest uses with
//! real data parallelism on `std::thread::scope`: the item list is split into
//! contiguous chunks, one per available core, and each chunk is mapped on its
//! own OS thread. Order is preserved. Work stealing, adaptive splitting, and
//! the broader combinator zoo of real rayon are intentionally absent.

use std::sync::Mutex;

/// Parallel iterator over an owned list of items.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A mapped parallel iterator, ready to collect.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

/// Types convertible from the ordered results of a parallel map.
pub trait FromParallelIterator<T>: Sized {
    /// Builds `Self` from results in input order.
    fn from_ordered(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered(items: Vec<T>) -> Self {
        items
    }
}

impl<T, E> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_ordered(items: Vec<Result<T, E>>) -> Self {
        items.into_iter().collect()
    }
}

impl<T: Send> ParIter<T> {
    /// Maps each item through `f` (applied in parallel at collect time).
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        F: Fn(T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

fn thread_count(n_items: usize) -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n_items)
        .max(1)
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<T, F> {
    /// Runs the map on scoped threads and collects results in input order.
    pub fn collect<C>(self) -> C
    where
        C: FromParallelIterator<R>,
    {
        let n = self.items.len();
        let threads = thread_count(n);
        if threads <= 1 {
            let f = self.f;
            return C::from_ordered(self.items.into_iter().map(f).collect());
        }

        // Tag items with their index, deal them into contiguous chunks, and
        // merge results back by tag so output order matches input order.
        let mut tagged: Vec<(usize, T)> = self.items.into_iter().enumerate().collect();
        let mut chunks: Vec<Vec<(usize, T)>> = Vec::with_capacity(threads);
        let base = n / threads;
        let extra = n % threads;
        for k in (0..threads).rev() {
            let take = base + usize::from(k < extra);
            chunks.push(tagged.split_off(tagged.len() - take));
        }

        let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
        let f = &self.f;
        std::thread::scope(|scope| {
            for chunk in chunks {
                scope.spawn(|| {
                    let done: Vec<(usize, R)> =
                        chunk.into_iter().map(|(i, item)| (i, f(item))).collect();
                    let mut guard = slots.lock().unwrap();
                    for (i, r) in done {
                        guard[i] = Some(r);
                    }
                });
            }
        });
        let results = slots
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|r| r.expect("worker thread panicked"))
            .collect();
        C::from_ordered(results)
    }
}

/// Conversion of owned collections into parallel iterators.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;

    /// Consumes `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;

    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Borrowing parallel iteration over slices and slice-like types.
pub trait IntoParallelRefIterator<'a> {
    /// Item type produced (a shared reference).
    type Item: Send;

    /// Iterates `&self` in parallel.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use super::{FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_over_range() {
        let squares: Vec<usize> = (0usize..257).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares[16], 256);
        assert_eq!(squares.len(), 257);
    }

    #[test]
    fn collect_into_result_short_circuits_value() {
        let ok: Result<Vec<usize>, String> = (0usize..10)
            .into_par_iter()
            .map(|x| {
                if x < 10 {
                    Ok(x)
                } else {
                    Err("too big".to_string())
                }
            })
            .collect();
        assert_eq!(ok.unwrap().len(), 10);
        let err: Result<Vec<usize>, String> = (0usize..10)
            .into_par_iter()
            .map(|x| {
                if x % 2 == 0 {
                    Ok(x)
                } else {
                    Err(format!("odd {x}"))
                }
            })
            .collect();
        assert!(err.is_err());
    }

    #[test]
    fn parallel_actually_runs_closures_once_each() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        let v: Vec<usize> = (0..100).collect();
        let out: Vec<usize> = v
            .par_iter()
            .map(|&x| {
                hits.fetch_add(1, Ordering::Relaxed);
                x
            })
            .collect();
        assert_eq!(out.len(), 100);
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }
}
