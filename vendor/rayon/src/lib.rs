//! Offline stand-in for the `rayon` crate.
//!
//! Implements the `par_iter().map().collect()` surface BlackForest uses with
//! real data parallelism on `std::thread::scope`. Scheduling is *dynamic*:
//! workers claim items one at a time from a shared atomic index, so a thread
//! that draws a cheap item immediately comes back for more while a thread
//! stuck on an expensive item keeps crunching. This is the work-stealing
//! property that matters for BlackForest's workloads — sweep jobs whose
//! per-item cost grows as O(k²) (NW diagonals, matmul sizes) would leave most
//! cores idle under static contiguous chunking. Order is preserved: results
//! land in slots indexed by their input position. The broader combinator zoo
//! of real rayon is intentionally absent.
//!
//! Thread count defaults to `std::thread::available_parallelism()` and can be
//! overridden with the `RAYON_NUM_THREADS` environment variable (same knob as
//! real rayon; `1` forces the sequential path, which BlackForest's
//! determinism tests and `bench_sim` baselines rely on). The variable is
//! re-read at every `collect`, so a process can switch between sequential and
//! parallel phases.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Parallel iterator over an owned list of items.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A mapped parallel iterator, ready to collect.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

/// Types convertible from the ordered results of a parallel map.
pub trait FromParallelIterator<T>: Sized {
    /// Builds `Self` from results in input order.
    fn from_ordered(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered(items: Vec<T>) -> Self {
        items
    }
}

impl<T, E> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_ordered(items: Vec<Result<T, E>>) -> Self {
        items.into_iter().collect()
    }
}

impl<T: Send> ParIter<T> {
    /// Maps each item through `f` (applied in parallel at collect time).
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        F: Fn(T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// Resolves the worker-thread count for `n_items` items: the
/// `RAYON_NUM_THREADS` override if set to a positive integer, otherwise the
/// machine's available parallelism, clamped to the item count.
fn thread_count(n_items: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let configured = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(hw);
    configured.min(n_items).max(1)
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<T, F> {
    /// Runs the map on scoped worker threads and collects results in input
    /// order. Workers dynamically claim the next unprocessed item from a
    /// shared atomic cursor, so heterogeneous per-item costs balance.
    pub fn collect<C>(self) -> C
    where
        C: FromParallelIterator<R>,
    {
        let n = self.items.len();
        let threads = thread_count(n);
        if threads <= 1 {
            let f = self.f;
            return C::from_ordered(self.items.into_iter().map(f).collect());
        }

        // Each item and each result slot is claimed by exactly one worker
        // (the atomic cursor hands out each index once), so the per-slot
        // mutexes are never contended — they exist to make the sharing safe.
        let work: Vec<Mutex<Option<T>>> = self
            .items
            .into_iter()
            .map(|t| Mutex::new(Some(t)))
            .collect();
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let f = &self.f;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = work[i].lock().unwrap().take().expect("item claimed twice");
                    let r = f(item);
                    *slots[i].lock().unwrap() = Some(r);
                });
            }
        });
        let results = slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap()
                    .expect("worker thread panicked before storing result")
            })
            .collect();
        C::from_ordered(results)
    }
}

/// Conversion of owned collections into parallel iterators.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;

    /// Consumes `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;

    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Borrowing parallel iteration over slices and slice-like types.
pub trait IntoParallelRefIterator<'a> {
    /// Item type produced (a shared reference).
    type Item: Send;

    /// Iterates `&self` in parallel.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use super::{FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    use std::thread::ThreadId;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_over_range() {
        let squares: Vec<usize> = (0usize..257).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares[16], 256);
        assert_eq!(squares.len(), 257);
    }

    #[test]
    fn collect_into_result_short_circuits_value() {
        let ok: Result<Vec<usize>, String> = (0usize..10)
            .into_par_iter()
            .map(|x| {
                if x < 10 {
                    Ok(x)
                } else {
                    Err("too big".to_string())
                }
            })
            .collect();
        assert_eq!(ok.unwrap().len(), 10);
        let err: Result<Vec<usize>, String> = (0usize..10)
            .into_par_iter()
            .map(|x| {
                if x % 2 == 0 {
                    Ok(x)
                } else {
                    Err(format!("odd {x}"))
                }
            })
            .collect();
        assert!(err.is_err());
    }

    #[test]
    fn parallel_actually_runs_closures_once_each() {
        let hits = AtomicUsize::new(0);
        let v: Vec<usize> = (0..100).collect();
        let out: Vec<usize> = v
            .par_iter()
            .map(|&x| {
                hits.fetch_add(1, Ordering::Relaxed);
                x
            })
            .collect();
        assert_eq!(out.len(), 100);
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    /// Spins for roughly `units` cost units and returns a checksum so the
    /// loop cannot be optimised away.
    fn busy(units: u64) -> u64 {
        let mut acc = 0u64;
        for i in 0..units * 400 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        acc | 1
    }

    /// Scheduler stress test: items whose cost grows as index² (the NW/matmul
    /// sweep shape). Dynamic claiming must (a) still collect in input order
    /// and (b) spread the *cost* across workers within a bounded factor of
    /// the ideal even split — static contiguous chunking fails this badly
    /// (the last chunk of an index²-cost list carries ~87% of the total on
    /// two threads).
    #[test]
    fn skewed_costs_balance_across_threads_and_preserve_order() {
        let n: u64 = 64;
        let items: Vec<u64> = (0..n).collect();
        let per_thread: Mutex<HashMap<ThreadId, u64>> = Mutex::new(HashMap::new());
        let out: Vec<u64> = items
            .par_iter()
            .map(|&i| {
                let cost = i * i;
                let sink = busy(cost);
                *per_thread
                    .lock()
                    .unwrap()
                    .entry(std::thread::current().id())
                    .or_insert(0) += cost;
                // Deterministic value; folding in `sink` (always-odd, so
                // `min(1)` is 1) keeps busy() from being elided.
                i * 10 + sink.min(1) - 1
            })
            .collect();

        // Order preserved regardless of which worker ran which item.
        assert_eq!(out, (0..n).map(|i| i * 10).collect::<Vec<_>>());

        let threads = super::thread_count(items.len());
        if threads < 2 {
            return; // single-core host: nothing to balance
        }
        let loads = per_thread.into_inner().unwrap();
        let total: u64 = (0..n).map(|i| i * i).sum();
        let max_item = (n - 1) * (n - 1);
        let ideal = total / threads as u64;
        let worst = loads.values().copied().max().unwrap();
        // Greedy dynamic scheduling bounds the busiest worker by roughly
        // ideal + max_item; allow 2x ideal of slack for OS scheduling noise.
        assert!(
            worst <= 2 * ideal + max_item,
            "worst thread carried {worst} of {total} cost units \
             (ideal {ideal}, {threads} threads, {} workers used)",
            loads.len()
        );
    }

    /// With `threads` workers and `threads - 1` items that block until the
    /// final item completes, dynamic claiming always leaves a worker free to
    /// drain the rest of the queue. Static chunk dealing deadlocks here,
    /// because the quick items are locked inside the blocked workers' chunks.
    #[test]
    fn free_workers_drain_the_queue_while_others_are_stuck() {
        let threads = super::thread_count(usize::MAX);
        if threads < 2 {
            return; // needs at least two workers to demonstrate
        }
        let n_quick = 100usize;
        let n = (threads - 1) + n_quick;
        let quick_done = AtomicUsize::new(0);
        let out: Vec<usize> = (0..n)
            .into_par_iter()
            .map(|i| {
                if i < threads - 1 {
                    // "Stuck" item: waits until every quick item has run.
                    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
                    while quick_done.load(Ordering::SeqCst) < n_quick {
                        assert!(
                            std::time::Instant::now() < deadline,
                            "quick items starved: scheduler is not dynamic"
                        );
                        std::thread::yield_now();
                    }
                } else {
                    quick_done.fetch_add(1, Ordering::SeqCst);
                }
                i
            })
            .collect();
        assert_eq!(out, (0..n).collect::<Vec<_>>());
    }
}
