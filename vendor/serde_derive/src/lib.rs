//! Derive macros for the vendored serde stand-in.
//!
//! Implemented without `syn`/`quote` (unavailable offline): the item's
//! `TokenStream` is walked directly to extract the type name plus field or
//! variant structure, and the impl is generated as a `format!`-built string
//! parsed back into tokens.
//!
//! Supported shapes — everything this workspace serializes:
//! named-field structs, and enums with unit, newtype, tuple, or struct
//! variants (externally tagged, matching upstream serde's default repr).
//! Generics, tuple structs, and `#[serde(...)]` attributes are rejected with
//! a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Data {
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Parsed {
    name: String,
    data: Data,
}

/// Derives `serde::Serialize` via the Value data model.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives `serde::Deserialize` via the Value data model.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Parsed) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(parsed) => gen(&parsed)
            .parse()
            .expect("serde_derive generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("compile_error emission failed"),
    }
}

// --- parsing ---------------------------------------------------------------

type TokenIter = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Skips outer attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
fn skip_attrs_and_vis(iter: &mut TokenIter) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the bracketed attribute body
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => return,
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Parsed, String> {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);

    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde derive does not support generic type `{name}`"
            ));
        }
    }
    let body = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            return Err(format!(
                "vendored serde derive does not support tuple struct `{name}`"
            ))
        }
        other => return Err(format!("expected `{{` after `{name}`, found {other:?}")),
    };

    let data = match kind.as_str() {
        "struct" => Data::Struct(parse_named_fields(body)?),
        "enum" => Data::Enum(parse_variants(body)?),
        other => return Err(format!("cannot derive serde impls for `{other}` items")),
    };
    Ok(Parsed { name, data })
}

/// Parses `name: Type, ...` field lists, returning the field names. Types are
/// skipped by scanning to the next comma outside `<...>` nesting.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut iter);
        let field = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after `{field}`, found {other:?}")),
        }
        let mut angle_depth = 0i32;
        for tok in iter.by_ref() {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
        fields.push(field);
    }
    Ok(fields)
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        let kind = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                iter.next();
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                iter.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Consume through the trailing comma (covers `= discriminant` too).
        for tok in iter.by_ref() {
            if let TokenTree::Punct(p) = tok {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

/// Counts the comma-separated types of a tuple variant's parenthesised list.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    for tok in body {
        any = true;
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => commas += 1,
                _ => {}
            }
        }
    }
    if any {
        commas + 1
    } else {
        0
    }
}

// --- code generation -------------------------------------------------------

fn gen_serialize(p: &Parsed) -> String {
    let name = &p.name;
    match &p.data {
        Data::Struct(fields) => {
            let pairs: String = fields
                .iter()
                .map(|f| {
                    format!("(\"{f}\".to_string(), serde::Serialize::serialize_value(&self.{f})),")
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> serde::Value {{\n\
                         serde::Value::Map(vec![{pairs}])\n\
                     }}\n\
                 }}"
            )
        }
        Data::Enum(variants) => {
            let arms: String = variants.iter().map(|v| serialize_arm(name, v)).collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn serialize_arm(name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.kind {
        VariantKind::Unit => {
            format!("{name}::{vname} => serde::Value::Str(\"{vname}\".to_string()),\n")
        }
        VariantKind::Tuple(1) => format!(
            "{name}::{vname}(f0) => serde::Value::Map(vec![(\"{vname}\".to_string(), \
                 serde::Serialize::serialize_value(f0))]),\n"
        ),
        VariantKind::Tuple(n) => {
            let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
            let items: String = binders
                .iter()
                .map(|b| format!("serde::Serialize::serialize_value({b}),"))
                .collect();
            format!(
                "{name}::{vname}({binds}) => serde::Value::Map(vec![(\"{vname}\".to_string(), \
                     serde::Value::Seq(vec![{items}]))]),\n",
                binds = binders.join(", ")
            )
        }
        VariantKind::Struct(fields) => {
            let pairs: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::serialize_value({f})),"))
                .collect();
            format!(
                "{name}::{vname} {{ {binds} }} => serde::Value::Map(vec![(\"{vname}\".to_string(), \
                     serde::Value::Map(vec![{pairs}]))]),\n",
                binds = fields.join(", ")
            )
        }
    }
}

fn gen_deserialize(p: &Parsed) -> String {
    let name = &p.name;
    match &p.data {
        Data::Struct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: serde::Deserialize::deserialize_value(v.field(\"{f}\"))?,"))
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn deserialize_value(v: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Data::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{vn}\" => Ok({name}::{vn}),\n", vn = v.name))
                .collect();
            let data_arms: String = variants
                .iter()
                .filter(|v| !matches!(v.kind, VariantKind::Unit))
                .map(|v| deserialize_data_arm(name, v))
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn deserialize_value(v: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{\n\
                         match v {{\n\
                             serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\
                                 other => Err(serde::Error(format!(\
                                     \"unknown {name} variant {{other}}\"))),\n\
                             }},\n\
                             serde::Value::Map(pairs) if pairs.len() == 1 => {{\n\
                                 let (tag, inner) = &pairs[0];\n\
                                 match tag.as_str() {{\n\
                                     {data_arms}\
                                     other => Err(serde::Error(format!(\
                                         \"unknown {name} variant {{other}}\"))),\n\
                                 }}\n\
                             }}\n\
                             other => Err(serde::Error(format!(\
                                 \"invalid {name} value {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn deserialize_data_arm(name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.kind {
        VariantKind::Unit => unreachable!("unit variants handled in the Str arm"),
        VariantKind::Tuple(1) => format!(
            "\"{vname}\" => Ok({name}::{vname}(\
                 serde::Deserialize::deserialize_value(inner)?)),\n"
        ),
        VariantKind::Tuple(n) => {
            let elems: String = (0..*n)
                .map(|i| format!("serde::Deserialize::deserialize_value(&items[{i}])?,"))
                .collect();
            format!(
                "\"{vname}\" => match inner {{\n\
                     serde::Value::Seq(items) if items.len() == {n} => \
                         Ok({name}::{vname}({elems})),\n\
                     other => Err(serde::Error(format!(\
                         \"{name}::{vname} expects {n} values, found {{other:?}}\"))),\n\
                 }},\n"
            )
        }
        VariantKind::Struct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!("{f}: serde::Deserialize::deserialize_value(inner.field(\"{f}\"))?,")
                })
                .collect();
            format!("\"{vname}\" => Ok({name}::{vname} {{ {inits} }}),\n")
        }
    }
}
