//! Offline stand-in for the `proptest` crate.
//!
//! Provides deterministic randomized property testing over the combinator
//! surface this workspace uses: range strategies, `Just`, `any::<T>()`,
//! tuples, `prop_map`, `prop_oneof!`, `prop::collection::vec`, and the
//! `proptest!` test-harness macro with `ProptestConfig::with_cases`.
//!
//! Unlike upstream proptest there is **no shrinking**: a failing case panics
//! with the case number so it can be replayed (generation is deterministic,
//! seeded from the test function's name).

pub mod strategy {
    //! Value-generation strategies.

    use rand::prelude::*;

    /// The generator handed to strategies.
    pub type TestRng = StdRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Chains a dependent strategy: `f` turns each generated value into
        /// the strategy that draws the final value (upstream proptest's
        /// monadic bind; without shrinking it is just generate-then-draw).
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy (needed by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0.new_value(rng)
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// The result of [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics on an empty arm list.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            let k = rng.random_range(0..self.arms.len());
            self.arms[k].new_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9);

    /// Types with a whole-domain default strategy (`any::<T>()`).
    pub trait ArbitrarySample {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl ArbitrarySample for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.random()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitrarySample for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    let raw: u64 = rng.random();
                    raw as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: ArbitrarySample> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy over the whole domain of `T`.
    pub fn any<T: ArbitrarySample>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::{Strategy, TestRng};
    use rand::prelude::*;

    /// Sizes accepted by [`vec`]: an exact `usize` or a half-open range.
    pub trait SizeBound {
        /// Draws a concrete length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeBound for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeBound for core::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    impl SizeBound for core::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeBound> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// comes from `len`.
    pub fn vec<S: Strategy, L: SizeBound>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

pub mod test_runner {
    //! Test-harness configuration and deterministic seeding.

    use super::strategy::TestRng;
    use rand::prelude::*;

    /// Number of cases to run per property (the only knob this workspace
    /// uses).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// How many generated cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// A deterministic generator seeded from the test name (FNV-1a), so every
    /// run of a given property replays the same cases.
    pub fn rng_for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::seed_from_u64(h)
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::rng_for_test(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a property (panics with context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate as prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn oneof_covers_all_arms() {
        let s = prop_oneof![Just(1u32), Just(2), 10u32..20];
        let mut rng = crate::test_runner::rng_for_test("oneof");
        let mut seen = [false; 3];
        for _ in 0..200 {
            match s.new_value(&mut rng) {
                1 => seen[0] = true,
                2 => seen[1] = true,
                10..=19 => seen[2] = true,
                other => panic!("impossible value {other}"),
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn vec_respects_bounds() {
        let s = crate::collection::vec(0.0f64..1.0, 3..7);
        let mut rng = crate::test_runner::rng_for_test("vec");
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
        }
        let exact = crate::collection::vec(0u64..10, 5usize);
        assert_eq!(exact.new_value(&mut rng).len(), 5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: tuple + map + range strategies compose.
        #[test]
        fn macro_generates_cases(
            (a, b) in (0u32..10, 0u32..10).prop_map(|(x, y)| (x, x + y)),
            flag in any::<bool>(),
        ) {
            prop_assert!(b >= a);
            prop_assert!(usize::from(flag) <= 1);
        }

        /// `prop_flat_map` draws the second stage from the first-stage
        /// value (here: a vector whose length equals the drawn bound).
        #[test]
        fn flat_map_feeds_dependent_strategy(
            v in (1usize..6).prop_flat_map(|n| crate::collection::vec(0u32..10, n)),
        ) {
            prop_assert!((1..6).contains(&v.len()));
        }
    }
}
