//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the narrow slice of the `rand` 0.10 API it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`], xoshiro256** seeded through
//! SplitMix64), uniform sampling over ranges ([`Rng::random_range`]), plain
//! sampling ([`Rng::random`]), and Fisher-Yates shuffling
//! ([`prelude::SliceRandom::shuffle`]).
//!
//! The stream is deterministic for a given seed (everything BlackForest
//! needs for reproducible forests) but is intentionally *not* bit-compatible
//! with upstream `rand`.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 bits of the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly over their whole domain (the unit
/// interval for floats).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value of the range from `rng`. Panics on empty ranges.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 128-bit type cannot
                    // occur here; spans wider than u64 fall back to raw bits.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = StandardSample::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit: $t = StandardSample::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Draws a value of an inferred type (`u64` words, floats in `[0, 1)`).
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, B: SampleRange<T>>(&mut self, range: B) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit: f64 = StandardSample::sample_standard(self);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Shuffling and choosing on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Fisher-Yates shuffle.
    fn shuffle<R: Rng>(&mut self, rng: &mut R);

    /// Uniformly chosen element, or `None` when empty.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `rand::prelude`.
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SampleRange, SeedableRng, SliceRandom, StandardSample};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.random_range(0u32..=5);
            assert!(i <= 5);
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
