//! Offline stand-in for the `serde_json` crate.
//!
//! Encodes and decodes the vendored serde [`Value`] data model as JSON text.
//! Covers what BlackForest persists: finite floats (non-finite become
//! `null`, as upstream serde_json does), the full `u64`/`i64` integer range,
//! strings with standard escapes, arrays, and objects.

use serde::{Deserialize, Serialize, Value};
use std::io::{Read, Write};

/// A serialization or deserialization failure.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn new(m: impl std::fmt::Display) -> Error {
        Error(m.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.0)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Error {
        Error(e.to_string())
    }
}

/// Serializes `value` as compact JSON into `writer`.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out);
    writer.write_all(out.as_bytes())?;
    writer.flush()?;
    Ok(())
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&value.serialize_value(), &mut out, 0);
    Ok(out)
}

/// Deserializes a `T` from JSON text read off `reader`.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    from_str(&text)
}

/// Deserializes a `T` from a JSON string.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::deserialize_value(&value)?)
}

// --- writing ---------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(*x, out),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(v: &Value, out: &mut String, indent: usize) {
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                out.push_str(if i > 0 { ",\n" } else { "\n" });
                push_indent(out, indent + 1);
                write_value_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Map(pairs) if !pairs.is_empty() => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                out.push_str(if i > 0 { ",\n" } else { "\n" });
                push_indent(out, indent + 1);
                write_string(k, out);
                out.push_str(": ");
                write_value_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        // `{:?}` is Rust's shortest round-trip float form and is valid JSON
        // for finite values (always contains '.' or 'e').
        out.push_str(&format!("{x:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parsing ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected byte '{}' at {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or ']', found '{}' at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            pairs.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(pairs));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}', found '{}' at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => s.push(self.unicode_escape()?),
                        other => {
                            return Err(Error::new(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, Error> {
        let hi = self.hex4()?;
        let code = if (0xD800..0xDC00).contains(&hi) {
            // surrogate pair: expect \uXXXX low half
            if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                return Err(Error::new("unpaired surrogate in \\u escape"));
            }
            self.pos += 2;
            let lo = self.hex4()?;
            0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00) & 0x3FF)
        } else {
            hi
        };
        char::from_u32(code).ok_or_else(|| Error::new("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        self.pos += 4;
        let text = std::str::from_utf8(chunk).map_err(Error::new)?;
        u32::from_str_radix(text, 16).map_err(Error::new)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::new)?;
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|e| Error::new(format!("invalid number '{text}': {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_compound_value() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("fig \"2\"\n".into())),
            ("seed".into(), Value::U64(u64::MAX - 7)),
            ("delta".into(), Value::I64(-42)),
            ("score".into(), Value::F64(0.123456789012345)),
            (
                "rows".into(),
                Value::Seq(vec![Value::Bool(true), Value::Null, Value::F64(1e300)]),
            ),
            ("empty".into(), Value::Seq(vec![])),
        ]);
        let text = {
            let mut s = String::new();
            write_value(&v, &mut s);
            s
        };
        assert_eq!(parse_value(&text).unwrap(), v);
    }

    #[test]
    fn round_trip_pretty() {
        let v = Value::Map(vec![
            ("a".into(), Value::Seq(vec![Value::U64(1), Value::U64(2)])),
            ("b".into(), Value::Map(vec![("c".into(), Value::Null)])),
        ]);
        let pretty = to_string_pretty(&Helper(v.clone())).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    struct Helper(Value);
    impl Serialize for Helper {
        fn serialize_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut s = String::new();
        write_value(&Value::F64(f64::NAN), &mut s);
        assert_eq!(s, "null");
    }

    #[test]
    fn whitespace_and_escapes_parse() {
        let v = parse_value(" { \"k\" : [ 1 , -2.5e3 , \"\\u0041\\t\" ] } ").unwrap();
        assert_eq!(
            v,
            Value::Map(vec![(
                "k".into(),
                Value::Seq(vec![
                    Value::U64(1),
                    Value::F64(-2500.0),
                    Value::Str("A\t".into())
                ])
            )])
        );
    }

    #[test]
    fn writer_reader_through_io() {
        let mut buf: Vec<u8> = Vec::new();
        to_writer(&mut buf, &vec![1.5f64, 2.5, -3.0]).unwrap();
        let back: Vec<f64> = from_reader(&buf[..]).unwrap();
        assert_eq!(back, vec![1.5, 2.5, -3.0]);
    }
}
