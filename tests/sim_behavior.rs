//! Integration tests of simulator behaviour at the application level:
//! counter consistency, scaling laws, and cross-architecture contrasts the
//! paper's analyses depend on.

use blackforest_suite::gpu_sim::GpuConfig;
use blackforest_suite::kernels::matmul::{matmul_application, matmul_naive_application};
use blackforest_suite::kernels::nw::nw_application;
use blackforest_suite::kernels::reduce::{reduce_application, reduce_full, ReduceVariant};
use proptest::prelude::*;

#[test]
fn counter_identities_hold_for_all_workloads() {
    let gpu = GpuConfig::gtx580();
    let runs = [
        reduce_application(ReduceVariant::Reduce1, 1 << 16, 256)
            .profile(&gpu)
            .unwrap(),
        matmul_application(128).profile(&gpu).unwrap(),
        nw_application(128, 10).profile(&gpu).unwrap(),
    ];
    for run in &runs {
        let c = &run.counters;
        // Issued >= executed (replays only add).
        assert!(
            c.get("inst_issued").unwrap() >= c.get("inst_executed").unwrap(),
            "{}",
            run.kernel
        );
        // L1 hits + misses account for all load transactions on Fermi.
        let hits = c.get("l1_global_load_hit").unwrap();
        let misses = c.get("l1_global_load_miss").unwrap();
        let trans = c.get("global_load_transaction").unwrap();
        assert!((hits + misses - trans).abs() < 1e-6, "{}", run.kernel);
        // Fractions are fractions.
        let occ = c.get("achieved_occupancy").unwrap();
        assert!((0.0..=1.0).contains(&occ), "{}: occ {occ}", run.kernel);
        let wee = c.get("warp_execution_efficiency").unwrap();
        assert!((0.0..=100.0).contains(&wee), "{}", run.kernel);
        // Replay overheads are nonnegative.
        assert!(c.get("inst_replay_overhead").unwrap() >= 0.0);
        // Divergent branches never exceed branches.
        assert!(c.get("divergent_branch").unwrap() <= c.get("branch").unwrap());
    }
}

#[test]
fn execution_time_scales_superlinearly_for_mm_and_roughly_linearly_for_reduce() {
    let gpu = GpuConfig::gtx580();
    let t_mm_1 = matmul_application(128).profile(&gpu).unwrap().time_ms;
    let t_mm_4 = matmul_application(512).profile(&gpu).unwrap().time_ms;
    // 4x size => 64x flops; allow generous slack for overheads.
    assert!(
        t_mm_4 / t_mm_1 > 16.0,
        "MM scaling ratio {}",
        t_mm_4 / t_mm_1
    );

    let t_r_1 = reduce_application(ReduceVariant::Reduce2, 1 << 18, 256)
        .profile(&gpu)
        .unwrap()
        .time_ms;
    let t_r_4 = reduce_application(ReduceVariant::Reduce2, 1 << 20, 256)
        .profile(&gpu)
        .unwrap()
        .time_ms;
    let ratio = t_r_4 / t_r_1;
    assert!(ratio > 1.5 && ratio < 8.0, "reduce scaling ratio {ratio}");
}

#[test]
fn optimization_ladder_monotone_for_large_reductions() {
    // Each tutorial step should not make things (much) slower; the big
    // jumps (divergence fix, conflict fix, cascading) must show clearly.
    let gpu = GpuConfig::gtx580();
    let n = 1 << 21;
    let times: Vec<f64> = ReduceVariant::ALL
        .iter()
        .map(|&v| reduce_application(v, n, 256).profile(&gpu).unwrap().time_ms)
        .collect();
    // reduce0 (divergent) slower than reduce2 (sequential).
    assert!(times[0] > times[2], "{times:?}");
    // reduce1 (conflicts) slower than reduce2.
    assert!(times[1] > times[2], "{times:?}");
    // reduce6 fastest overall.
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!((times[6] - min).abs() < 1e-9, "{times:?}");
}

#[test]
fn fermi_kepler_contrast_matches_the_papers_mechanism() {
    let fermi = GpuConfig::gtx580();
    let kepler = GpuConfig::k20m();
    let f = nw_application(256, 10).profile(&fermi).unwrap();
    let k = nw_application(256, 10).profile(&kepler).unwrap();
    // Kepler: no L1 global-load counters at all (bypassed).
    assert!(f.counters.contains("l1_global_load_miss"));
    assert!(!k.counters.contains("l1_global_load_miss"));
    // Kepler exposes split shared replay counters instead of the Fermi
    // aggregate.
    assert!(!f.counters.contains("shared_load_replay"));
    assert!(k.counters.contains("shared_load_replay"));
    assert!(f.counters.contains("l1_shared_bank_conflict"));
    // Both see NW's bank conflicts.
    assert!(f.counters.get("l1_shared_bank_conflict").unwrap() > 0.0);
    assert!(k.counters.get("shared_load_replay").unwrap() > 0.0);
}

#[test]
fn naive_mm_moves_more_data_than_tiled() {
    let gpu = GpuConfig::gtx580();
    let tiled = matmul_application(256).profile(&gpu).unwrap();
    let naive = matmul_naive_application(256).profile(&gpu).unwrap();
    assert!(
        naive.counters.get("gld_request").unwrap()
            > 4.0 * tiled.counters.get("gld_request").unwrap()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// All seven functional reduction variants compute the sum of random
    /// inputs (within f32 accumulation tolerance).
    #[test]
    fn reductions_compute_sums_of_random_data(
        data in prop::collection::vec(0.0f32..10.0, 64..2048),
        threads_pow in 6u32..9,
    ) {
        let threads = 1usize << threads_pow;
        let expect: f64 = data.iter().map(|&v| v as f64).sum();
        for v in ReduceVariant::ALL {
            let got = reduce_full(v, &data, threads) as f64;
            let rel = (got - expect).abs() / expect.max(1.0);
            prop_assert!(rel < 1e-3, "{}: {got} vs {expect}", v.name());
        }
    }

    /// Simulated time is monotone (within tolerance) in the array length
    /// for the same kernel and block size.
    #[test]
    fn reduce_time_monotone_in_size(e1 in 13u32..17) {
        let gpu = GpuConfig::gtx580();
        let t_small = reduce_application(ReduceVariant::Reduce2, 1 << e1, 256)
            .profile(&gpu).unwrap().time_ms;
        let t_big = reduce_application(ReduceVariant::Reduce2, 1 << (e1 + 2), 256)
            .profile(&gpu).unwrap().time_ms;
        prop_assert!(t_big > t_small);
    }
}
