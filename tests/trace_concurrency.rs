//! Tracing vs parallelism determinism, two guarantees in one run:
//!
//! 1. **Thread-count independence.** The same quick collection traced under
//!    `RAYON_NUM_THREADS=1` and `=4` yields the *identical* span multiset
//!    and topology — parallel scheduling may reorder spans but can never
//!    lose, duplicate, or re-parent one. Cache hit/miss counters are only
//!    compared as a sum (racing workers may double-compute a launch, so the
//!    split is scheduling-dependent, but every lookup is still counted), and
//!    the per-compile engine-phase spans — emitted once per cache miss — are
//!    held to consistency (all four phases equal, parallel ≥ sequential)
//!    rather than exact equality, for the same reason.
//!
//! 2. **Observer effect: none.** Running the full quick pipeline with
//!    tracing enabled produces bit-for-bit the same simulated counters and
//!    predictions as with tracing disabled.
//!
//! One `#[test]` only: the run mutates `RAYON_NUM_THREADS`, and a sibling
//! test in this binary would race on the environment.

use blackforest_suite::blackforest::collect::{collect_reduce, CollectOptions};
use blackforest_suite::blackforest::model::ModelConfig;
use blackforest_suite::blackforest::{BlackForest, Workload};
use blackforest_suite::gpu_sim::GpuConfig;
use blackforest_suite::kernels::reduce::ReduceVariant;

fn quick_collect() -> blackforest_suite::blackforest::Dataset {
    let sizes: Vec<usize> = (14..=17).map(|e| 1usize << e).collect();
    let threads = [64usize, 256];
    collect_reduce(
        &GpuConfig::gtx580(),
        ReduceVariant::Reduce6,
        &sizes,
        &threads,
        &CollectOptions::default(),
    )
    .expect("collect_reduce")
}

/// Spans emitted once per engine *compile* — i.e. per memo-cache miss. The
/// hit/miss split is scheduling-dependent (racing workers may double-compute
/// a launch, see the module comment), so these counts can legitimately
/// differ across thread counts; they are compared for internal consistency
/// instead of exact equality.
const COMPILE_PHASES: [&str; 4] = ["trace_walk", "coalesce", "banks", "issue_loop"];

#[test]
fn tracing_is_deterministic_across_threads_and_invisible_to_results() {
    // --- 1. Span multiset + topology survive any thread count. -----------
    let mut runs = Vec::new();
    for threads in ["1", "4"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        let (ds, mut trace) = bf_trace::capture(quick_collect);
        let defects = trace.validate();
        assert!(
            defects.is_empty(),
            "{threads}-thread trace has defects: {defects:?}"
        );
        let cache_events: u64 = trace
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with("sim_cache."))
            .map(|(_, v)| v)
            .sum();
        // Per-compile phase spans ride with the misses: strip them (they
        // are leaves, so no child is re-parented) and keep their counts
        // aside for the consistency check below.
        let compiles: Vec<u64> = COMPILE_PHASES
            .iter()
            .map(|p| trace.spans.iter().filter(|s| s.name == *p).count() as u64)
            .collect();
        trace.spans.retain(|s| !COMPILE_PHASES.contains(&s.name));
        runs.push((
            threads,
            ds,
            trace.multiset(),
            trace.topology(),
            cache_events,
            compiles,
        ));
    }
    std::env::remove_var("RAYON_NUM_THREADS");

    let (_, seq_ds, seq_multiset, seq_topology, seq_events, seq_compiles) = &runs[0];
    assert!(
        seq_compiles[0] > 0 && seq_compiles.iter().all(|c| c == &seq_compiles[0]),
        "every compile emits all four phase spans exactly once: {seq_compiles:?}"
    );
    for (threads, ds, multiset, topology, events, compiles) in &runs[1..] {
        assert_eq!(
            multiset, seq_multiset,
            "span multiset differs between 1 and {threads} threads"
        );
        assert_eq!(
            topology, seq_topology,
            "span topology differs between 1 and {threads} threads"
        );
        // Every cache lookup is a hit or a miss; the sum is the launch
        // count and must not depend on scheduling.
        assert_eq!(
            events, seq_events,
            "total cache events differ between 1 and {threads} threads"
        );
        // Compile phases stay mutually consistent, and a parallel run can
        // only add double-computed compiles, never lose one.
        assert!(
            compiles.iter().all(|c| c == &compiles[0]),
            "{threads}-thread run has unbalanced compile phases: {compiles:?}"
        );
        assert!(
            compiles[0] >= seq_compiles[0],
            "{threads}-thread run lost compiles: {} < {}",
            compiles[0],
            seq_compiles[0]
        );
        // The data itself is identical too, of course.
        assert_eq!(ds.response, seq_ds.response);
    }
    // Sanity: the runs actually traced something.
    assert!(
        seq_multiset.get("launch").copied().unwrap_or(0) > 0,
        "expected launch spans in {seq_multiset:?}"
    );

    // --- 2. Tracing on vs off: results are bit-exact. ---------------------
    let analyze = || {
        let bf = BlackForest::new(GpuConfig::gtx580()).with_config(ModelConfig::quick(2016));
        let sizes: Vec<usize> = (14..=17).map(|e| 1usize << e).collect();
        let report = bf
            .analyze(Workload::Reduce(ReduceVariant::Reduce6), &sizes)
            .expect("analyze");
        let predictions: Vec<u64> = sizes
            .iter()
            .map(|&s| {
                report
                    .predictor
                    .predict(&[s as f64, 256.0])
                    .expect("predict")
                    .to_bits()
            })
            .collect();
        let responses: Vec<u64> = report
            .dataset
            .response
            .iter()
            .map(|r| r.to_bits())
            .collect();
        (predictions, responses)
    };

    assert!(!bf_trace::enabled(), "tracing must start disabled");
    let untraced = analyze();
    let (traced, trace) = bf_trace::capture(analyze);
    assert!(
        !trace.spans.is_empty(),
        "the traced run must actually record spans"
    );
    assert_eq!(
        untraced.0, traced.0,
        "enabling tracing changed a prediction bit"
    );
    assert_eq!(
        untraced.1, traced.1,
        "enabling tracing changed a simulated counter bit"
    );
}
