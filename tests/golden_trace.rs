//! Golden end-to-end trace snapshot: runs the quick training pipeline (the
//! same configuration `blackforest train --quick` uses, seed 2016) on the
//! reduce1 and stencil workloads under a trace capture, and pins
//!
//! * the exact span topology (names, nesting, counts — never durations),
//! * the deterministic trace counters, and
//! * the final prediction vector, down to the f64 bit pattern,
//!
//! against `tests/golden/pipeline_trace.txt`. Any drift — a renamed span, a
//! lost launch, a changed prediction — fails with a line-level diff. To
//! accept intentional changes, regenerate with:
//!
//! ```text
//! BF_UPDATE_GOLDEN=1 cargo test --test golden_trace
//! ```
//!
//! This file holds exactly one `#[test]` because it pins `RAYON_NUM_THREADS`
//! for the duration of the run (determinism of the cache counters); a second
//! test in the same binary would race on the environment.

use blackforest_suite::blackforest::model::ModelConfig;
use blackforest_suite::blackforest::{BlackForest, Workload};
use blackforest_suite::gpu_sim::GpuConfig;
use blackforest_suite::kernels::reduce::ReduceVariant;
use std::fmt::Write as _;
use std::path::PathBuf;

/// The CLI's `--quick` sweep for each golden workload (see
/// `default_sizes` in `crates/cli/src/main.rs`).
fn quick_sizes(workload: Workload) -> Vec<usize> {
    match workload {
        Workload::Reduce(_) => (14..=18).map(|e| 1usize << e).collect(),
        Workload::Stencil => (2..=16).step_by(2).map(|k| k * 16).collect(),
        _ => unreachable!("golden suite covers reduce1 and stencil"),
    }
}

/// Runs one quick analysis under a trace capture and renders its golden
/// section: topology, counters, and the per-size prediction vector.
fn golden_section(workload: Workload) -> String {
    let bf = BlackForest::new(GpuConfig::gtx580()).with_config(ModelConfig::quick(2016));
    let sizes = quick_sizes(workload);
    let (report, trace) = bf_trace::capture(|| {
        bf.analyze(workload, &sizes)
            .unwrap_or_else(|e| panic!("analyze {}: {e}", workload.name()))
    });

    let defects = trace.validate();
    assert!(
        defects.is_empty(),
        "{} trace has structural defects: {defects:?}",
        workload.name()
    );

    let mut out = String::new();
    writeln!(out, "== workload: {} ==", workload.name()).unwrap();
    writeln!(out, "-- span topology --").unwrap();
    out.push_str(&trace.topology());
    writeln!(out, "-- counters --").unwrap();
    for (name, value) in &trace.counters {
        writeln!(out, "{name} = {value}").unwrap();
    }
    writeln!(out, "-- predictions --").unwrap();
    for &size in &sizes {
        let chars: Vec<f64> = workload
            .characteristics()
            .iter()
            .enumerate()
            .map(|(i, name)| {
                if i == 0 {
                    size as f64
                } else {
                    Workload::default_characteristic(name)
                        .unwrap_or_else(|| panic!("no default for characteristic {name}"))
                }
            })
            .collect();
        let ms = report
            .predictor
            .predict(&chars)
            .unwrap_or_else(|e| panic!("predict size {size}: {e}"));
        writeln!(out, "size {size}: {ms:.9e} ms (bits {:016x})", ms.to_bits()).unwrap();
    }
    out
}

/// First differing line between expected and actual, rendered for humans.
fn first_diff(expected: &str, actual: &str) -> String {
    let mut exp = expected.lines();
    let mut act = actual.lines();
    let mut line_no = 1usize;
    loop {
        match (exp.next(), act.next()) {
            (Some(e), Some(a)) if e == a => line_no += 1,
            (Some(e), Some(a)) => {
                return format!("line {line_no}:\n  expected: {e}\n  actual:   {a}")
            }
            (Some(e), None) => return format!("line {line_no}: actual ends, expected: {e}"),
            (None, Some(a)) => return format!("line {line_no}: expected ends, actual: {a}"),
            (None, None) => return "no textual difference (check trailing whitespace)".into(),
        }
    }
}

#[test]
fn quick_pipeline_trace_and_predictions_match_golden() {
    // One worker: cache hit/miss order — and therefore the counter values
    // pinned below — is only deterministic sequentially. (Span topology is
    // thread-count-independent; tests/trace_concurrency.rs proves that.)
    std::env::set_var("RAYON_NUM_THREADS", "1");

    let mut actual = String::from(
        "# Golden pipeline trace: quick train (seed 2016) on gtx580.\n\
         # Regenerate with: BF_UPDATE_GOLDEN=1 cargo test --test golden_trace\n",
    );
    actual.push_str(&golden_section(Workload::Reduce(ReduceVariant::Reduce1)));
    actual.push_str(&golden_section(Workload::Stencil));

    std::env::remove_var("RAYON_NUM_THREADS");

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("pipeline_trace.txt");
    if std::env::var_os("BF_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        eprintln!("golden file regenerated: {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden file {} ({e}); run with BF_UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "pipeline trace drifted from {}.\nFirst difference at {}\n\n\
         If the change is intentional, regenerate with:\n    \
         BF_UPDATE_GOLDEN=1 cargo test --test golden_trace\n\n\
         full actual output:\n{actual}",
        path.display(),
        first_diff(&expected, &actual),
    );
}
