//! Golden snapshots for the GPU zoo: every preset's machine-characteristic
//! table (the paper's Table 2 rows) and, for one representative of each
//! architecture generation, the full profiled counter vector of a quick
//! reduce1 run — pinned down to the f64 bit pattern against
//! `tests/golden/zoo_presets.txt`.
//!
//! This is the tripwire for two different kinds of drift:
//!
//! * a preset's geometry silently changing (the metric tables), and
//! * the *counter surface* of an architecture changing — a counter
//!   appearing, vanishing, or moving value on any of the three
//!   global-memory paths (the per-generation reduce1 vectors).
//!
//! To accept intentional changes, regenerate with:
//!
//! ```text
//! BF_UPDATE_GOLDEN=1 cargo test --test golden_zoo
//! ```

use blackforest_suite::gpu_sim::{profile_kernel, GpuConfig};
use blackforest_suite::kernels::reduce::{reduce_application, ReduceVariant};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Renders one preset's machine-metric table, one `name = value` row per
/// metric in catalog order, with exact bits for the float-valued rows.
fn metrics_section(gpu: &GpuConfig) -> String {
    let mut out = String::new();
    writeln!(out, "== preset: {} ({}) ==", gpu.name, gpu.arch.name()).unwrap();
    for m in gpu.machine_metrics() {
        writeln!(
            out,
            "{} = {:.6e} (bits {:016x})  # {}",
            m.name,
            m.value,
            m.value.to_bits(),
            m.meaning
        )
        .unwrap();
    }
    out
}

/// Renders the full profiled counter vector of a quick reduce1 launch on
/// one GPU — every counter the architecture exposes, in schema order.
fn reduce1_section(gpu: &GpuConfig) -> String {
    let app = reduce_application(ReduceVariant::Reduce1, 1 << 14, 256);
    let run = profile_kernel(gpu, app.launches[0].as_ref())
        .unwrap_or_else(|e| panic!("profile reduce1 on {}: {e}", gpu.name));
    let mut out = String::new();
    writeln!(
        out,
        "== reduce1 counters: {} ({}) ==",
        gpu.name,
        gpu.arch.name()
    )
    .unwrap();
    writeln!(
        out,
        "time_ms = {:.9e} (bits {:016x})",
        run.time_ms,
        run.time_ms.to_bits()
    )
    .unwrap();
    for name in run.counters.names() {
        let v = run.counters.get(name).unwrap();
        writeln!(out, "{name} = {v:.9e} (bits {:016x})", v.to_bits()).unwrap();
    }
    out
}

/// First differing line between expected and actual, rendered for humans.
fn first_diff(expected: &str, actual: &str) -> String {
    let mut exp = expected.lines();
    let mut act = actual.lines();
    let mut line_no = 1usize;
    loop {
        match (exp.next(), act.next()) {
            (Some(e), Some(a)) if e == a => line_no += 1,
            (Some(e), Some(a)) => {
                return format!("line {line_no}:\n  expected: {e}\n  actual:   {a}")
            }
            (Some(e), None) => return format!("line {line_no}: actual ends, expected: {e}"),
            (None, Some(a)) => return format!("line {line_no}: expected ends, actual: {a}"),
            (None, None) => return "no textual difference (check trailing whitespace)".into(),
        }
    }
}

#[test]
fn zoo_presets_and_per_arch_counter_vectors_match_golden() {
    let mut actual = String::from(
        "# Golden GPU-zoo snapshot: machine metrics for every preset, plus the\n\
         # reduce1 (n=16384, 256 threads) counter vector for one representative\n\
         # of each architecture generation.\n\
         # Regenerate with: BF_UPDATE_GOLDEN=1 cargo test --test golden_zoo\n",
    );
    for gpu in GpuConfig::presets() {
        actual.push_str(&metrics_section(&gpu));
    }
    for gpu in GpuConfig::arch_representatives() {
        actual.push_str(&reduce1_section(&gpu));
    }

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("zoo_presets.txt");
    if std::env::var_os("BF_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        eprintln!("golden file regenerated: {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden file {} ({e}); run with BF_UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "zoo snapshot drifted from {}.\nFirst difference at {}\n\n\
         If the change is intentional, regenerate with:\n    \
         BF_UPDATE_GOLDEN=1 cargo test --test golden_zoo\n\n\
         full actual output:\n{actual}",
        path.display(),
        first_diff(&expected, &actual),
    );
}
