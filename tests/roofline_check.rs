//! Cross-validation of the simulator against first-principles roofline
//! bounds: simulated times must respect the device's peak-compute and
//! peak-bandwidth ceilings, and bandwidth-bound kernels must sit near the
//! bandwidth roof. This guards the wave-time model against regressions that
//! unit tests on individual components would miss.

use blackforest_suite::gpu_sim::GpuConfig;
use blackforest_suite::kernels::matmul::matmul_application;
use blackforest_suite::kernels::reduce::{reduce_application, ReduceVariant};
use blackforest_suite::kernels::stencil::stencil_application;

/// Device peak warp-instruction throughput per second for the ALU pipeline.
fn peak_warp_instr_per_s(gpu: &GpuConfig) -> f64 {
    gpu.alu_throughput * gpu.num_sms as f64 * gpu.clock_ghz * 1e9
}

#[test]
fn mm_time_respects_compute_roof() {
    // The simulated time can never beat the ALU pipeline's ability to issue
    // the kernel's arithmetic instructions.
    let gpu = GpuConfig::gtx580();
    for n in [256usize, 512, 1024] {
        let run = matmul_application(n).profile(&gpu).unwrap();
        // FMA count: one warp instruction per (warp, k); 8 warps per block.
        let warp_fmas = (n * n / 32) as f64 * n as f64 / 16.0; // k-steps x warps
        let compute_floor_s = warp_fmas / peak_warp_instr_per_s(&gpu);
        let t = run.time_ms / 1e3;
        assert!(
            t >= compute_floor_s * 0.9,
            "n={n}: simulated {t:.6}s below compute floor {compute_floor_s:.6}s"
        );
    }
}

#[test]
fn reduce_time_respects_bandwidth_roof_and_approaches_it() {
    let gpu = GpuConfig::gtx580();
    let n = 1 << 23; // 8M floats = 32 MiB, far beyond L2
    let run = reduce_application(ReduceVariant::Reduce6, n, 256)
        .profile(&gpu)
        .unwrap();
    let bytes = (n * 4) as f64;
    let bw_floor_s = bytes / (gpu.mem_bandwidth_gbps * 1e9);
    let t = run.time_ms / 1e3;
    // Never faster than moving the input once at peak bandwidth...
    assert!(
        t >= bw_floor_s,
        "time {t} below bandwidth floor {bw_floor_s}"
    );
    // ...and for the fully optimised kernel, within 5x of that roof (the
    // real reduce6 reaches ~80% of peak; our model should be in the same
    // regime, not orders of magnitude off).
    assert!(
        t <= 5.0 * bw_floor_s,
        "reduce6 time {t} too far above the bandwidth roof {bw_floor_s}"
    );
}

#[test]
fn stencil_time_respects_bandwidth_roof() {
    let gpu = GpuConfig::gtx580();
    let n = 2048usize; // 16 MiB in + 16 MiB out
    let run = stencil_application(n, 1).profile(&gpu).unwrap();
    let bytes = (n * n * 8) as f64; // one read + one write per cell minimum
    let bw_floor_s = bytes / (gpu.mem_bandwidth_gbps * 1e9);
    let t = run.time_ms / 1e3;
    assert!(t >= bw_floor_s * 0.9, "time {t} below floor {bw_floor_s}");
    assert!(
        t <= 6.0 * bw_floor_s,
        "time {t} far above floor {bw_floor_s}"
    );
}

#[test]
fn throughput_counters_never_exceed_device_bandwidth() {
    let gpu = GpuConfig::gtx580();
    for run in [
        reduce_application(ReduceVariant::Reduce6, 1 << 22, 256)
            .profile(&gpu)
            .unwrap(),
        matmul_application(1024).profile(&gpu).unwrap(),
        stencil_application(1024, 1).profile(&gpu).unwrap(),
    ] {
        for name in ["gld_throughput", "gst_throughput", "l2_read_throughput"] {
            let v = run.counters.get(name).unwrap();
            // L2-level throughput can exceed DRAM bandwidth via cache hits,
            // but not by more than the L2's plausible advantage (~4x here).
            assert!(
                v <= 4.0 * gpu.mem_bandwidth_gbps,
                "{}: {name} = {v} GB/s vs device {} GB/s",
                run.kernel,
                gpu.mem_bandwidth_gbps
            );
        }
        // DRAM-level traffic per unit time is a hard cap.
        let dram_gbps = (run.counters.get("dram_read_transactions").unwrap()
            + run.counters.get("dram_write_transactions").unwrap())
            * 32.0
            / (run.time_ms / 1e3)
            / 1e9;
        assert!(
            dram_gbps <= gpu.mem_bandwidth_gbps * 1.01,
            "{}: DRAM throughput {dram_gbps} exceeds peak",
            run.kernel
        );
    }
}

#[test]
fn kepler_mm_is_not_slower_than_fermi_at_scale() {
    // K20m has ~3x the FLOP rate and similar bandwidth: big MM should not
    // run slower than on the GTX580.
    let n = 1024;
    let f = matmul_application(n).profile(&GpuConfig::gtx580()).unwrap();
    let k = matmul_application(n).profile(&GpuConfig::k20m()).unwrap();
    assert!(
        k.time_ms <= f.time_ms * 1.6,
        "K20m {} ms vs GTX580 {} ms",
        k.time_ms,
        f.time_ms
    );
}
