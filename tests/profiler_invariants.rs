//! Property tests of the nvprof-style metric derivation: for arbitrary
//! (physically plausible) raw event counts, the derived counters must obey
//! their defining identities on both architectures.

use blackforest_suite::gpu_sim::counters::RawEvents;
use blackforest_suite::gpu_sim::profiler::derive_counters;
use blackforest_suite::gpu_sim::{estimate_power, GpuConfig, PowerModel};
use proptest::prelude::*;

/// A plausible RawEvents: issued >= executed, hits+misses = transactions,
/// l2 >= dram, positive time.
fn events_strategy() -> impl Strategy<Value = RawEvents> {
    (
        1.0e3f64..1.0e8, // inst_executed
        0.0f64..0.5,     // replay fraction
        0.0f64..1.0e6,   // gld_request
        0.0f64..1.0e6,   // gst_request
        0.0f64..1.0,     // l1 hit ratio
        1.0f64..8.0,     // transactions per request
        0.0f64..1.0,     // l2 hit ratio
        1.0e-6f64..1.0,  // time seconds
        1.0e3f64..1.0e9, // elapsed cycles
    )
        .prop_map(
            |(exec, replay, gld, gst, l1hit, tpr, l2hit, time, cycles)| {
                let load_trans = gld * tpr;
                let l1_hits = load_trans * l1hit;
                let l1_misses = load_trans - l1_hits;
                let l2_reads = l1_misses * 4.0;
                RawEvents {
                    inst_executed: exec,
                    inst_issued: exec * (1.0 + replay),
                    thread_inst_executed: exec * 24.0,
                    gld_request: gld,
                    gst_request: gst,
                    gld_requested_bytes: gld * 128.0,
                    gst_requested_bytes: gst * 128.0,
                    global_load_transactions: load_trans,
                    global_store_transactions: gst,
                    l1_global_load_hit: l1_hits,
                    l1_global_load_miss: l1_misses,
                    l2_read_transactions: l2_reads,
                    l2_write_transactions: gst * 4.0,
                    l2_read_hits: l2_reads * l2hit,
                    dram_read_transactions: l2_reads * (1.0 - l2hit),
                    dram_write_transactions: gst * 4.0,
                    shared_load: exec * 0.1,
                    shared_store: exec * 0.05,
                    shared_load_replay: exec * 0.01,
                    shared_store_replay: exec * 0.005,
                    branch: exec * 0.05,
                    divergent_branch: exec * 0.01,
                    active_warp_cycles: cycles * 10.0,
                    active_cycles: cycles,
                    ldst_busy_cycles: cycles * 0.3,
                    issue_slots: cycles * 2.0,
                    warps_launched: 1000.0,
                    blocks_launched: 100.0,
                    elapsed_cycles: cycles,
                    time_seconds: time,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn derived_counters_obey_identities(ev in events_strategy()) {
        for gpu in [GpuConfig::gtx580(), GpuConfig::k20m()] {
            let cs = derive_counters(&gpu, &ev);
            // Bounded percentages and ratios.
            for name in ["issue_slot_utilization", "warp_execution_efficiency"] {
                let v = cs.get(name).unwrap();
                prop_assert!((0.0..=100.0).contains(&v), "{name} = {v}");
            }
            let occ = cs.get("achieved_occupancy").unwrap();
            prop_assert!((0.0..=1.0).contains(&occ));
            // Replay overheads are consistent with issue/exec counts.
            let iro = cs.get("inst_replay_overhead").unwrap();
            prop_assert!((0.0..=0.5 + 1e-9).contains(&iro));
            let sro = cs.get("shared_replay_overhead").unwrap();
            prop_assert!(sro >= 0.0);
            prop_assert!(sro <= iro + 0.2); // shared replays are a subset-ish
            // Requested throughput never exceeds achieved for these inputs
            // (128 requested bytes vs >= 1 transaction of >= 32B each).
            let req = cs.get("gld_requested_throughput").unwrap();
            let ach = cs.get("gld_throughput").unwrap();
            if gpu.l1_caches_globals {
                prop_assert!(ach >= req * 0.99 - 1e-9);
            }
            // Fermi-only counters appear on Fermi only.
            prop_assert_eq!(
                cs.contains("l1_global_load_hit"),
                gpu.l1_caches_globals
            );
        }
    }

    #[test]
    fn power_scales_monotonically_with_events(
        ev in events_strategy(),
        factor in 1.1f64..4.0,
    ) {
        let gpu = GpuConfig::gtx580();
        let model = PowerModel::for_arch(gpu.arch);
        let p1 = estimate_power(&gpu, &ev, &model);
        let scaled = ev.scaled_counts(factor);
        let p2 = estimate_power(&gpu, &scaled, &model);
        // Same elapsed time, more events => more power.
        prop_assert!(p2.average_w > p1.average_w);
        prop_assert!((p2.dynamic_j / p1.dynamic_j - factor).abs() < 1e-6);
        prop_assert!(p1.average_w.is_finite() && p1.average_w > 0.0);
    }
}
