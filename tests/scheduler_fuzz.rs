//! Property tests of the SM event scheduler: for arbitrary well-formed
//! traces (matched barriers across warps), the simulation must terminate,
//! produce self-consistent counters, and respect basic monotonicity.

use blackforest_suite::gpu_sim::cache::Cache;
use blackforest_suite::gpu_sim::sm::simulate_sm;
use blackforest_suite::gpu_sim::trace::{BlockTrace, WarpInstruction, FULL_MASK};
use blackforest_suite::gpu_sim::GpuConfig;
use proptest::prelude::*;

/// One segment of per-warp work between two barriers.
#[derive(Debug, Clone)]
enum Op {
    Alu(u32),
    LoadGlobal { base: u64, stride: u64 },
    StoreGlobal { base: u64 },
    LoadShared { stride: u32 },
    Branch { divergent: bool },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u32..6).prop_map(Op::Alu),
        (
            (0u64..(1 << 16)),
            prop_oneof![Just(4u64), Just(8), Just(128)]
        )
            .prop_map(|(base, stride)| Op::LoadGlobal {
                base: base * 4,
                stride
            }),
        (0u64..(1 << 16)).prop_map(|b| Op::StoreGlobal { base: b * 4 }),
        prop_oneof![Just(4u32), Just(8), Just(16), Just(128)]
            .prop_map(|stride| Op::LoadShared { stride }),
        any::<bool>().prop_map(|divergent| Op::Branch { divergent }),
    ]
}

fn materialize(op: &Op) -> WarpInstruction {
    match *op {
        Op::Alu(count) => WarpInstruction::Alu {
            count,
            mask: FULL_MASK,
        },
        Op::LoadGlobal { base, stride } => WarpInstruction::LoadGlobal {
            addrs: (0..32).map(|i| base + i * stride).collect(),
            width: 4,
            mask: FULL_MASK,
        },
        Op::StoreGlobal { base } => WarpInstruction::StoreGlobal {
            addrs: (0..32).map(|i| base + i * 4).collect(),
            width: 4,
            mask: FULL_MASK,
        },
        Op::LoadShared { stride } => WarpInstruction::LoadShared {
            offsets: (0..32).map(|i| (i * stride) % 8192).collect(),
            width: 4,
            mask: FULL_MASK,
        },
        Op::Branch { divergent } => WarpInstruction::Branch {
            divergent,
            mask: FULL_MASK,
        },
    }
}

/// A block of `warps` warps, each executing the same segment structure
/// (possibly different per-warp op parameters would also be legal; shared
/// structure guarantees matched barriers).
fn block_strategy() -> impl Strategy<Value = BlockTrace> {
    (
        1usize..6,                                                               // warps
        prop::collection::vec(prop::collection::vec(op_strategy(), 0..6), 1..4), // segments
    )
        .prop_map(|(warps, segments)| {
            let mut t = BlockTrace::with_warps(warps);
            for (si, seg) in segments.iter().enumerate() {
                for w in &mut t.warps {
                    for op in seg {
                        w.push(materialize(op));
                    }
                    // Barrier between segments (not after the last).
                    if si + 1 < segments.len() {
                        w.push(WarpInstruction::Barrier);
                    }
                }
            }
            t
        })
}

fn run(gpu: &GpuConfig, blocks: &[BlockTrace]) -> blackforest_suite::gpu_sim::sm::SmResult {
    let mut l1 = Cache::new(gpu.l1_size, gpu.l1_line, gpu.l1_assoc);
    let mut l2 = Cache::new(gpu.l2_size / gpu.num_sms, 32, gpu.l2_assoc);
    simulate_sm(gpu, blocks, &mut l1, &mut l2).expect("valid trace must simulate")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any well-formed resident set simulates to completion with
    /// self-consistent counters.
    #[test]
    fn scheduler_terminates_with_consistent_counters(
        blocks in prop::collection::vec(block_strategy(), 1..4),
    ) {
        for gpu in [GpuConfig::gtx580(), GpuConfig::k20m()] {
            let r = run(&gpu, &blocks);
            let ev = &r.events;
            prop_assert!(r.cycles >= 1.0 && r.cycles.is_finite());
            prop_assert!(ev.inst_issued >= ev.inst_executed);
            prop_assert!(ev.divergent_branch <= ev.branch);
            prop_assert!(ev.l1_global_load_hit + ev.l1_global_load_miss
                <= ev.global_load_transactions + 1e-9);
            prop_assert!(ev.dram_read_transactions <= ev.l2_read_transactions + 1e-9);
            prop_assert!(ev.shared_load_replay <= 31.0 * ev.shared_load + 1e-9);
            prop_assert!(r.dram_bytes >= 32.0 * ev.dram_read_transactions - 1e-6);
            prop_assert!(ev.active_warp_cycles <= r.cycles * ev.warps_launched + 1e-6);
        }
    }

    /// Adding work to every warp never makes the resident set finish sooner.
    #[test]
    fn more_work_never_finishes_earlier(
        block in block_strategy(),
        extra in 1u32..8,
    ) {
        let gpu = GpuConfig::gtx580();
        let base = run(&gpu, std::slice::from_ref(&block));
        let mut bigger = block.clone();
        for w in &mut bigger.warps {
            w.push(WarpInstruction::Alu { count: extra, mask: FULL_MASK });
        }
        let more = run(&gpu, &[bigger]);
        prop_assert!(more.cycles + 1e-9 >= base.cycles);
        prop_assert!(more.events.inst_executed > base.events.inst_executed);
    }

    /// Simulation is a pure function of its inputs (fresh caches): two runs
    /// agree bit-for-bit.
    #[test]
    fn simulation_is_deterministic(blocks in prop::collection::vec(block_strategy(), 1..3)) {
        let gpu = GpuConfig::gtx580();
        let a = run(&gpu, &blocks);
        let b = run(&gpu, &blocks);
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.events.inst_issued, b.events.inst_issued);
        prop_assert_eq!(a.dram_bytes, b.dram_bytes);
    }
}
