//! End-to-end integration tests spanning every crate: simulator → kernels →
//! collection → forest/PCA/regression → bottleneck analysis → prediction.

use blackforest_suite::blackforest::collect::{
    collect_matmul, collect_nw, collect_reduce, CollectOptions,
};
use blackforest_suite::blackforest::countermodel::ModelStrategy;
use blackforest_suite::blackforest::model::{BlackForestModel, ModelConfig};
use blackforest_suite::blackforest::predict::{
    summarize, HardwareScalingPredictor, HwFeatureStrategy, ProblemScalingPredictor,
};
use blackforest_suite::blackforest::{BlackForest, Dataset, Workload};
use blackforest_suite::gpu_sim::GpuConfig;
use blackforest_suite::kernels::reduce::ReduceVariant;

fn mm_data(gpu: &GpuConfig) -> Dataset {
    let sizes: Vec<usize> = (2..=20).step_by(2).map(|k| k * 16).collect();
    let opts = CollectOptions::default().with_repetitions(2, 0.02);
    collect_matmul(gpu, &sizes, &opts).unwrap()
}

#[test]
fn full_pipeline_matmul_problem_scaling() {
    let data = mm_data(&GpuConfig::gtx580());
    let p = ProblemScalingPredictor::fit(
        &data,
        &ModelConfig::quick(101),
        &["size"],
        ModelStrategy::Glm,
    )
    .unwrap();
    // The forest itself validates well...
    assert!(p.model.validation.oob_r_squared > 0.6);
    // ...and the characteristic->counters->forest chain predicts the
    // held-out runs.
    let points = p.evaluate_holdout().unwrap();
    let s = summarize(&points);
    assert!(s.r_squared > 0.5, "chain r2 {}", s.r_squared);
    // Counter models for MM are near-exact polynomials of size.
    assert!(p.counters.mean_r_squared() > 0.9);
}

#[test]
fn full_pipeline_reduce_bottlenecks_differ_by_variant() {
    let gpu = GpuConfig::gtx580();
    let bf = BlackForest::new(gpu).with_config(ModelConfig::quick(102));
    let sizes: Vec<usize> = (14..=18).map(|e| 1usize << e).collect();
    let r1 = bf
        .analyze(Workload::Reduce(ReduceVariant::Reduce1), &sizes)
        .unwrap();
    let r2 = bf
        .analyze(Workload::Reduce(ReduceVariant::Reduce2), &sizes)
        .unwrap();
    // reduce1 has bank conflicts in its dataset; reduce2's conflict counter
    // vanished (constant zero).
    assert!(r1
        .dataset
        .feature_index("l1_shared_bank_conflict")
        .is_some());
    assert!(r2
        .dataset
        .feature_index("l1_shared_bank_conflict")
        .is_none());
    // Both produce renderable reports with a primary bottleneck.
    assert!(r1.render().contains("bottleneck analysis"));
    assert!(r2.bottlenecks.primary().is_some());
}

#[test]
fn full_pipeline_nw_with_mars() {
    let gpu = GpuConfig::gtx580();
    let lengths: Vec<usize> = (1..=20).map(|k| k * 64).collect();
    let ds = collect_nw(
        &gpu,
        &lengths,
        &CollectOptions::default().with_repetitions(2, 0.02),
    )
    .unwrap();
    let p = ProblemScalingPredictor::fit(
        &ds,
        &ModelConfig::quick(103),
        &["size"],
        ModelStrategy::Mars,
    )
    .unwrap();
    assert!(p.model.validation.oob_r_squared > 0.6);
    assert!(p.counters.mean_r_squared() > 0.8);
    let t_small = p.predict(&[128.0]).unwrap();
    let t_large = p.predict(&[1216.0]).unwrap();
    assert!(t_large > t_small);
}

#[test]
fn hardware_scaling_mm_fermi_to_kepler_has_high_similarity() {
    let opts = CollectOptions {
        include_machine_metrics: true,
        drop_constant: false,
        ..CollectOptions::default()
    };
    let sizes: Vec<usize> = (2..=20).step_by(2).map(|k| k * 16).collect();
    let src = collect_matmul(&GpuConfig::gtx580(), &sizes, &opts).unwrap();
    let tgt = collect_matmul(&GpuConfig::k20m(), &sizes, &opts).unwrap();
    let (tgt_train, tgt_test) = tgt.split(0.8, 104);
    let hw = HardwareScalingPredictor::fit(
        &src,
        &tgt_train,
        &ModelConfig::quick(104),
        HwFeatureStrategy::SourceImportance,
    )
    .unwrap();
    let points = hw.evaluate(&tgt_test, "size").unwrap();
    assert_eq!(points.len(), tgt_test.len());
    assert!(points.iter().all(|p| p.predicted_ms > 0.0));
    // MM predictions preserve the ordering of sizes.
    for w in points.windows(2) {
        assert!(w[1].predicted_ms >= w[0].predicted_ms * 0.5);
    }
}

#[test]
fn reduce_collection_differs_between_gpus() {
    let sizes = [1usize << 14, 1 << 16];
    let threads = [128usize, 256];
    let fermi = collect_reduce(
        &GpuConfig::gtx580(),
        ReduceVariant::Reduce1,
        &sizes,
        &threads,
        &CollectOptions::default(),
    )
    .unwrap();
    let kepler = collect_reduce(
        &GpuConfig::k20m(),
        ReduceVariant::Reduce1,
        &sizes,
        &threads,
        &CollectOptions::default(),
    )
    .unwrap();
    // Architecture-specific counters diverge.
    assert!(
        fermi.feature_index("l1_global_load_hit").is_some()
            || fermi.feature_index("l1_global_load_miss").is_some()
    );
    assert!(kepler.feature_index("l1_global_load_hit").is_none());
    assert!(kepler.feature_index("shared_load_replay").is_some());
    // Same problem, different silicon: times differ.
    assert_ne!(fermi.response, kepler.response);
}

#[test]
fn dataset_csv_round_trip_through_model() {
    let data = mm_data(&GpuConfig::gtx580());
    let dir = std::env::temp_dir().join("bf_integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("mm.csv");
    data.write_csv(&path).unwrap();
    let back = Dataset::read_csv(&path).unwrap();
    let m1 = BlackForestModel::fit(&data, &ModelConfig::quick(105)).unwrap();
    let m2 = BlackForestModel::fit(&back, &ModelConfig::quick(105)).unwrap();
    // Same data, same seed => identical model statistics.
    assert_eq!(m1.validation.oob_mse, m2.validation.oob_mse);
    assert_eq!(m1.ranking, m2.ranking);
    std::fs::remove_file(path).ok();
}

#[test]
fn repetitions_and_noise_expand_dataset() {
    let gpu = GpuConfig::gtx580();
    let sizes = [64usize, 128];
    let base = collect_matmul(&gpu, &sizes, &CollectOptions::default()).unwrap();
    let noisy = collect_matmul(
        &gpu,
        &sizes,
        &CollectOptions::default().with_repetitions(5, 0.05),
    )
    .unwrap();
    assert_eq!(base.len(), 2);
    assert_eq!(noisy.len(), 10);
    // Repetitions of the same configuration differ by the noise.
    assert_ne!(noisy.response[0], noisy.response[1]);
    // ...but only within the noise amplitude.
    let rel = (noisy.response[0] - noisy.response[1]).abs() / noisy.response[0];
    assert!(rel < 0.2);
}
