//! Property-based tests of the statistical substrates' core invariants,
//! exercised through the public API of the suite.

use blackforest_suite::forest::{ForestParams, RandomForest};
use blackforest_suite::gpu_sim::banks::conflict_degree;
use blackforest_suite::gpu_sim::coalesce::coalesce;
use blackforest_suite::linalg::{stats, Matrix, SymmetricEigen};
use blackforest_suite::pca::{varimax, varimax::varimax_criterion, Pca, PcaOptions};
use blackforest_suite::regress::{Mars, MarsParams, PolynomialModel};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Forest predictions are always within the training-response range:
    /// every leaf value is an average of training responses.
    #[test]
    fn forest_predictions_bounded_by_response_range(
        ys in prop::collection::vec(-1000.0f64..1000.0, 20..60),
        query in -1.0e6f64..1.0e6,
        seed in 0u64..1000,
    ) {
        let x: Vec<Vec<f64>> = (0..ys.len()).map(|i| vec![i as f64]).collect();
        let f = RandomForest::fit(&x, &ys, &ForestParams::default().with_trees(20).with_seed(seed)).unwrap();
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let p = f.predict_row(&[query]).unwrap();
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
    }

    /// OOB R-squared never exceeds 1.
    #[test]
    fn oob_r_squared_at_most_one(
        ys in prop::collection::vec(0.0f64..100.0, 25..50),
        seed in 0u64..100,
    ) {
        let x: Vec<Vec<f64>> = (0..ys.len()).map(|i| vec![i as f64, (i % 5) as f64]).collect();
        let f = RandomForest::fit(&x, &ys, &ForestParams::default().with_trees(30).with_seed(seed)).unwrap();
        prop_assert!(f.oob_r_squared() <= 1.0 + 1e-12);
    }

    /// Eigendecomposition of any symmetric matrix reconstructs it and the
    /// eigenvalue sum equals the trace.
    #[test]
    fn eigen_reconstruction_and_trace(
        vals in prop::collection::vec(-5.0f64..5.0, 6),
    ) {
        // Build a 3x3 symmetric matrix from 6 free values.
        let a = Matrix::from_rows(&[
            vec![vals[0], vals[1], vals[2]],
            vec![vals[1], vals[3], vals[4]],
            vec![vals[2], vals[4], vals[5]],
        ]).unwrap();
        let e = SymmetricEigen::decompose(&a).unwrap();
        let trace = vals[0] + vals[3] + vals[5];
        prop_assert!((e.values.iter().sum::<f64>() - trace).abs() < 1e-8);
        // Eigenvalues are sorted descending.
        for w in e.values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        // V^T V = I.
        let vtv = e.vectors.transpose().matmul(&e.vectors).unwrap();
        prop_assert!(vtv.approx_eq(&Matrix::identity(3), 1e-8));
    }

    /// PCA explained-variance ratios are a probability vector, and scores
    /// of distinct components are uncorrelated.
    #[test]
    fn pca_ratios_and_orthogonality(
        raw in prop::collection::vec(prop::collection::vec(-10.0f64..10.0, 3), 12..30),
    ) {
        let x = Matrix::from_rows(&raw).unwrap();
        let pca = Pca::fit(&x, PcaOptions { scale: false }).unwrap();
        let ratios = pca.explained_variance_ratio();
        let total: f64 = ratios.iter().sum();
        prop_assert!(ratios.iter().all(|&r| (-1e-9..=1.0 + 1e-9).contains(&r)));
        prop_assert!(total == 0.0 || (total - 1.0).abs() < 1e-9);
        let scores = pca.transform(&x, 3).unwrap();
        for a in 0..3 {
            for b in (a + 1)..3 {
                let r = stats::pearson(&scores.col(a), &scores.col(b));
                prop_assert!(r.abs() < 1e-6, "components {a},{b} correlate: {r}");
            }
        }
    }

    /// Varimax rotation never decreases the varimax criterion and preserves
    /// row communalities.
    #[test]
    fn varimax_improves_criterion_and_preserves_communality(
        raw in prop::collection::vec(prop::collection::vec(-1.0f64..1.0, 2), 4..10),
    ) {
        let l = Matrix::from_rows(&raw).unwrap();
        let r = varimax(&l, false);
        prop_assert!(varimax_criterion(&r.loadings) >= varimax_criterion(&l) - 1e-9);
        for i in 0..l.rows() {
            let before: f64 = l.row(i).iter().map(|v| v * v).sum();
            let after: f64 = r.loadings.row(i).iter().map(|v| v * v).sum();
            prop_assert!((before - after).abs() < 1e-8);
        }
    }

    /// Polynomial GLM trained on exact polynomial data recovers it.
    #[test]
    fn glm_recovers_polynomials(
        c0 in -10.0f64..10.0,
        c1 in -5.0f64..5.0,
        c2 in -1.0f64..1.0,
    ) {
        let xs: Vec<f64> = (0..30).map(|i| i as f64 / 3.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| c0 + c1 * x + c2 * x * x).collect();
        let m = PolynomialModel::fit(&xs, &ys, 2).unwrap();
        prop_assert!(m.r_squared() > 1.0 - 1e-6);
        let p = m.predict(12.5);
        let t = c0 + c1 * 12.5 + c2 * 12.5 * 12.5;
        prop_assert!((p - t).abs() < 1e-4 * (1.0 + t.abs()));
    }

    /// MARS training R-squared is at most 1 and prediction is finite.
    #[test]
    fn mars_r_squared_bounded(
        ys in prop::collection::vec(-100.0f64..100.0, 20..40),
    ) {
        let x: Vec<Vec<f64>> = (0..ys.len()).map(|i| vec![i as f64]).collect();
        let m = Mars::fit(&x, &ys, &MarsParams { max_terms: 9, ..MarsParams::default() }).unwrap();
        prop_assert!(m.train_r_squared <= 1.0 + 1e-9);
        prop_assert!(m.predict_row(&[5.5]).is_finite());
    }

    /// Coalescing: transaction count is between 1 and the number of active
    /// lanes (for accesses that fit one segment each).
    #[test]
    fn coalesce_transaction_bounds(
        addrs in prop::collection::vec(0u64..(1 << 20), 32),
        mask in 1u32..=u32::MAX,
    ) {
        // 4-byte accesses at 4-byte alignment never straddle segments.
        let aligned: Vec<u64> = addrs.iter().map(|a| a & !3).collect();
        let t = coalesce(&aligned, 4, mask, 128);
        let active = mask.count_ones() as usize;
        prop_assert!(!t.is_empty());
        prop_assert!(t.len() <= active);
        // Deduplicated, sorted, aligned.
        for w in t.windows(2) {
            prop_assert!(w[0].addr < w[1].addr);
        }
        for tr in &t {
            prop_assert_eq!(tr.addr % 128, 0);
        }
    }

    /// Bank conflicts: degree is between 1 and the active-lane count.
    #[test]
    fn conflict_degree_bounds(
        offsets in prop::collection::vec(0u32..8192, 32),
        mask in 1u32..=u32::MAX,
    ) {
        let aligned: Vec<u32> = offsets.iter().map(|o| o & !3).collect();
        let d = conflict_degree(&aligned, 4, mask, 32, 4);
        prop_assert!(d >= 1);
        prop_assert!(d <= mask.count_ones().max(1));
    }

    /// Dataset split is an exact partition for any fraction.
    #[test]
    fn dataset_split_partitions(
        n in 4usize..60,
        frac in 0.1f64..0.9,
        seed in 0u64..500,
    ) {
        let mut ds = blackforest_suite::blackforest::Dataset::new(vec!["x".into()], "y");
        for i in 0..n {
            ds.push(vec![i as f64], i as f64).unwrap();
        }
        let (tr, te) = ds.split(frac, seed);
        prop_assert_eq!(tr.len() + te.len(), n);
        prop_assert!(!tr.is_empty());
        // Every original response appears exactly once across the halves.
        let mut all: Vec<f64> = tr.response.iter().chain(te.response.iter()).copied().collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expect: Vec<f64> = (0..n).map(|i| i as f64).collect();
        prop_assert_eq!(all, expect);
    }
}
