//! Data collection: sweep problem characteristics, profile each run on the
//! simulator, and assemble a [`Dataset`].
//!
//! This is stage 1 of the methodology (§4.2 "Data collection"): "running the
//! application multiple times (typically, tens to hundreds) on the
//! architecture of interest, with different problem characteristics",
//! recording counters and execution time. Problem characteristics become
//! ordinary predictor columns (e.g. `size`, as in the paper's NW analysis
//! where `size` ranks among the most important variables).

use crate::dataset::Dataset;
use crate::Result;
use bf_kernels::matmul::matmul_application;
use bf_kernels::nw::nw_application;
use bf_kernels::reduce::{reduce_application, ReduceVariant};
use bf_kernels::stencil::stencil_application;
use bf_kernels::Application;
use gpu_sim::{GpuConfig, KernelTrace, ProfiledRun, SimCache};
use rand::prelude::*;

/// Options shared by the collection drivers.
#[derive(Debug, Clone)]
pub struct CollectOptions {
    /// Include the problem characteristics as predictor columns.
    pub include_characteristics: bool,
    /// Inject the GPU's Table-2 machine metrics as constant columns
    /// (hardware-scaling experiments set this).
    pub include_machine_metrics: bool,
    /// Drop counters that are constant across the sweep.
    pub drop_constant: bool,
    /// Append statically derived feature columns (`static_*`: theoretical
    /// occupancy, bank-conflict degree, transaction counts, coalescing
    /// efficiency, arithmetic intensity) from `bf-analyze` alongside the
    /// problem characteristics. They cost a trace walk instead of a
    /// simulation and give models access to the same structural signal the
    /// static analyzer sees. Rides the characteristics columns, so it
    /// requires `include_characteristics`.
    pub include_static_features: bool,
    /// Profiler repetitions per configuration. Real `nvprof` collection
    /// repeats every run; the paper's datasets have up to ~100 samples from
    /// tens of distinct sizes.
    pub repetitions: usize,
    /// Relative run-to-run measurement noise (e.g. 0.02 for ±2% on time,
    /// half that on counters). The simulator is deterministic, so this
    /// models the measurement variation real hardware would show.
    pub noise_frac: f64,
    /// Seed for the measurement-noise stream.
    pub noise_seed: u64,
    /// Which measured quantity becomes the model's response variable.
    pub response: ResponseMetric,
}

/// The response variable of the collected dataset. The paper's §7 points out
/// the method works for any measurable response, suggesting power draw as
/// the natural second target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseMetric {
    /// Kernel execution time in milliseconds (the paper's main response).
    TimeMs,
    /// Average power draw in watts (the §7 extension).
    AvgPowerW,
}

impl ResponseMetric {
    /// Column name used for the response in datasets and CSV files.
    pub fn column_name(&self) -> &'static str {
        match self {
            ResponseMetric::TimeMs => "time_ms",
            ResponseMetric::AvgPowerW => "power_w",
        }
    }

    /// Extracts the response value from a profiled run.
    pub fn of(&self, run: &ProfiledRun) -> f64 {
        match self {
            ResponseMetric::TimeMs => run.time_ms,
            ResponseMetric::AvgPowerW => run.avg_power_w,
        }
    }
}

impl Default for CollectOptions {
    fn default() -> Self {
        CollectOptions {
            include_characteristics: true,
            include_machine_metrics: false,
            drop_constant: true,
            include_static_features: false,
            repetitions: 1,
            noise_frac: 0.0,
            noise_seed: 0xC0_11EC7,
            response: ResponseMetric::TimeMs,
        }
    }
}

impl CollectOptions {
    /// Paper-style collection: 3 repetitions per configuration with ±2%
    /// measurement noise on times (±1% on counters).
    pub fn with_repetitions(mut self, repetitions: usize, noise_frac: f64) -> CollectOptions {
        self.repetitions = repetitions.max(1);
        self.noise_frac = noise_frac;
        self
    }
}

/// One profiled observation paired with its problem characteristics.
pub struct Observation {
    /// The profiled run (counters + time).
    pub run: ProfiledRun,
    /// `(name, value)` problem characteristics.
    pub characteristics: Vec<(String, f64)>,
}

/// Assembles observations into a dataset with a uniform schema.
///
/// The counter schema is taken from the first observation (all runs on one
/// GPU share it). Characteristics precede counters so they survive
/// `drop_constant_features` reporting in a predictable order.
pub fn dataset_from_observations(
    gpu: &GpuConfig,
    observations: Vec<Observation>,
    opts: &CollectOptions,
) -> Result<Dataset> {
    let first = observations
        .first()
        .ok_or_else(|| crate::BfError::Data("no observations".into()))?;
    let mut names: Vec<String> = Vec::new();
    if opts.include_characteristics {
        names.extend(first.characteristics.iter().map(|(n, _)| n.clone()));
    }
    let counter_names: Vec<String> = first
        .run
        .counters
        .names()
        .into_iter()
        .map(|s| s.to_string())
        .collect();
    names.extend(counter_names.iter().cloned());
    let mut ds = Dataset::new(names, opts.response.column_name());
    for obs in &observations {
        let mut row = Vec::with_capacity(ds.n_features());
        if opts.include_characteristics {
            for (_, v) in &obs.characteristics {
                row.push(*v);
            }
        }
        for c in &counter_names {
            row.push(obs.run.counters.get(c).unwrap_or(0.0));
        }
        ds.push(row, opts.response.of(&obs.run))?;
    }
    if opts.include_machine_metrics {
        for m in gpu.machine_metrics() {
            ds.add_constant_column(m.name, m.value);
        }
    }
    if opts.drop_constant {
        ds.drop_constant_features();
    }
    Ok(ds)
}

/// Profiles a batch of applications and expands each profiled run into
/// `repetitions` noisy measurements.
///
/// All launches of all applications go through
/// [`gpu_sim::profile_applications`] as one flat, launch-level parallel job
/// with a sweep-wide memoization cache: the parallel work unit is a single
/// *launch*, so one 1000-launch NW job no longer serialises on a thread
/// while the small jobs finish instantly, and structurally identical
/// launches across the sweep (reduction tail passes, repeated stencil
/// grids) simulate once. Observation order — and, by order-preserving
/// accumulation, every profiled value — is identical to the sequential
/// path.
/// Statically derived per-application feature columns (see
/// [`CollectOptions::include_static_features`]): launch-level analyses are
/// aggregated over the application — sums for counts, totals-ratio for
/// efficiencies, warp-weighted mean for occupancy, max for conflict degree.
fn static_features(gpu: &GpuConfig, app: &Application) -> Result<Vec<(String, f64)>> {
    let mut occ_weighted = 0.0f64;
    let mut warps = 0.0f64;
    let mut max_degree = 0u32;
    let mut gld_trans = 0.0f64;
    let mut gst_trans = 0.0f64;
    let mut requested = 0.0f64;
    let mut traffic = 0.0f64;
    let mut alu_ops = 0.0f64;
    let mut dram_bytes = 0.0f64;
    let mut inst = 0.0f64;
    for (i, kernel) in app.launches.iter().enumerate() {
        let a = bf_analyze::analyze_launch(gpu, kernel.as_ref())
            .map_err(|e| e.in_kernel(&kernel.name(), i))?;
        occ_weighted += a.occupancy.theoretical * a.counts.warps_launched;
        warps += a.counts.warps_launched;
        max_degree = max_degree.max(a.shared.max_degree);
        gld_trans += a.counts.global_load_transactions;
        gst_trans += a.counts.global_store_transactions;
        requested += a.counts.gld_requested_bytes + a.counts.gst_requested_bytes;
        traffic += a.counts.load_traffic_bytes + a.counts.store_traffic_bytes;
        alu_ops += a.counts.alu_thread_ops;
        dram_bytes += a.counts.dram_read_bytes_bound + a.counts.store_traffic_bytes;
        inst += a.counts.inst_executed;
    }
    // Basic-block shape of the application: how concentrated the attributed
    // cost is (share of the hottest block) and how many blocks dominate.
    let blocks = bf_analyze::application_block_profile(gpu, app)?;
    Ok(vec![
        (
            "static_occupancy".to_string(),
            if warps > 0.0 {
                occ_weighted / warps
            } else {
                0.0
            },
        ),
        ("static_bank_conflict_degree".to_string(), max_degree as f64),
        ("static_gld_transactions".to_string(), gld_trans),
        ("static_gst_transactions".to_string(), gst_trans),
        (
            "static_coalescing_efficiency".to_string(),
            if traffic > 0.0 {
                requested / traffic
            } else {
                1.0
            },
        ),
        (
            "static_arith_intensity".to_string(),
            if dram_bytes > 0.0 {
                alu_ops / dram_bytes
            } else {
                0.0
            },
        ),
        ("static_inst_executed".to_string(), inst),
        (
            "static_top_block_cost_share".to_string(),
            blocks.top_block_cost_share,
        ),
        (
            "static_hot_block_count".to_string(),
            blocks.hot_block_count as f64,
        ),
    ])
}

fn profile_batch(
    gpu: &GpuConfig,
    mut jobs: Vec<(Application, Vec<(String, f64)>)>,
    opts: &CollectOptions,
) -> Result<Vec<Observation>> {
    let _batch_span = bf_trace::span!("profile_batch", apps = jobs.len());
    if opts.include_static_features {
        let _span = bf_trace::span!("static_features");
        for (app, characteristics) in &mut jobs {
            characteristics.extend(static_features(gpu, app)?);
        }
    }
    // Per-batch memoization, layered over the persistent disk tier when
    // BF_SIM_CACHE_DIR is set — repeated collection runs (NW sweeps most of
    // all, whose launches are structurally unique within one run) then hit
    // the results a previous process already simulated.
    let cache = SimCache::from_env();
    let cache = gpu_sim::cache_enabled().then_some(&cache);
    let apps: Vec<(&str, &[Box<dyn KernelTrace>])> = jobs
        .iter()
        .map(|(app, _)| (app.name.as_str(), app.launches.as_slice()))
        .collect();
    let runs = gpu_sim::profile_applications(gpu, &apps, cache)?;
    let profiled: Vec<Observation> = runs
        .into_iter()
        .zip(jobs)
        .map(|(run, (_, characteristics))| Observation {
            run,
            characteristics,
        })
        .collect();
    if opts.repetitions <= 1 && opts.noise_frac == 0.0 {
        return Ok(profiled);
    }
    let _expand_span = bf_trace::span!("expand_repetitions", repetitions = opts.repetitions);
    let repetitions = opts.repetitions.max(1);
    // One GPU => one counter schema; collect the names once for the whole
    // expansion instead of re-collecting them per repetition.
    let counter_names: Vec<String> = profiled
        .first()
        .map(|obs| {
            obs.run
                .counters
                .names()
                .into_iter()
                .map(|s| s.to_string())
                .collect()
        })
        .unwrap_or_default();
    let mut out = Vec::with_capacity(profiled.len() * repetitions);
    for (j, mut obs) in profiled.into_iter().enumerate() {
        // The RNG lives per observation; each repetition re-seeds it in
        // place from the same (seed, observation, repetition) triple as
        // always, keeping the noise stream — and every `results/` snapshot
        // derived from it — bit-identical.
        let seed_base = opts.noise_seed ^ ((j as u64) << 20);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed_base);
        for rep in 0..repetitions {
            if rep > 0 {
                rng = rand::rngs::StdRng::seed_from_u64(seed_base ^ rep as u64);
            }
            let mut run = obs.run.clone();
            // Multiplicative uniform noise: full amplitude on time, half on
            // counters (counters are more stable than wall-clock on real HW).
            let jitter = |rng: &mut rand::rngs::StdRng, amp: f64| {
                1.0 + amp * (rng.random::<f64>() * 2.0 - 1.0)
            };
            run.time_ms *= jitter(&mut rng, opts.noise_frac);
            run.avg_power_w *= jitter(&mut rng, opts.noise_frac);
            for name in &counter_names {
                let v = run.counters.get(name).unwrap_or(0.0);
                run.counters
                    .set(name, v * jitter(&mut rng, opts.noise_frac * 0.5));
            }
            // The final repetition takes ownership; earlier ones clone.
            let characteristics = if rep + 1 == repetitions {
                std::mem::take(&mut obs.characteristics)
            } else {
                obs.characteristics.clone()
            };
            out.push(Observation {
                run,
                characteristics,
            });
        }
    }
    Ok(out)
}

/// Collects a reduction sweep: the cartesian product of array lengths and
/// block sizes (both are problem characteristics the SDK benchmark exposes).
pub fn collect_reduce(
    gpu: &GpuConfig,
    variant: ReduceVariant,
    sizes: &[usize],
    threads: &[usize],
    opts: &CollectOptions,
) -> Result<Dataset> {
    let mut jobs = Vec::new();
    for &n in sizes {
        for &t in threads {
            jobs.push((
                reduce_application(variant, n, t),
                vec![
                    ("size".to_string(), n as f64),
                    ("threads".to_string(), t as f64),
                ],
            ));
        }
    }
    let obs = profile_batch(gpu, jobs, opts)?;
    dataset_from_observations(gpu, obs, opts)
}

/// Collects a matrix-multiply sweep over matrix sizes (multiples of 16).
pub fn collect_matmul(gpu: &GpuConfig, sizes: &[usize], opts: &CollectOptions) -> Result<Dataset> {
    let jobs = sizes
        .iter()
        .map(|&n| (matmul_application(n), vec![("size".to_string(), n as f64)]))
        .collect();
    let obs = profile_batch(gpu, jobs, opts)?;
    dataset_from_observations(gpu, obs, opts)
}

/// Collects a matrix-multiply sweep over sizes *and tile sizes* — the tile
/// edge becomes a second problem characteristic, enabling block-size tuning
/// analyses (which tile the forest says is fastest, and why).
pub fn collect_matmul_tiles(
    gpu: &GpuConfig,
    sizes: &[usize],
    tiles: &[usize],
    opts: &CollectOptions,
) -> Result<Dataset> {
    let mut jobs = Vec::new();
    for &n in sizes {
        for &t in tiles {
            if n % t != 0 {
                continue;
            }
            jobs.push((
                bf_kernels::matmul::matmul_application_tiled(n, t),
                vec![
                    ("size".to_string(), n as f64),
                    ("tile".to_string(), t as f64),
                ],
            ));
        }
    }
    let obs = profile_batch(gpu, jobs, opts)?;
    dataset_from_observations(gpu, obs, opts)
}

/// Collects a Needleman-Wunsch sweep over sequence lengths.
pub fn collect_nw(gpu: &GpuConfig, lengths: &[usize], opts: &CollectOptions) -> Result<Dataset> {
    let jobs = lengths
        .iter()
        .map(|&n| (nw_application(n, 10), vec![("size".to_string(), n as f64)]))
        .collect();
    let obs = profile_batch(gpu, jobs, opts)?;
    dataset_from_observations(gpu, obs, opts)
}

/// Collects a Jacobi-stencil sweep over grid sizes (the extension workload;
/// the number of sweeps is a second problem characteristic).
pub fn collect_stencil(
    gpu: &GpuConfig,
    sizes: &[usize],
    sweeps: &[usize],
    opts: &CollectOptions,
) -> Result<Dataset> {
    let mut jobs = Vec::new();
    for &n in sizes {
        for &s in sweeps {
            jobs.push((
                stencil_application(n, s),
                vec![
                    ("size".to_string(), n as f64),
                    ("sweeps".to_string(), s as f64),
                ],
            ));
        }
    }
    let obs = profile_batch(gpu, jobs, opts)?;
    dataset_from_observations(gpu, obs, opts)
}

/// The paper's matrix-multiply sweep: 24 sizes from 2^5 to 2^11, multiples
/// of 16, evenly spaced in log2.
pub fn paper_matmul_sizes() -> Vec<usize> {
    let lo = 5.0f64;
    let hi = 11.0f64;
    let mut sizes: Vec<usize> = (0..24)
        .map(|k| {
            let e = lo + (hi - lo) * k as f64 / 23.0;
            let raw = 2f64.powf(e).round() as usize;
            (raw / 16).max(2) * 16
        })
        .collect();
    sizes.dedup();
    sizes
}

/// The paper's NW sweep: sequence lengths 64..=8192 with a pitch of 64 —
/// 128 lengths. (The paper's §6.1.2 quotes "129 trials" because it counts
/// the degenerate length-0 end-point of the 0..=8192 grid; a zero-length
/// alignment launches no kernels and profiles nothing, so the sweep starts
/// at 64. The shape test below pins the 128/64/8192 contract.)
pub fn paper_nw_lengths() -> Vec<usize> {
    (1..=128).map(|k| k * 64).collect()
}

/// A reduction sweep in the spirit of §5: array lengths 2^14..2^22 crossed
/// with block sizes {64, 128, 256, 512}.
pub fn paper_reduce_sweep() -> (Vec<usize>, Vec<usize>) {
    let sizes = (14..=22).map(|e| 1usize << e).collect();
    let threads = vec![64, 128, 256, 512];
    (sizes, threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_sweep_produces_one_row_per_combination() {
        let gpu = GpuConfig::gtx580();
        let ds = collect_reduce(
            &gpu,
            ReduceVariant::Reduce1,
            &[1 << 12, 1 << 13],
            &[64, 128],
            &CollectOptions::default(),
        )
        .unwrap();
        assert_eq!(ds.len(), 4);
        assert!(ds.feature_index("size").is_some());
        assert!(ds.feature_index("threads").is_some());
        assert!(ds.feature_index("shared_replay_overhead").is_some());
        assert!(ds.response.iter().all(|&t| t > 0.0));
    }

    #[test]
    fn static_feature_columns_join_the_dataset_when_enabled() {
        let gpu = GpuConfig::gtx580();
        let opts = CollectOptions {
            include_static_features: true,
            drop_constant: false,
            ..CollectOptions::default()
        };
        let ds = collect_reduce(
            &gpu,
            ReduceVariant::Reduce1,
            &[1 << 12, 1 << 13],
            &[128],
            &opts,
        )
        .unwrap();
        for col in [
            "static_occupancy",
            "static_bank_conflict_degree",
            "static_gld_transactions",
            "static_gst_transactions",
            "static_coalescing_efficiency",
            "static_arith_intensity",
            "static_inst_executed",
            "static_top_block_cost_share",
            "static_hot_block_count",
        ] {
            assert!(ds.feature_index(col).is_some(), "missing column {col}");
        }
        for occ in ds.column("static_occupancy").unwrap() {
            assert!(occ > 0.0 && occ <= 1.0, "occupancy {occ}");
        }
        // reduce1's strided shared addressing is the textbook conflict.
        for degree in ds.column("static_bank_conflict_degree").unwrap() {
            assert!(degree >= 2.0, "degree {degree}");
        }
        // Block-profile columns are well-formed shares/counts.
        for share in ds.column("static_top_block_cost_share").unwrap() {
            assert!(share > 0.0 && share <= 1.0, "share {share}");
        }
        for count in ds.column("static_hot_block_count").unwrap() {
            assert!(count >= 1.0, "hot block count {count}");
        }
        // Off by default: the plain path is unchanged.
        let plain = collect_reduce(
            &gpu,
            ReduceVariant::Reduce1,
            &[1 << 12, 1 << 13],
            &[128],
            &CollectOptions::default(),
        )
        .unwrap();
        assert!(plain.feature_index("static_occupancy").is_none());
    }

    #[test]
    fn matmul_sweep_has_counters_and_monotone_times() {
        let gpu = GpuConfig::gtx580();
        let ds = collect_matmul(&gpu, &[32, 64, 128, 256], &CollectOptions::default()).unwrap();
        assert_eq!(ds.len(), 4);
        // Times grow with size.
        for w in ds.response.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(ds.feature_index("gst_request").is_some());
    }

    #[test]
    fn nw_sweep_collects() {
        let gpu = GpuConfig::gtx580();
        let ds = collect_nw(&gpu, &[64, 128], &CollectOptions::default()).unwrap();
        assert_eq!(ds.len(), 2);
        assert!(ds.feature_index("achieved_occupancy").is_some());
    }

    #[test]
    fn machine_metrics_injection_adds_table2_columns() {
        let gpu = GpuConfig::gtx580();
        let opts = CollectOptions {
            include_machine_metrics: true,
            drop_constant: false,
            ..CollectOptions::default()
        };
        let ds = collect_matmul(&gpu, &[32, 64], &opts).unwrap();
        for name in ["wsched", "freq", "smp", "rco", "mbw", "l1c", "l2c"] {
            assert!(ds.feature_index(name).is_some(), "missing {name}");
        }
        assert_eq!(ds.column("mbw").unwrap()[0], 192.4);
    }

    #[test]
    fn drop_constant_removes_flat_counters() {
        let gpu = GpuConfig::gtx580();
        let keep = CollectOptions {
            drop_constant: false,
            ..CollectOptions::default()
        };
        let full = collect_matmul(&gpu, &[32, 64], &keep).unwrap();
        let trimmed = collect_matmul(&gpu, &[32, 64], &CollectOptions::default()).unwrap();
        assert!(trimmed.n_features() < full.n_features());
    }

    #[test]
    fn paper_sweeps_have_documented_shapes() {
        let mm = paper_matmul_sizes();
        assert!(mm.len() >= 20 && mm.len() <= 24, "{}", mm.len());
        assert!(mm.iter().all(|n| n % 16 == 0));
        assert_eq!(*mm.first().unwrap(), 32);
        assert_eq!(*mm.last().unwrap(), 2048);

        let nw = paper_nw_lengths();
        assert_eq!(nw.len(), 128);
        assert_eq!(nw[0], 64);
        assert_eq!(*nw.last().unwrap(), 8192);

        let (sizes, threads) = paper_reduce_sweep();
        assert_eq!(sizes.len() * threads.len(), 36);
    }

    #[test]
    fn tile_sweep_skips_indivisible_combinations_and_varies_occupancy() {
        let gpu = GpuConfig::gtx580();
        let ds =
            collect_matmul_tiles(&gpu, &[80, 128], &[16, 32], &CollectOptions::default()).unwrap();
        // 80 is not a multiple of 32 -> 3 rows, not 4.
        assert_eq!(ds.len(), 3);
        assert!(ds.feature_index("tile").is_some());
        // Different tiles give different occupancy profiles at n=128.
        let tile_col = ds.column("tile").unwrap();
        let occ = ds.column("achieved_occupancy").unwrap();
        let o16 = occ
            .iter()
            .zip(tile_col.iter())
            .find(|(_, &t)| t == 16.0)
            .unwrap()
            .0;
        let o32 = occ
            .iter()
            .zip(tile_col.iter())
            .find(|(_, &t)| t == 32.0)
            .unwrap()
            .0;
        assert_ne!(o16, o32);
    }

    #[test]
    fn stencil_sweep_collects_with_two_characteristics() {
        let gpu = GpuConfig::gtx580();
        let ds = collect_stencil(&gpu, &[64, 128], &[1, 2], &CollectOptions::default()).unwrap();
        assert_eq!(ds.len(), 4);
        assert!(ds.feature_index("size").is_some());
        assert!(ds.feature_index("sweeps").is_some());
        // Two sweeps over the same grid take about twice the time.
        let t1 = ds.response[0];
        let t2 = ds.response[1];
        assert!(t2 > 1.5 * t1, "t1={t1} t2={t2}");
    }

    #[test]
    fn power_response_selects_power_column() {
        let gpu = GpuConfig::k20m();
        let opts = CollectOptions {
            response: ResponseMetric::AvgPowerW,
            ..CollectOptions::default()
        };
        let ds = collect_matmul(&gpu, &[64, 128], &opts).unwrap();
        assert_eq!(ds.response_name, "power_w");
        // Power responses are tens of watts, not milliseconds.
        assert!(ds.response.iter().all(|&w| w > 10.0 && w < 500.0));
    }

    #[test]
    fn kepler_dataset_has_kepler_counters() {
        let gpu = GpuConfig::k20m();
        let ds = collect_nw(&gpu, &[64, 128], &CollectOptions::default()).unwrap();
        assert!(ds.feature_index("shared_load_replay").is_some());
        assert!(ds.feature_index("l1_global_load_hit").is_none());
    }

    /// End-to-end availability-mask check across the zoo: for every
    /// preset, the collected dataset's counter columns are *exactly* the
    /// counters the architecture's mask admits — no foreign counter leaks
    /// into training data, and nothing the architecture produces is lost.
    #[test]
    fn collected_columns_match_each_architectures_counter_mask() {
        for gpu in GpuConfig::presets() {
            let opts = CollectOptions {
                drop_constant: false,
                ..CollectOptions::default()
            };
            let ds = collect_reduce(&gpu, ReduceVariant::Reduce1, &[1 << 12], &[128], &opts)
                .unwrap_or_else(|e| panic!("collect on {} ({}): {e}", gpu.name, gpu.arch.name()));
            let available = gpu_sim::counters::counters_for(gpu.arch);
            for name in &ds.feature_names {
                if matches!(name.as_str(), "size" | "threads") {
                    continue;
                }
                assert!(
                    available.contains(&name.as_str()),
                    "counter {} leaked into {} ({}) training data",
                    name,
                    gpu.name,
                    gpu.arch.name()
                );
            }
            for c in available {
                assert!(
                    ds.feature_index(c).is_some(),
                    "counter {c} missing from {} ({}) dataset",
                    gpu.name,
                    gpu.arch.name()
                );
            }
        }
    }
}
