//! The end-to-end toolchain (the paper's Figure 1): data collection →
//! model building → analysis/prediction → reporting, behind one facade.

use crate::bottleneck::BottleneckReport;
use crate::collect::{self, CollectOptions};
use crate::countermodel::ModelStrategy;
use crate::dataset::Dataset;
use crate::model::{BlackForestModel, ModelConfig};
use crate::predict::ProblemScalingPredictor;
use crate::report;
use crate::Result;
use bf_kernels::reduce::ReduceVariant;
use gpu_sim::GpuConfig;

/// The workloads the toolchain knows how to collect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// One of the CUDA SDK reduction kernels.
    Reduce(ReduceVariant),
    /// Tiled matrix multiply.
    MatMul,
    /// Needleman-Wunsch sequence alignment.
    Nw,
    /// 2D Jacobi stencil (extension workload beyond the paper's evaluation).
    Stencil,
}

impl Workload {
    /// Workload name used in reports.
    pub fn name(&self) -> String {
        match self {
            Workload::Reduce(v) => v.name().to_string(),
            Workload::MatMul => "matrixMul".to_string(),
            Workload::Nw => "needle".to_string(),
            Workload::Stencil => "jacobi2d".to_string(),
        }
    }

    /// Parses a workload from a (case-insensitive) name. Accepts both the
    /// CLI spellings (`matmul`, `nw`, `stencil`) and the report names
    /// produced by [`Workload::name`] (`matrixMul`, `needle`, `jacobi2d`),
    /// so names written into saved model bundles always parse back.
    pub fn from_name(name: &str) -> Option<Workload> {
        match name.to_ascii_lowercase().as_str() {
            "reduce0" => Some(Workload::Reduce(ReduceVariant::Reduce0)),
            "reduce1" => Some(Workload::Reduce(ReduceVariant::Reduce1)),
            "reduce2" => Some(Workload::Reduce(ReduceVariant::Reduce2)),
            "reduce3" => Some(Workload::Reduce(ReduceVariant::Reduce3)),
            "reduce4" => Some(Workload::Reduce(ReduceVariant::Reduce4)),
            "reduce5" => Some(Workload::Reduce(ReduceVariant::Reduce5)),
            "reduce6" => Some(Workload::Reduce(ReduceVariant::Reduce6)),
            "matmul" | "matrixmul" => Some(Workload::MatMul),
            "nw" | "needle" => Some(Workload::Nw),
            "stencil" | "jacobi2d" => Some(Workload::Stencil),
            _ => None,
        }
    }

    /// Default value of a secondary problem characteristic when a query
    /// supplies only the primary size: 256 threads per block (the SDK
    /// default used throughout the paper's reduce sweeps) and a single
    /// stencil sweep.
    pub fn default_characteristic(name: &str) -> Option<f64> {
        match name {
            "threads" => Some(256.0),
            "sweeps" => Some(1.0),
            _ => None,
        }
    }

    /// The problem-characteristic columns this workload's sweeps produce.
    pub fn characteristics(&self) -> Vec<&'static str> {
        match self {
            Workload::Reduce(_) => vec!["size", "threads"],
            Workload::MatMul | Workload::Nw => vec!["size"],
            Workload::Stencil => vec!["size", "sweeps"],
        }
    }
}

/// A complete analysis of one workload on one GPU.
pub struct AnalysisReport {
    /// Workload analysed.
    pub workload: Workload,
    /// GPU name.
    pub gpu: String,
    /// The collected dataset.
    pub dataset: Dataset,
    /// The fitted model (with importance, PCA, validation).
    pub predictor: ProblemScalingPredictor,
    /// The bottleneck findings.
    pub bottlenecks: BottleneckReport,
}

impl AnalysisReport {
    /// Borrow the fitted model.
    pub fn model(&self) -> &BlackForestModel {
        &self.predictor.model
    }

    /// Renders the full text report: validation, importance, partial
    /// dependence of the top variable, PCA, bottlenecks.
    pub fn render(&self) -> String {
        let model = self.model();
        let mut out = String::new();
        out.push_str(&format!(
            "== BlackForest analysis: {} on {} ==\n",
            self.workload.name(),
            self.gpu
        ));
        out.push_str(&format!(
            "runs: {} (train {}, test {})\n",
            self.dataset.len(),
            model.train.len(),
            model.test.len()
        ));
        out.push_str(&format!(
            "forest: OOB MSE {:.4}, explained variance {:.1}%, test R^2 {:.3}\n\n",
            model.validation.oob_mse,
            model.validation.oob_r_squared * 100.0,
            model.validation.r_squared
        ));
        out.push_str(&report::importance_chart(model, 10));
        out.push('\n');
        if let Some(top) = model.ranking.first() {
            out.push_str(&report::partial_dependence_chart(model, top, 24));
            out.push('\n');
        }
        if let Some(pca) = &model.pca {
            out.push_str(&report::pca_table(pca, 4));
            out.push('\n');
        }
        out.push_str(&report::bottleneck_text(&self.bottlenecks));
        out
    }
}

/// The toolchain facade.
pub struct BlackForest {
    /// Target GPU configuration.
    pub gpu: GpuConfig,
    /// Modeling configuration.
    pub config: ModelConfig,
    /// Collection options.
    pub collect: CollectOptions,
}

impl BlackForest {
    /// Creates a toolchain for a GPU with default settings.
    pub fn new(gpu: GpuConfig) -> BlackForest {
        BlackForest {
            gpu,
            config: ModelConfig::default(),
            collect: CollectOptions::default(),
        }
    }

    /// Overrides the model configuration (builder style).
    pub fn with_config(mut self, config: ModelConfig) -> BlackForest {
        self.config = config;
        self
    }

    /// Collects a dataset for a workload over the given sweep of the
    /// primary problem size (reduction also sweeps block sizes).
    pub fn collect(&self, workload: Workload, sizes: &[usize]) -> Result<Dataset> {
        let _span = bf_trace::span!("collect", workload = workload.name(), sizes = sizes.len());
        match workload {
            Workload::Reduce(v) => {
                collect::collect_reduce(&self.gpu, v, sizes, &[64, 128, 256, 512], &self.collect)
            }
            Workload::MatMul => collect::collect_matmul(&self.gpu, sizes, &self.collect),
            Workload::Nw => collect::collect_nw(&self.gpu, sizes, &self.collect),
            Workload::Stencil => {
                collect::collect_stencil(&self.gpu, sizes, &[1, 2, 4], &self.collect)
            }
        }
    }

    /// Runs the full pipeline: collect, fit, analyse.
    pub fn analyze(&self, workload: Workload, sizes: &[usize]) -> Result<AnalysisReport> {
        let dataset = self.collect(workload, sizes)?;
        self.analyze_dataset(workload, dataset)
    }

    /// Runs modeling and analysis on an already-collected dataset.
    pub fn analyze_dataset(&self, workload: Workload, dataset: Dataset) -> Result<AnalysisReport> {
        let chars = workload.characteristics();
        let predictor =
            ProblemScalingPredictor::fit(&dataset, &self.config, &chars, ModelStrategy::Auto)?;
        let bottlenecks = {
            let _span = bf_trace::span!("bottleneck");
            BottleneckReport::analyze(&predictor.model, 10.min(dataset.n_features()))
        };
        Ok(AnalysisReport {
            workload,
            gpu: self.gpu.name.clone(),
            dataset,
            predictor,
            bottlenecks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_matmul_analysis() {
        let bf = BlackForest::new(GpuConfig::gtx580()).with_config(ModelConfig::quick(51));
        let sizes: Vec<usize> = (2..=14).map(|k| k * 16).collect();
        let report = bf.analyze(Workload::MatMul, &sizes).unwrap();
        assert_eq!(report.workload, Workload::MatMul);
        assert!(!report.bottlenecks.findings.is_empty());
        let text = report.render();
        assert!(text.contains("BlackForest analysis"));
        assert!(text.contains("variable importance"));
        assert!(text.contains("bottleneck analysis"));
    }

    #[test]
    fn end_to_end_reduce_analysis() {
        let bf = BlackForest::new(GpuConfig::gtx580()).with_config(ModelConfig::quick(52));
        let sizes: Vec<usize> = (12..=16).map(|e| 1usize << e).collect();
        let report = bf
            .analyze(Workload::Reduce(ReduceVariant::Reduce1), &sizes)
            .unwrap();
        assert!(report.dataset.len() >= 20); // sizes x 4 block sizes
        assert!(report.model().validation.oob_r_squared > 0.0);
    }

    #[test]
    fn workload_names_and_characteristics() {
        assert_eq!(Workload::MatMul.name(), "matrixMul");
        assert_eq!(Workload::Nw.characteristics(), vec!["size"]);
        assert_eq!(
            Workload::Reduce(ReduceVariant::Reduce6).characteristics(),
            vec!["size", "threads"]
        );
        assert_eq!(Workload::Stencil.characteristics(), vec!["size", "sweeps"]);
    }

    #[test]
    fn end_to_end_stencil_analysis() {
        let bf = BlackForest::new(GpuConfig::gtx580()).with_config(ModelConfig::quick(54));
        let sizes: Vec<usize> = (2..=8).map(|k| k * 32).collect();
        let report = bf.analyze(Workload::Stencil, &sizes).unwrap();
        assert!(report.dataset.len() >= 20); // sizes x 3 sweep counts
        assert!(report.model().validation.oob_r_squared > 0.0);
        // Bandwidth-bound kernel: a memory counter should lead.
        let top = &report.bottlenecks.findings[0];
        assert!(
            top.counter != "ipc",
            "unexpected compute-bound profile: {:?}",
            report.model().ranking
        );
    }

    #[test]
    fn predictor_predicts_unseen_size() {
        let bf = BlackForest::new(GpuConfig::gtx580()).with_config(ModelConfig::quick(53));
        let sizes: Vec<usize> = (2..=14).map(|k| k * 16).collect();
        let report = bf.analyze(Workload::MatMul, &sizes).unwrap();
        // 176 is inside the sweep range but need not be a training point.
        let t = report.predictor.predict(&[176.0]).unwrap();
        assert!(t > 0.0 && t.is_finite());
    }
}
