//! Markdown rendering of BlackForest analyses.
//!
//! The plain-text renderer in [`crate::report`] targets terminals; this
//! module produces a self-contained Markdown document — the artefact a
//! performance engineer would attach to a ticket or commit next to the
//! kernel. Covers the same content as `AnalysisReport::render` plus the
//! dataset summary and the prediction table.

use crate::predict::{summarize, PredictionPoint};
use crate::toolchain::AnalysisReport;
use std::fmt::Write as _;

/// Renders a full analysis as a Markdown document.
pub fn analysis_markdown(report: &AnalysisReport) -> String {
    let model = report.model();
    let mut md = String::new();
    let _ = writeln!(
        md,
        "# BlackForest analysis: `{}` on {}\n",
        report.workload.name(),
        report.gpu
    );
    let _ = writeln!(
        md,
        "- runs: **{}** (train {}, test {})",
        report.dataset.len(),
        model.train.len(),
        model.test.len()
    );
    let _ = writeln!(
        md,
        "- forest: OOB MSE **{:.4}**, explained variance **{:.1}%**, test R² **{:.3}**\n",
        model.validation.oob_mse,
        model.validation.oob_r_squared * 100.0,
        model.validation.r_squared
    );

    let _ = writeln!(md, "## Variable importance\n");
    let _ = writeln!(md, "| rank | counter | importance (ΔMSE) | relative |");
    let _ = writeln!(md, "|---:|---|---:|---:|");
    let rel = model.importance.relative();
    for (rank, name) in model.ranking.iter().take(12).enumerate() {
        let j = model.feature_names.iter().position(|n| n == name).unwrap();
        let _ = writeln!(
            md,
            "| {} | `{}` | {:.3e} | {:.1}% |",
            rank + 1,
            name,
            model.importance.mean_increase_mse[j],
            rel[j]
        );
    }
    let _ = writeln!(md);

    if let Some(pca) = &model.pca {
        let _ = writeln!(md, "## PCA refinement\n");
        let _ = writeln!(
            md,
            "{} components explain {:.1}% of predictor variance.\n",
            pca.n_components,
            pca.cumulative * 100.0
        );
        let _ = writeln!(
            md,
            "| component | variance | dimension | dominant loadings |"
        );
        let _ = writeln!(md, "|---|---:|---|---|");
        for c in 0..pca.n_components {
            let dom: Vec<String> = pca
                .dominant(c, 4)
                .into_iter()
                .map(|(n, l)| format!("`{n}` {l:+.2}"))
                .collect();
            let _ = writeln!(
                md,
                "| PC{} | {:.1}% | {} | {} |",
                c + 1,
                pca.explained[c] * 100.0,
                crate::bottleneck::component_label(pca, c),
                dom.join(", ")
            );
        }
        let _ = writeln!(md);
    }

    let _ = writeln!(md, "## Bottleneck findings\n");
    let _ = writeln!(md, "| counter | pattern | trend | relative importance |");
    let _ = writeln!(md, "|---|---|---|---:|");
    for f in &report.bottlenecks.findings {
        let _ = writeln!(
            md,
            "| `{}` | {} | {:?} ({:+.2}) | {:.1}% |",
            f.counter,
            f.category.label(),
            f.trend,
            f.correlation,
            f.relative_importance
        );
    }
    if let Some(primary) = report.bottlenecks.primary() {
        let _ = writeln!(
            md,
            "\n**Primary bottleneck:** {} (via `{}`).\n\n**Suggested fix:** {}\n",
            primary.category.label(),
            primary.counter,
            primary.category.hint()
        );
    }

    let _ = writeln!(md, "## Counter models\n");
    let _ = writeln!(md, "| counter | family | R² | mean residual deviance |");
    let _ = writeln!(md, "|---|---|---:|---:|");
    for m in &report.predictor.counters.models {
        let _ = writeln!(
            md,
            "| `{}` | {} | {:.4} | {:.4} |",
            m.counter,
            m.family(),
            m.r_squared,
            m.mean_residual_deviance
        );
    }
    let _ = writeln!(md);

    if let Ok(points) = report.predictor.evaluate_holdout() {
        if !points.is_empty() {
            let _ = writeln!(md, "## Held-out predictions\n");
            md.push_str(&prediction_markdown(&points, "size"));
        }
    }
    md
}

/// Renders measured-vs-predicted points as a Markdown table with a summary
/// line.
pub fn prediction_markdown(points: &[PredictionPoint], char_name: &str) -> String {
    let mut md = String::new();
    let _ = writeln!(
        md,
        "| {char_name} | measured (ms) | predicted (ms) | error |"
    );
    let _ = writeln!(md, "|---:|---:|---:|---:|");
    for p in points {
        let err = if p.measured_ms != 0.0 {
            100.0 * (p.predicted_ms - p.measured_ms) / p.measured_ms
        } else {
            0.0
        };
        let _ = writeln!(
            md,
            "| {:.0} | {:.4} | {:.4} | {:+.1}% |",
            p.characteristics[0], p.measured_ms, p.predicted_ms, err
        );
    }
    let s = summarize(points);
    let _ = writeln!(
        md,
        "\nMSE {:.4} · R² {:.4} · MAPE {:.1}%\n",
        s.mse, s.r_squared, s.mape
    );
    md
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;
    use crate::toolchain::{BlackForest, Workload};
    use gpu_sim::GpuConfig;

    fn report() -> AnalysisReport {
        let bf = BlackForest::new(GpuConfig::gtx580()).with_config(ModelConfig::quick(81));
        let sizes: Vec<usize> = (2..=13).map(|k| k * 16).collect();
        bf.analyze(Workload::MatMul, &sizes).unwrap()
    }

    #[test]
    fn markdown_contains_all_sections() {
        let md = analysis_markdown(&report());
        for section in [
            "# BlackForest analysis",
            "## Variable importance",
            "## Bottleneck findings",
            "## Counter models",
            "## Held-out predictions",
        ] {
            assert!(md.contains(section), "missing {section}");
        }
        // Tables are well-formed: every table row line has pipes.
        assert!(md.lines().filter(|l| l.starts_with('|')).count() > 10);
    }

    #[test]
    fn markdown_mentions_top_counter_and_fix() {
        let r = report();
        let md = analysis_markdown(&r);
        assert!(md.contains(&format!("`{}`", r.model().ranking[0])));
        if r.bottlenecks.primary().is_some() {
            assert!(md.contains("Suggested fix"));
        }
    }

    #[test]
    fn prediction_markdown_summarises() {
        let points = vec![
            PredictionPoint {
                characteristics: vec![64.0],
                predicted_ms: 1.0,
                measured_ms: 1.1,
            },
            PredictionPoint {
                characteristics: vec![128.0],
                predicted_ms: 4.4,
                measured_ms: 4.0,
            },
        ];
        let md = prediction_markdown(&points, "size");
        assert!(md.contains("| 64 |"));
        assert!(md.contains("MAPE"));
    }
}
