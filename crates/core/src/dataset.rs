//! Datasets: named feature columns plus a response, with splitting and
//! CSV persistence.
//!
//! One row = one profiled run. Features are performance-counter values plus
//! problem characteristics (e.g. `size`) and, for hardware scaling, machine
//! characteristics (Table 2). The response is execution time in
//! milliseconds.

use crate::{BfError, Result};
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// A feature matrix with named columns and a named response vector.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    /// Column names, in row order.
    pub feature_names: Vec<String>,
    /// Observations (row-major).
    pub rows: Vec<Vec<f64>>,
    /// Response name (conventionally `time_ms`).
    pub response_name: String,
    /// Response values, one per row.
    pub response: Vec<f64>,
}

impl Dataset {
    /// Creates an empty dataset with the given schema.
    pub fn new(feature_names: Vec<String>, response_name: &str) -> Dataset {
        Dataset {
            feature_names,
            rows: Vec::new(),
            response_name: response_name.to_string(),
            response: Vec::new(),
        }
    }

    /// Appends one observation. The row length must match the schema.
    pub fn push(&mut self, row: Vec<f64>, response: f64) -> Result<()> {
        if row.len() != self.feature_names.len() {
            return Err(BfError::Data(format!(
                "row has {} values, schema has {} features",
                row.len(),
                self.feature_names.len()
            )));
        }
        self.rows.push(row);
        self.response.push(response);
        Ok(())
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the dataset has no observations.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Index of a named feature.
    pub fn feature_index(&self, name: &str) -> Option<usize> {
        self.feature_names.iter().position(|n| n == name)
    }

    /// Copies one named feature column.
    pub fn column(&self, name: &str) -> Option<Vec<f64>> {
        let j = self.feature_index(name)?;
        Some(self.rows.iter().map(|r| r[j]).collect())
    }

    /// Random train/test split (the paper uses 80:20). Deterministic for a
    /// given seed; both halves keep the full schema.
    pub fn split(&self, train_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        let mut order: Vec<usize> = (0..self.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        let n_train = ((self.len() as f64) * train_fraction).round() as usize;
        let n_train = n_train.clamp(1, self.len().saturating_sub(1).max(1));
        let mut train = Dataset::new(self.feature_names.clone(), &self.response_name);
        let mut test = Dataset::new(self.feature_names.clone(), &self.response_name);
        for (k, &i) in order.iter().enumerate() {
            let target = if k < n_train { &mut train } else { &mut test };
            target.rows.push(self.rows[i].clone());
            target.response.push(self.response[i]);
        }
        (train, test)
    }

    /// Projects the dataset onto a subset of named features (keeping the
    /// response) — used after variable-importance selection.
    pub fn select(&self, names: &[String]) -> Result<Dataset> {
        let idx: Vec<usize> = names
            .iter()
            .map(|n| {
                self.feature_index(n)
                    .ok_or_else(|| BfError::Data(format!("unknown feature {n}")))
            })
            .collect::<Result<_>>()?;
        let mut out = Dataset::new(names.to_vec(), &self.response_name);
        for (row, &y) in self.rows.iter().zip(self.response.iter()) {
            out.rows.push(idx.iter().map(|&j| row[j]).collect());
            out.response.push(y);
        }
        Ok(out)
    }

    /// Appends a constant column (used to inject machine characteristics
    /// into every row of a per-GPU dataset).
    pub fn add_constant_column(&mut self, name: &str, value: f64) {
        self.feature_names.push(name.to_string());
        for row in &mut self.rows {
            row.push(value);
        }
    }

    /// Vertically concatenates another dataset with an identical schema.
    pub fn append(&mut self, other: &Dataset) -> Result<()> {
        if other.feature_names != self.feature_names || other.response_name != self.response_name {
            return Err(BfError::Data("schema mismatch in append".into()));
        }
        self.rows.extend(other.rows.iter().cloned());
        self.response.extend(other.response.iter().copied());
        Ok(())
    }

    /// Drops features that are constant across all rows (they carry no
    /// signal and inflate importance noise). Returns the removed names.
    pub fn drop_constant_features(&mut self) -> Vec<String> {
        if self.rows.is_empty() {
            return Vec::new();
        }
        let keep: Vec<bool> = (0..self.n_features())
            .map(|j| {
                let first = self.rows[0][j];
                self.rows.iter().any(|r| r[j] != first)
            })
            .collect();
        let removed = self
            .feature_names
            .iter()
            .zip(keep.iter())
            .filter(|(_, &k)| !k)
            .map(|(n, _)| n.clone())
            .collect();
        self.feature_names = self
            .feature_names
            .iter()
            .zip(keep.iter())
            .filter(|(_, &k)| k)
            .map(|(n, _)| n.clone())
            .collect();
        for row in &mut self.rows {
            let mut j = 0;
            row.retain(|_| {
                let k = keep[j];
                j += 1;
                k
            });
        }
        removed
    }

    /// Per-feature summary statistics: `(name, min, mean, max)` rows plus a
    /// final row for the response — the quick sanity view a practitioner
    /// wants right after collection.
    pub fn describe(&self) -> Vec<(String, f64, f64, f64)> {
        let mut out = Vec::with_capacity(self.n_features() + 1);
        let summarize = |name: &str, vals: &[f64]| {
            let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mean = if vals.is_empty() {
                0.0
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            };
            (name.to_string(), min, mean, max)
        };
        for (j, name) in self.feature_names.iter().enumerate() {
            let col: Vec<f64> = self.rows.iter().map(|r| r[j]).collect();
            out.push(summarize(name, &col));
        }
        out.push(summarize(&self.response_name, &self.response));
        out
    }

    /// Writes the dataset as CSV (header = features then response).
    pub fn write_csv(&self, path: &Path) -> Result<()> {
        let file = std::fs::File::create(path)?;
        let mut w = BufWriter::new(file);
        writeln!(w, "{},{}", self.feature_names.join(","), self.response_name)?;
        for (row, y) in self.rows.iter().zip(self.response.iter()) {
            let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
            writeln!(w, "{},{y}", cells.join(","))?;
        }
        w.flush()?;
        Ok(())
    }

    /// Writes the dataset as JSON (schema-preserving alternative to CSV,
    /// convenient next to the JSON model files).
    pub fn write_json(&self, path: &Path) -> Result<()> {
        let file = std::fs::File::create(path)?;
        serde_json::to_writer(BufWriter::new(file), self)
            .map_err(|e| BfError::Data(format!("serialize dataset: {e}")))
    }

    /// Reads a dataset previously written by [`Dataset::write_json`].
    pub fn read_json(path: &Path) -> Result<Dataset> {
        let file = std::fs::File::open(path)?;
        serde_json::from_reader(BufReader::new(file))
            .map_err(|e| BfError::Data(format!("deserialize dataset: {e}")))
    }

    /// Reads a dataset previously written by [`Dataset::write_csv`]. The
    /// last column is the response.
    pub fn read_csv(path: &Path) -> Result<Dataset> {
        let file = std::fs::File::open(path)?;
        let mut lines = BufReader::new(file).lines();
        let header = lines
            .next()
            .ok_or_else(|| BfError::Data("empty csv".into()))??;
        let mut names: Vec<String> = header.split(',').map(|s| s.to_string()).collect();
        let response_name = names
            .pop()
            .ok_or_else(|| BfError::Data("csv header has no columns".into()))?;
        let mut ds = Dataset::new(names, &response_name);
        for (lineno, line) in lines.enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let mut vals: Vec<f64> = Vec::with_capacity(ds.n_features() + 1);
            for cell in line.split(',') {
                vals.push(cell.trim().parse::<f64>().map_err(|e| {
                    BfError::Data(format!("line {}: bad number {cell:?}: {e}", lineno + 2))
                })?);
            }
            let y = vals
                .pop()
                .ok_or_else(|| BfError::Data(format!("line {}: empty", lineno + 2)))?;
            ds.push(vals, y)?;
        }
        Ok(ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let mut ds = Dataset::new(vec!["a".into(), "b".into(), "c".into()], "time_ms");
        for i in 0..20 {
            ds.push(vec![i as f64, (i * 2) as f64, 5.0], i as f64 * 1.5)
                .unwrap();
        }
        ds
    }

    #[test]
    fn push_rejects_wrong_width() {
        let mut ds = sample();
        assert!(ds.push(vec![1.0], 0.0).is_err());
    }

    #[test]
    fn split_preserves_rows_and_is_deterministic() {
        let ds = sample();
        let (tr1, te1) = ds.split(0.8, 42);
        let (tr2, te2) = ds.split(0.8, 42);
        assert_eq!(tr1.len(), 16);
        assert_eq!(te1.len(), 4);
        assert_eq!(tr1.rows, tr2.rows);
        assert_eq!(te1.response, te2.response);
        // Different seed gives a different shuffle.
        let (tr3, _) = ds.split(0.8, 43);
        assert_ne!(tr1.rows, tr3.rows);
    }

    #[test]
    fn split_never_leaves_empty_train() {
        let mut ds = Dataset::new(vec!["x".into()], "y");
        ds.push(vec![1.0], 1.0).unwrap();
        ds.push(vec![2.0], 2.0).unwrap();
        let (tr, te) = ds.split(0.8, 1);
        assert_eq!(tr.len() + te.len(), 2);
        assert!(!tr.is_empty());
    }

    #[test]
    fn select_projects_columns() {
        let ds = sample();
        let sub = ds.select(&["c".into(), "a".into()]).unwrap();
        assert_eq!(sub.feature_names, vec!["c", "a"]);
        assert_eq!(sub.rows[3], vec![5.0, 3.0]);
        assert_eq!(sub.response, ds.response);
        assert!(ds.select(&["nope".into()]).is_err());
    }

    #[test]
    fn add_constant_column_extends_every_row() {
        let mut ds = sample();
        ds.add_constant_column("mbw", 192.4);
        assert_eq!(ds.n_features(), 4);
        assert!(ds.rows.iter().all(|r| r[3] == 192.4));
    }

    #[test]
    fn append_requires_matching_schema() {
        let mut a = sample();
        let b = sample();
        let n = a.len();
        a.append(&b).unwrap();
        assert_eq!(a.len(), 2 * n);
        let mut c = Dataset::new(vec!["x".into()], "time_ms");
        c.push(vec![1.0], 1.0).unwrap();
        assert!(a.append(&c).is_err());
    }

    #[test]
    fn drop_constant_features_removes_c() {
        let mut ds = sample();
        let removed = ds.drop_constant_features();
        assert_eq!(removed, vec!["c".to_string()]);
        assert_eq!(ds.feature_names, vec!["a", "b"]);
        assert_eq!(ds.rows[2].len(), 2);
    }

    #[test]
    fn csv_round_trip() {
        let ds = sample();
        let dir = std::env::temp_dir().join("bf_dataset_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        ds.write_csv(&path).unwrap();
        let back = Dataset::read_csv(&path).unwrap();
        assert_eq!(back.feature_names, ds.feature_names);
        assert_eq!(back.response_name, ds.response_name);
        assert_eq!(back.len(), ds.len());
        for (a, b) in back.rows.iter().zip(ds.rows.iter()) {
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x - y).abs() < 1e-12);
            }
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn json_round_trip_is_exact() {
        let ds = sample();
        let dir = std::env::temp_dir().join("bf_dataset_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.json");
        ds.write_json(&path).unwrap();
        let back = Dataset::read_json(&path).unwrap();
        assert_eq!(back.feature_names, ds.feature_names);
        assert_eq!(back.rows, ds.rows);
        assert_eq!(back.response, ds.response);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn read_csv_rejects_garbage() {
        let dir = std::env::temp_dir().join("bf_dataset_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "a,b,y\n1,2,3\n1,zzz,3\n").unwrap();
        assert!(Dataset::read_csv(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn column_returns_named_values() {
        let ds = sample();
        assert_eq!(ds.column("b").unwrap()[4], 8.0);
        assert!(ds.column("zzz").is_none());
    }

    #[test]
    fn describe_covers_all_columns_and_response() {
        let ds = sample();
        let desc = ds.describe();
        assert_eq!(desc.len(), 4); // a, b, c + response
        let (name, min, mean, max) = &desc[0];
        assert_eq!(name, "a");
        assert_eq!(*min, 0.0);
        assert_eq!(*max, 19.0);
        assert!((mean - 9.5).abs() < 1e-12);
        let (rname, _, _, rmax) = &desc[3];
        assert_eq!(rname, "time_ms");
        assert!((rmax - 19.0 * 1.5).abs() < 1e-12);
    }
}
