//! Human-readable rendering of BlackForest analyses.
//!
//! The paper stresses that its outputs — variable-importance plots, partial
//! dependence, PCA loadings — must be digestible by performance engineers.
//! This module renders them as plain-text tables and bar/line charts,
//! mirroring the figures: importance bars (Figs 2a–4a, 5a, 6a, 8a/b),
//! partial-dependence curves (Figs 2b–4b), counter-model fits (5c, 6c) and
//! measured-vs-predicted tables (5b, 6b, 7, 8c).

use crate::bottleneck::BottleneckReport;
use crate::model::{BlackForestModel, PcaSummary};
use crate::predict::{summarize, PredictionPoint};
use std::fmt::Write as _;

/// Renders a horizontal ASCII bar chart of variable importance, most
/// important first (the x-axis is %IncMSE relative to the top variable).
pub fn importance_chart(model: &BlackForestModel, top: usize) -> String {
    let rel = model.importance.relative();
    let mut out = String::new();
    let _ = writeln!(out, "variable importance (increase in OOB MSE, relative):");
    let width = model
        .ranking
        .iter()
        .take(top)
        .map(|n| n.len())
        .max()
        .unwrap_or(8);
    for name in model.ranking.iter().take(top) {
        let j = model.feature_names.iter().position(|n| n == name).unwrap();
        let pct = rel[j];
        let bar = "#".repeat((pct / 2.5).round() as usize);
        let _ = writeln!(out, "  {name:width$}  {bar} {pct:6.1}%");
    }
    out
}

/// Renders a partial-dependence curve as a compact ASCII line plot.
pub fn partial_dependence_chart(model: &BlackForestModel, feature: &str, points: usize) -> String {
    let Some(pd) = model.partial_dependence(feature, points) else {
        return format!("(no such feature: {feature})\n");
    };
    let lo = pd.response.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = pd
        .response
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "partial dependence of time on {feature} (trend: {:?}, corr {:+.2}):",
        pd.trend(),
        pd.correlation()
    );
    const ROWS: usize = 8;
    for r in (0..ROWS).rev() {
        let threshold = if hi > lo {
            lo + (hi - lo) * r as f64 / (ROWS - 1) as f64
        } else {
            lo
        };
        let mut line = String::new();
        for &v in &pd.response {
            line.push(if v >= threshold { '*' } else { ' ' });
        }
        let _ = writeln!(out, "  {threshold:10.3} |{line}");
    }
    let _ = writeln!(
        out,
        "  {:>10}  {:<12.4}...{:>12.4}",
        "",
        pd.grid[0],
        pd.grid[pd.grid.len() - 1]
    );
    out
}

/// Renders the PCA summary: retained components, variance, the §5-style
/// performance-dimension label, and dominant variables with signed loadings.
pub fn pca_table(pca: &PcaSummary, top_vars: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "PCA: {} components explain {:.1}% of counter variance",
        pca.n_components,
        pca.cumulative * 100.0
    );
    for c in 0..pca.n_components {
        let _ = writeln!(
            out,
            "  PC{} ({:.1}%) — {}:",
            c + 1,
            pca.explained[c] * 100.0,
            crate::bottleneck::component_label(pca, c)
        );
        for (name, loading) in pca.dominant(c, top_vars) {
            let _ = writeln!(out, "    {loading:+.3}  {name}");
        }
    }
    out
}

/// Renders measured-vs-predicted points with summary statistics.
pub fn prediction_table(points: &[PredictionPoint], char_name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  {char_name:>10}  {:>14}  {:>14}  {:>8}",
        "measured (ms)", "predicted (ms)", "err %"
    );
    for p in points {
        let err = if p.measured_ms != 0.0 {
            100.0 * (p.predicted_ms - p.measured_ms) / p.measured_ms
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "  {:>10.0}  {:>14.4}  {:>14.4}  {:>+7.1}%",
            p.characteristics[0], p.measured_ms, p.predicted_ms, err
        );
    }
    let s = summarize(points);
    let _ = writeln!(
        out,
        "  MSE {:.4}  R^2 {:.4}  MAPE {:.1}%",
        s.mse, s.r_squared, s.mape
    );
    out
}

/// Renders the bottleneck report with categories, trends and hints.
pub fn bottleneck_text(report: &BottleneckReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "bottleneck analysis:");
    for f in &report.findings {
        let _ = writeln!(
            out,
            "  [{:5.1}%] {} -> {} (trend {:?}, corr {:+.2})",
            f.relative_importance,
            f.counter,
            f.category.label(),
            f.trend,
            f.correlation
        );
    }
    if let Some(primary) = report.primary() {
        let _ = writeln!(
            out,
            "primary bottleneck: {} ({})",
            primary.category.label(),
            primary.counter
        );
        let _ = writeln!(out, "suggested fix: {}", primary.category.hint());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{collect_matmul, CollectOptions};
    use crate::model::{BlackForestModel, ModelConfig};
    use crate::predict::PredictionPoint;
    use gpu_sim::GpuConfig;

    fn model() -> BlackForestModel {
        let gpu = GpuConfig::gtx580();
        let sizes: Vec<usize> = (2..=13).map(|k| k * 16).collect();
        let ds = collect_matmul(&gpu, &sizes, &CollectOptions::default()).unwrap();
        BlackForestModel::fit(&ds, &ModelConfig::quick(41)).unwrap()
    }

    #[test]
    fn importance_chart_lists_top_features() {
        let m = model();
        let chart = importance_chart(&m, 5);
        assert!(chart.contains('%'));
        assert!(chart.contains(&m.ranking[0]));
        // 5 features + header.
        assert_eq!(chart.lines().count(), 6);
    }

    #[test]
    fn partial_dependence_chart_renders_grid() {
        let m = model();
        let chart = partial_dependence_chart(&m, "size", 16);
        assert!(chart.contains("partial dependence"));
        assert!(chart.contains('*'));
        assert!(partial_dependence_chart(&m, "zzz", 4).contains("no such feature"));
    }

    #[test]
    fn pca_table_mentions_components() {
        let m = model();
        let pca = m.pca.as_ref().unwrap();
        let t = pca_table(pca, 3);
        assert!(t.contains("PC1"));
        assert!(t.contains('%'));
    }

    #[test]
    fn prediction_table_includes_summary() {
        let points = vec![
            PredictionPoint {
                characteristics: vec![64.0],
                predicted_ms: 1.1,
                measured_ms: 1.0,
            },
            PredictionPoint {
                characteristics: vec![128.0],
                predicted_ms: 4.0,
                measured_ms: 4.2,
            },
        ];
        let t = prediction_table(&points, "size");
        assert!(t.contains("MSE"));
        assert!(t.contains("MAPE"));
        assert!(t.lines().count() >= 4);
    }

    #[test]
    fn bottleneck_text_has_primary_and_hint() {
        let m = model();
        let report = crate::bottleneck::BottleneckReport::analyze(&m, 6);
        let t = bottleneck_text(&report);
        assert!(t.contains("bottleneck analysis"));
        if report.primary().is_some() {
            assert!(t.contains("suggested fix"));
        }
    }
}
