//! Performance prediction: problem scaling and hardware scaling (§6).
//!
//! *Problem scaling*: chain the counter models through the reduced forest —
//! characteristics → predicted counters → predicted execution time — so
//! unseen problem sizes can be predicted without running the application.
//!
//! *Hardware scaling*: train on one GPU (with Table-2 machine metrics
//! injected), predict on a similar GPU. Counter sets differ between
//! architectures, so the predictor works on the schema intersection; when
//! importance rankings diverge (the paper's NW-on-Kepler failure mode), it
//! falls back to the paper's workaround of training on a *mixture* of the
//! important variables from both architectures.

use crate::countermodel::{CounterModelSet, ModelStrategy};
use crate::dataset::Dataset;
use crate::model::{BlackForestModel, ModelConfig};
use crate::{BfError, Result};
use bf_forest::{ForestParams, RandomForest};
use bf_linalg::stats;
use serde::{Deserialize, Serialize};

/// A measured-vs-predicted pair for one evaluation point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PredictionPoint {
    /// The problem characteristics of the point (e.g. `[size]`).
    pub characteristics: Vec<f64>,
    /// Predicted execution time (ms).
    pub predicted_ms: f64,
    /// Measured execution time (ms).
    pub measured_ms: f64,
}

/// Summary statistics over a set of prediction points.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PredictionSummary {
    /// Mean squared error.
    pub mse: f64,
    /// R² of predictions vs measurements.
    pub r_squared: f64,
    /// Mean absolute percentage error.
    pub mape: f64,
}

/// Summarises prediction points.
pub fn summarize(points: &[PredictionPoint]) -> PredictionSummary {
    let pred: Vec<f64> = points.iter().map(|p| p.predicted_ms).collect();
    let meas: Vec<f64> = points.iter().map(|p| p.measured_ms).collect();
    PredictionSummary {
        mse: stats::mse(&pred, &meas),
        r_squared: stats::r_squared(&pred, &meas),
        mape: stats::mape(&pred, &meas),
    }
}

// ---------------------------------------------------------------------------
// Problem scaling
// ---------------------------------------------------------------------------

/// Predicts execution time for unseen problem characteristics on the
/// training GPU.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProblemScalingPredictor {
    /// The underlying BlackForest model.
    pub model: BlackForestModel,
    /// Counter models driving the prediction chain.
    pub counters: CounterModelSet,
}

impl ProblemScalingPredictor {
    /// Fits the full chain on a collected dataset.
    pub fn fit(
        data: &Dataset,
        config: &ModelConfig,
        characteristics: &[&str],
        strategy: ModelStrategy,
    ) -> Result<ProblemScalingPredictor> {
        let model = BlackForestModel::fit(data, config)?;
        let chars: Vec<String> = characteristics.iter().map(|s| s.to_string()).collect();
        let counters = CounterModelSet::fit(&model.train, &model.selected, &chars, strategy)?;
        Ok(ProblemScalingPredictor { model, counters })
    }

    /// Predicts execution time from problem characteristics alone.
    pub fn predict(&self, characteristics: &[f64]) -> Result<f64> {
        if characteristics.len() != self.counters.characteristics.len() {
            return Err(BfError::Data(format!(
                "expected {} characteristics, got {}",
                self.counters.characteristics.len(),
                characteristics.len()
            )));
        }
        let row = self.counters.predict(characteristics);
        self.model.predict_selected(&row)
    }

    /// Batched [`Self::predict`]: counter models run per row (they are
    /// closed-form and cheap), then the reduced forest evaluates the whole
    /// batch in one pass per tree. Bit-identical per row to `predict`.
    pub fn predict_batch(&self, characteristic_rows: &[Vec<f64>]) -> Result<Vec<f64>> {
        let want = self.counters.characteristics.len();
        for chars in characteristic_rows {
            if chars.len() != want {
                return Err(BfError::Data(format!(
                    "expected {want} characteristics, got {}",
                    chars.len()
                )));
            }
        }
        let rows: Vec<Vec<f64>> = characteristic_rows
            .iter()
            .map(|c| self.counters.predict(c))
            .collect();
        self.model.predict_selected_batch(&rows)
    }

    /// Evaluates the chain against the model's held-out test split (the
    /// paper's Figures 5b and 6b). The test rows carry measured times; the
    /// predictions use *only* their characteristics.
    pub fn evaluate_holdout(&self) -> Result<Vec<PredictionPoint>> {
        let char_idx: Vec<usize> = self
            .counters
            .characteristics
            .iter()
            .map(|c| {
                self.model
                    .test
                    .feature_index(c)
                    .ok_or_else(|| BfError::Data(format!("characteristic {c} missing in test")))
            })
            .collect::<Result<_>>()?;
        let mut points = Vec::new();
        for (row, &t) in self
            .model
            .test
            .rows
            .iter()
            .zip(self.model.test.response.iter())
        {
            let chars: Vec<f64> = char_idx.iter().map(|&j| row[j]).collect();
            let predicted_ms = self.predict(&chars)?;
            points.push(PredictionPoint {
                characteristics: chars,
                predicted_ms,
                measured_ms: t,
            });
        }
        points.sort_by(|a, b| {
            a.characteristics[0]
                .partial_cmp(&b.characteristics[0])
                .unwrap()
        });
        Ok(points)
    }

    /// Persists the fitted predictor (forest, counter models, splits) as
    /// JSON so it can be reloaded without re-collecting or re-training.
    pub fn save(&self, path: &std::path::Path) -> Result<()> {
        let file = std::fs::File::create(path)?;
        serde_json::to_writer(std::io::BufWriter::new(file), self)
            .map_err(|e| BfError::Data(format!("serialize model: {e}")))
    }

    /// Loads a predictor previously written by [`Self::save`].
    pub fn load(path: &std::path::Path) -> Result<ProblemScalingPredictor> {
        let file = std::fs::File::open(path)?;
        serde_json::from_reader(std::io::BufReader::new(file))
            .map_err(|e| BfError::Data(format!("deserialize model: {e}")))
    }
}

// ---------------------------------------------------------------------------
// Hardware scaling
// ---------------------------------------------------------------------------

/// How the hardware-scaling feature set was chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HwFeatureStrategy {
    /// Top-k variables of the source-GPU model only (works when rankings
    /// agree across GPUs, e.g. MM in §6.2).
    SourceImportance,
    /// The paper's workaround: union of the top variables from both GPUs
    /// (needed when rankings diverge, e.g. NW in §6.2).
    MixedImportance,
}

/// Predicts execution time on a target GPU from a forest trained on a
/// source GPU.
pub struct HardwareScalingPredictor {
    /// Features the transfer forest uses (subset of the schema
    /// intersection).
    pub features: Vec<String>,
    /// Forest trained on the source GPU's data.
    pub forest: RandomForest,
    /// Source importance ranking (top of).
    pub source_ranking: Vec<String>,
    /// Target calibration ranking (top of).
    pub target_ranking: Vec<String>,
    /// Rank-overlap similarity of the two top-k rankings in [0, 1] — the
    /// paper's "sufficiently similar hardware" test.
    pub similarity: f64,
    /// Spearman rank correlation of the two full importance rankings over
    /// the common features (a smoother similarity statistic than top-k
    /// overlap; robust to ties near the cutoff).
    pub rank_correlation: f64,
    /// Strategy that produced `features`.
    pub strategy: HwFeatureStrategy,
}

/// Spearman rank correlation between two orderings of the same name set.
fn spearman(a: &[String], b: &[String]) -> f64 {
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let pos_b: std::collections::HashMap<&str, usize> = b
        .iter()
        .enumerate()
        .map(|(i, name)| (name.as_str(), i))
        .collect();
    let mut d2 = 0.0f64;
    for (i, name) in a.iter().enumerate() {
        let j = pos_b.get(name.as_str()).copied().unwrap_or(n);
        let d = i as f64 - j as f64;
        d2 += d * d;
    }
    1.0 - 6.0 * d2 / (n as f64 * (n as f64 * n as f64 - 1.0))
}

/// Intersection of two datasets' feature names, preserving `a`'s order.
fn common_features(a: &Dataset, b: &Dataset) -> Vec<String> {
    a.feature_names
        .iter()
        .filter(|n| b.feature_index(n).is_some())
        .cloned()
        .collect()
}

impl HardwareScalingPredictor {
    /// Trains the transfer model.
    ///
    /// * `source` — full sweep on the training GPU (machine metrics
    ///   injected as constant columns are fine; they are dropped from the
    ///   schema intersection only if absent on the target).
    /// * `target_train` — the target GPU's *training* split, used solely for
    ///   calibration (importance ranking), never for fitting the forest.
    pub fn fit(
        source: &Dataset,
        target_train: &Dataset,
        config: &ModelConfig,
        strategy: HwFeatureStrategy,
    ) -> Result<HardwareScalingPredictor> {
        let common = common_features(source, target_train);
        if common.is_empty() {
            return Err(BfError::Data(
                "no common features between source and target".into(),
            ));
        }
        let src = source.select(&common)?;
        let tgt = target_train.select(&common)?;

        // Importance on both sides (full common schema).
        let params = ForestParams {
            n_trees: config.n_trees,
            min_node_size: config.min_node_size.min(src.len() / 4).max(1),
            split_strategy: config.split_strategy,
            ..ForestParams::default().with_seed(config.seed)
        };
        let src_forest = RandomForest::fit(&src.rows, &src.response, &params)
            .map_err(|e| BfError::Fit(e.to_string()))?;
        let src_rank: Vec<String> = src_forest
            .permutation_importance()
            .ranking()
            .into_iter()
            .map(|j| common[j].clone())
            .collect();
        let tgt_forest = RandomForest::fit(&tgt.rows, &tgt.response, &params)
            .map_err(|e| BfError::Fit(e.to_string()))?;
        let tgt_rank: Vec<String> = tgt_forest
            .permutation_importance()
            .ranking()
            .into_iter()
            .map(|j| common[j].clone())
            .collect();

        let k = config.top_k.min(common.len()).max(1);
        let src_top: Vec<String> = src_rank.iter().take(k).cloned().collect();
        let tgt_top: Vec<String> = tgt_rank.iter().take(k).cloned().collect();
        let overlap = src_top.iter().filter(|n| tgt_top.contains(n)).count();
        let similarity = overlap as f64 / k as f64;

        let features: Vec<String> = match strategy {
            HwFeatureStrategy::SourceImportance => src_top,
            HwFeatureStrategy::MixedImportance => {
                let mut mixed = src_top;
                for n in tgt_top {
                    if !mixed.contains(&n) {
                        mixed.push(n);
                    }
                }
                mixed
            }
        };

        // The transfer forest trains on the source data restricted to the
        // chosen features.
        let src_sel = src.select(&features)?;
        let forest = RandomForest::fit(&src_sel.rows, &src_sel.response, &params)
            .map_err(|e| BfError::Fit(e.to_string()))?;
        let rank_correlation = spearman(&src_rank, &tgt_rank);
        Ok(HardwareScalingPredictor {
            features,
            forest,
            source_ranking: src_rank,
            target_ranking: tgt_rank,
            similarity,
            rank_correlation,
            strategy,
        })
    }

    /// Predicts times for the target GPU's test split and pairs them with
    /// the measured values (the paper's Figures 7 and 8c).
    pub fn evaluate(
        &self,
        target_test: &Dataset,
        characteristic: &str,
    ) -> Result<Vec<PredictionPoint>> {
        let sel = target_test.select(&self.features)?;
        let char_col = target_test
            .column(characteristic)
            .ok_or_else(|| BfError::Data(format!("characteristic {characteristic} missing")))?;
        let mut points = Vec::new();
        for ((row, &t), &c) in sel
            .rows
            .iter()
            .zip(sel.response.iter())
            .zip(char_col.iter())
        {
            let predicted_ms = self
                .forest
                .predict_row(row)
                .map_err(|e| BfError::Fit(e.to_string()))?;
            points.push(PredictionPoint {
                characteristics: vec![c],
                predicted_ms,
                measured_ms: t,
            });
        }
        points.sort_by(|a, b| {
            a.characteristics[0]
                .partial_cmp(&b.characteristics[0])
                .unwrap()
        });
        Ok(points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{collect_matmul, CollectOptions};
    use gpu_sim::GpuConfig;

    fn mm_dataset(gpu: &GpuConfig, metrics: bool) -> Dataset {
        let sizes: Vec<usize> = (2..=16).map(|k| k * 16).collect();
        let opts = CollectOptions {
            include_machine_metrics: metrics,
            drop_constant: !metrics,
            ..CollectOptions::default()
        };
        collect_matmul(gpu, &sizes, &opts).unwrap()
    }

    #[test]
    fn problem_scaling_predicts_holdout_well() {
        // A fuller sweep (closer to the paper's 24 runs, with repetitions)
        // so the held-out points span the response range.
        let sizes: Vec<usize> = (2..=28).step_by(2).map(|k| k * 16).collect();
        let opts = CollectOptions::default().with_repetitions(2, 0.02);
        let data = collect_matmul(&GpuConfig::gtx580(), &sizes, &opts).unwrap();
        let p = ProblemScalingPredictor::fit(
            &data,
            &ModelConfig::quick(31),
            &["size"],
            ModelStrategy::Auto,
        )
        .unwrap();
        let points = p.evaluate_holdout().unwrap();
        assert!(!points.is_empty());
        let s = summarize(&points);
        assert!(s.r_squared > 0.5, "r2 {}", s.r_squared);
    }

    #[test]
    fn problem_scaling_is_monotone_in_size_for_mm() {
        let data = mm_dataset(&GpuConfig::gtx580(), false);
        let p = ProblemScalingPredictor::fit(
            &data,
            &ModelConfig::quick(32),
            &["size"],
            ModelStrategy::Auto,
        )
        .unwrap();
        let t_small = p.predict(&[48.0]).unwrap();
        let t_big = p.predict(&[240.0]).unwrap();
        assert!(t_big > t_small);
    }

    #[test]
    fn predict_batch_bit_identical_to_single_predictions() {
        let data = mm_dataset(&GpuConfig::gtx580(), false);
        let p = ProblemScalingPredictor::fit(
            &data,
            &ModelConfig::quick(38),
            &["size"],
            ModelStrategy::Glm,
        )
        .unwrap();
        let queries: Vec<Vec<f64>> = [32.0, 48.0, 97.0, 160.0, 240.0, 500.0]
            .iter()
            .map(|&s| vec![s])
            .collect();
        let batch = p.predict_batch(&queries).unwrap();
        assert_eq!(batch.len(), queries.len());
        for (q, b) in queries.iter().zip(batch.iter()) {
            assert_eq!(p.predict(q).unwrap().to_bits(), b.to_bits());
        }
        // Arity errors surface for any bad row in the batch.
        assert!(p.predict_batch(&[vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn predict_rejects_wrong_arity() {
        let data = mm_dataset(&GpuConfig::gtx580(), false);
        let p = ProblemScalingPredictor::fit(
            &data,
            &ModelConfig::quick(33),
            &["size"],
            ModelStrategy::Glm,
        )
        .unwrap();
        assert!(p.predict(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn hardware_scaling_mm_transfers_fermi_to_kepler() {
        let src = mm_dataset(&GpuConfig::gtx580(), true);
        let tgt = mm_dataset(&GpuConfig::k20m(), true);
        let (tgt_train, tgt_test) = tgt.split(0.8, 7);
        let hw = HardwareScalingPredictor::fit(
            &src,
            &tgt_train,
            &ModelConfig::quick(34),
            HwFeatureStrategy::SourceImportance,
        )
        .unwrap();
        assert!(hw.similarity >= 0.0 && hw.similarity <= 1.0);
        let points = hw.evaluate(&tgt_test, "size").unwrap();
        assert_eq!(points.len(), tgt_test.len());
        // Predictions should at least be positive and finite.
        assert!(points
            .iter()
            .all(|p| p.predicted_ms.is_finite() && p.predicted_ms > 0.0));
    }

    #[test]
    fn mixed_strategy_uses_superset_of_source_features() {
        let src = mm_dataset(&GpuConfig::gtx580(), true);
        let tgt = mm_dataset(&GpuConfig::k20m(), true);
        let (tgt_train, _) = tgt.split(0.8, 7);
        let cfg = ModelConfig::quick(35);
        let a = HardwareScalingPredictor::fit(
            &src,
            &tgt_train,
            &cfg,
            HwFeatureStrategy::SourceImportance,
        )
        .unwrap();
        let b = HardwareScalingPredictor::fit(
            &src,
            &tgt_train,
            &cfg,
            HwFeatureStrategy::MixedImportance,
        )
        .unwrap();
        assert!(b.features.len() >= a.features.len());
        for f in &a.features {
            assert!(b.features.contains(f));
        }
    }

    #[test]
    fn common_features_excludes_arch_specific_counters() {
        let src = mm_dataset(&GpuConfig::gtx580(), true);
        let tgt = mm_dataset(&GpuConfig::k20m(), true);
        let common = common_features(&src, &tgt);
        assert!(!common.iter().any(|n| n == "l1_global_load_hit"));
        assert!(!common.iter().any(|n| n == "shared_load_replay"));
        assert!(common.iter().any(|n| n == "size"));
        assert!(common.iter().any(|n| n == "mbw"));
    }

    #[test]
    fn predictor_round_trips_through_json() {
        let data = mm_dataset(&GpuConfig::gtx580(), false);
        let p = ProblemScalingPredictor::fit(
            &data,
            &ModelConfig::quick(36),
            &["size"],
            ModelStrategy::Glm,
        )
        .unwrap();
        let dir = std::env::temp_dir().join("bf_predict_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        p.save(&path).unwrap();
        let back = ProblemScalingPredictor::load(&path).unwrap();
        for q in [48.0, 160.0, 240.0] {
            assert_eq!(p.predict(&[q]).unwrap(), back.predict(&[q]).unwrap());
        }
        assert_eq!(p.model.selected, back.model.selected);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_garbage_file() {
        let dir = std::env::temp_dir().join("bf_predict_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, "{not json").unwrap();
        assert!(ProblemScalingPredictor::load(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn spearman_identity_and_reversal() {
        let a: Vec<String> = (0..6).map(|i| format!("c{i}")).collect();
        assert!((spearman(&a, &a) - 1.0).abs() < 1e-12);
        let rev: Vec<String> = a.iter().rev().cloned().collect();
        assert!((spearman(&a, &rev) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_correlation_is_reported_and_bounded() {
        let src = mm_dataset(&GpuConfig::gtx580(), true);
        let tgt = mm_dataset(&GpuConfig::k20m(), true);
        let (tgt_train, _) = tgt.split(0.8, 7);
        let hw = HardwareScalingPredictor::fit(
            &src,
            &tgt_train,
            &ModelConfig::quick(37),
            HwFeatureStrategy::SourceImportance,
        )
        .unwrap();
        assert!((-1.0..=1.0).contains(&hw.rank_correlation));
    }

    #[test]
    fn summarize_computes_consistent_metrics() {
        let points = vec![
            PredictionPoint {
                characteristics: vec![1.0],
                predicted_ms: 1.0,
                measured_ms: 1.0,
            },
            PredictionPoint {
                characteristics: vec![2.0],
                predicted_ms: 2.0,
                measured_ms: 2.2,
            },
        ];
        let s = summarize(&points);
        assert!(s.mse > 0.0 && s.mse < 0.1);
        assert!(s.mape > 0.0);
    }
}
