//! # BlackForest
//!
//! Bottleneck analysis and performance prediction for GPU-accelerated
//! applications — a Rust reproduction of the toolchain of Madougou,
//! Varbanescu, de Laat and van Nieuwpoort (2016).
//!
//! BlackForest is a statistical method built on hardware performance
//! counters and ensemble learning:
//!
//! 1. **Data collection** ([`collect`]) — run the application tens to
//!    hundreds of times with varying problem characteristics, recording the
//!    performance counters and the execution time (here: on the `gpu-sim`
//!    substrate instead of `nvprof`).
//! 2. **Random-forest construction and validation** ([`model`]) — 80:20
//!    train/test split, forest with execution time as the response, OOB
//!    error and explained variance as validity checks.
//! 3. **Variable-importance analysis** ([`model`], [`bottleneck`]) — the
//!    most influential counters, their partial-dependence trends, and the
//!    mapping from counters to performance patterns with elimination hints.
//! 4. **Refinement with PCA** ([`model`]) — principal components of the
//!    counter matrix with varimax-rotated factor loadings, for the
//!    pathological cases where single counters explain only part of the
//!    response range.
//! 5. **Results interpretation** ([`countermodel`], [`predict`]) — GLM/MARS
//!    models of each retained counter in terms of problem (and machine)
//!    characteristics, chained through the forest to predict execution time
//!    for unseen problem sizes (*problem scaling*) and unseen-but-similar
//!    GPUs (*machine scaling*).
//!
//! The [`toolchain`] module wires the stages together behind one facade, and
//! [`report`] renders human-readable analyses.
//!
//! ```
//! use blackforest::collect::{collect_matmul, CollectOptions};
//! use blackforest::model::{BlackForestModel, ModelConfig};
//! use gpu_sim::GpuConfig;
//!
//! let gpu = GpuConfig::gtx580();
//! let sizes: Vec<usize> = (1..=12).map(|k| k * 16).collect();
//! let data = collect_matmul(&gpu, &sizes, &CollectOptions::default()).unwrap();
//! let model = BlackForestModel::fit(&data, &ModelConfig::quick(7)).unwrap();
//! assert!(model.validation.r_squared > 0.5);
//! ```

// Index-based loops are the clearer idiom throughout this numeric code
// (parallel arrays, in-place matrix updates), so the pedantic lint is off.
#![allow(clippy::needless_range_loop)]

pub mod artifact;
pub mod bottleneck;
pub mod collect;
pub mod countermodel;
pub mod cv;
pub mod dataset;
pub mod hwscale;
pub mod markdown;
pub mod model;
pub mod predict;
pub mod report;
pub mod toolchain;

pub use bf_forest::SplitStrategy;
pub use bottleneck::{BottleneckCategory, BottleneckReport};
pub use collect::CollectOptions;
pub use dataset::Dataset;
pub use model::{BlackForestModel, ModelConfig};
pub use predict::{HardwareScalingPredictor, ProblemScalingPredictor};
pub use toolchain::{AnalysisReport, BlackForest, Workload};

/// Errors raised by the BlackForest toolchain.
#[derive(Debug)]
pub enum BfError {
    /// Dataset malformed or too small for the requested operation.
    Data(String),
    /// An underlying statistical fit failed.
    Fit(String),
    /// The GPU simulation failed.
    Sim(gpu_sim::SimError),
    /// I/O error during dataset or model persistence.
    Io(std::io::Error),
}

impl std::fmt::Display for BfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BfError::Data(msg) => write!(f, "data error: {msg}"),
            BfError::Fit(msg) => write!(f, "fit error: {msg}"),
            BfError::Sim(e) => write!(f, "simulation error: {e}"),
            BfError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for BfError {}

impl From<gpu_sim::SimError> for BfError {
    fn from(e: gpu_sim::SimError) -> Self {
        BfError::Sim(e)
    }
}

impl From<std::io::Error> for BfError {
    fn from(e: std::io::Error) -> Self {
        BfError::Io(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, BfError>;
