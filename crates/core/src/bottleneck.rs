//! Bottleneck analysis: from important counters to performance patterns.
//!
//! The paper's key usability claim is that variable importance "can be
//! correlated to performance patterns, enabling us to provide systematic
//! bottleneck detection and analysis, as well as suggest potential
//! elimination strategies". This module encodes that mapping: every counter
//! belongs to a performance-pattern category (§3.1's performance factors),
//! and the analyser combines the importance ranking with partial-dependence
//! trends to produce a ranked bottleneck report with elimination hints.

use crate::model::BlackForestModel;
use bf_forest::partial::Trend;
use serde::{Deserialize, Serialize};

/// Performance-pattern categories, following §3.1's taxonomy of GPU
/// performance factors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BottleneckCategory {
    /// Shared-memory bank conflicts causing instruction replays.
    SharedMemoryConflicts,
    /// Uncoalesced or cache-unfriendly global accesses (L1/L2 misses,
    /// transaction inflation).
    MemoryAccessPattern,
    /// Raw DRAM bandwidth saturation.
    MemoryBandwidth,
    /// Insufficient parallelism / low occupancy.
    Occupancy,
    /// Intra-warp control-flow divergence.
    Divergence,
    /// Instruction-issue pressure and serialization (replays of any kind).
    InstructionSerialization,
    /// Arithmetic/issue throughput.
    ComputeThroughput,
    /// Problem or machine characteristic (not a hardware bottleneck per se).
    Characteristic,
}

impl BottleneckCategory {
    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            BottleneckCategory::SharedMemoryConflicts => "shared-memory bank conflicts",
            BottleneckCategory::MemoryAccessPattern => "memory access pattern / caching",
            BottleneckCategory::MemoryBandwidth => "memory bandwidth",
            BottleneckCategory::Occupancy => "occupancy / available parallelism",
            BottleneckCategory::Divergence => "warp divergence",
            BottleneckCategory::InstructionSerialization => "instruction serialization (replays)",
            BottleneckCategory::ComputeThroughput => "instruction throughput",
            BottleneckCategory::Characteristic => "problem/machine characteristic",
        }
    }

    /// The elimination strategy the report suggests.
    pub fn hint(&self) -> &'static str {
        match self {
            BottleneckCategory::SharedMemoryConflicts => {
                "pad shared arrays or re-index accesses so consecutive lanes hit distinct banks (e.g. sequential instead of strided addressing)"
            }
            BottleneckCategory::MemoryAccessPattern => {
                "restructure accesses for coalescing (consecutive threads -> consecutive addresses), tile through shared memory, improve locality"
            }
            BottleneckCategory::MemoryBandwidth => {
                "reduce bytes moved: fuse kernels, increase arithmetic intensity, use wider loads, process multiple elements per thread"
            }
            BottleneckCategory::Occupancy => {
                "increase block size or concurrent blocks; reduce per-thread registers / per-block shared memory; expose more independent work per thread"
            }
            BottleneckCategory::Divergence => {
                "re-map work to threads so whole warps take the same branch (e.g. replace tid%k tests with contiguous ranges)"
            }
            BottleneckCategory::InstructionSerialization => {
                "remove replay sources: bank conflicts, uncoalesced accesses, divergent paths"
            }
            BottleneckCategory::ComputeThroughput => {
                "reduce instruction count (unrolling, cheaper instruction mix), use fast-math intrinsics where acceptable"
            }
            BottleneckCategory::Characteristic => {
                "not a hardware bottleneck: a workload/machine descriptor that drives execution time"
            }
        }
    }
}

/// Maps a counter name to its performance-pattern category.
pub fn categorize(counter: &str) -> BottleneckCategory {
    match counter {
        "shared_replay_overhead"
        | "l1_shared_bank_conflict"
        | "shared_load_replay"
        | "shared_store_replay"
        | "shared_ld_bank_conflict"
        | "shared_st_bank_conflict" => BottleneckCategory::SharedMemoryConflicts,
        "l1_global_load_hit"
        | "l1_global_load_miss"
        | "global_hit_rate"
        | "global_load_transaction"
        | "global_store_transaction"
        | "l2_read_transactions"
        | "l2_write_transactions"
        | "l2_read_throughput"
        | "l2_write_throughput"
        | "shared_load"
        | "shared_store" => BottleneckCategory::MemoryAccessPattern,
        "gld_requested_throughput"
        | "gst_requested_throughput"
        | "gld_throughput"
        | "gst_throughput"
        | "dram_read_transactions"
        | "dram_write_transactions"
        | "gld_request"
        | "gst_request" => BottleneckCategory::MemoryBandwidth,
        "achieved_occupancy" => BottleneckCategory::Occupancy,
        "branch" | "divergent_branch" | "warp_execution_efficiency" => {
            BottleneckCategory::Divergence
        }
        "inst_replay_overhead" => BottleneckCategory::InstructionSerialization,
        "ipc"
        | "issue_slot_utilization"
        | "inst_executed"
        | "inst_issued"
        | "ldst_fu_utilization" => BottleneckCategory::ComputeThroughput,
        _ => BottleneckCategory::Characteristic,
    }
}

/// Labels a principal component with the performance dimension its
/// strongest loadings point at — how §5 reads the PCA outcome ("PC1 is
/// related to memory intensity of reduce1, PC2 to MIMD and ILP parallelism,
/// PC3 to SIMD efficiency, and PC4 to memory subsystem throughput").
///
/// The label is the [`BottleneckCategory`] with the largest sum of squared
/// loadings within the component's top variables, with two special cases
/// lifted from the paper's vocabulary: issue/IPC-dominated components are
/// "MIMD/ILP parallelism" and warp-efficiency-dominated ones are
/// "SIMD efficiency".
pub fn component_label(pca: &crate::model::PcaSummary, component: usize) -> String {
    let mut by_cat: Vec<(BottleneckCategory, f64)> = Vec::new();
    let mut simd = 0.0f64;
    let mut mimd = 0.0f64;
    for (name, loading) in pca.dominant(component, 6) {
        let w = loading * loading;
        match name.as_str() {
            "warp_execution_efficiency" | "divergent_branch" => simd += w,
            "ipc"
            | "issue_slot_utilization"
            | "achieved_occupancy"
            | "inst_issued"
            | "inst_replay_overhead"
            | "shared_replay_overhead" => mimd += w,
            _ => {}
        }
        let cat = categorize(&name);
        if let Some(e) = by_cat.iter_mut().find(|(c, _)| *c == cat) {
            e.1 += w;
        } else {
            by_cat.push((cat, w));
        }
    }
    let (top_cat, top_w) = by_cat
        .into_iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap_or((BottleneckCategory::Characteristic, 0.0));
    if simd > top_w && simd > mimd {
        "SIMD efficiency".to_string()
    } else if mimd > top_w {
        "MIMD/ILP parallelism".to_string()
    } else {
        match top_cat {
            BottleneckCategory::MemoryBandwidth => "memory subsystem throughput".to_string(),
            BottleneckCategory::MemoryAccessPattern => "memory intensity / caching".to_string(),
            other => other.label().to_string(),
        }
    }
}

/// One entry of the bottleneck report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BottleneckFinding {
    /// Counter name.
    pub counter: String,
    /// Importance (mean OOB-MSE increase).
    pub importance: f64,
    /// Importance as a percentage of the top variable's.
    pub relative_importance: f64,
    /// Category of the underlying performance pattern.
    pub category: BottleneckCategory,
    /// Partial-dependence trend of the counter vs execution time.
    pub trend: Trend,
    /// Pearson correlation of the partial-dependence curve.
    pub correlation: f64,
}

/// The ranked bottleneck analysis of a fitted model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BottleneckReport {
    /// Findings, most important first.
    pub findings: Vec<BottleneckFinding>,
}

impl BottleneckReport {
    /// Analyses the top `k` variables of a fitted model.
    pub fn analyze(model: &BlackForestModel, k: usize) -> BottleneckReport {
        let rel = model.importance.relative();
        let mut findings = Vec::new();
        for name in model.ranking.iter().take(k) {
            let j = model
                .feature_names
                .iter()
                .position(|n| n == name)
                .expect("ranking names come from the schema");
            let pd = model.partial_dependence(name, 16).expect("feature exists");
            findings.push(BottleneckFinding {
                counter: name.clone(),
                importance: model.importance.mean_increase_mse[j],
                relative_importance: rel[j],
                category: categorize(name),
                trend: pd.trend(),
                correlation: pd.correlation(),
            });
        }
        BottleneckReport { findings }
    }

    /// The dominant hardware bottleneck: the highest-ranked finding whose
    /// category is a real hardware pattern (characteristics like `size` are
    /// skipped — they explain time but aren't actionable).
    pub fn primary(&self) -> Option<&BottleneckFinding> {
        self.findings
            .iter()
            .find(|f| f.category != BottleneckCategory::Characteristic)
    }

    /// Aggregated importance share per category (relative units).
    pub fn category_shares(&self) -> Vec<(BottleneckCategory, f64)> {
        let mut acc: Vec<(BottleneckCategory, f64)> = Vec::new();
        for f in &self.findings {
            if let Some(e) = acc.iter_mut().find(|(c, _)| *c == f.category) {
                e.1 += f.relative_importance.max(0.0);
            } else {
                acc.push((f.category, f.relative_importance.max(0.0)));
            }
        }
        acc.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{collect_reduce, CollectOptions};
    use crate::model::{BlackForestModel, ModelConfig};
    use bf_kernels::reduce::ReduceVariant;
    use gpu_sim::GpuConfig;

    #[test]
    fn categorization_covers_catalogue() {
        for info in gpu_sim::counters::COUNTER_CATALOG {
            // Every catalogue counter must land in a non-characteristic
            // category (characteristics are only for size/threads/machine).
            assert_ne!(
                categorize(info.name),
                BottleneckCategory::Characteristic,
                "{} uncategorized",
                info.name
            );
        }
        assert_eq!(categorize("size"), BottleneckCategory::Characteristic);
        assert_eq!(categorize("mbw"), BottleneckCategory::Characteristic);
    }

    #[test]
    fn hints_are_nonempty_and_distinct() {
        use BottleneckCategory::*;
        let cats = [
            SharedMemoryConflicts,
            MemoryAccessPattern,
            MemoryBandwidth,
            Occupancy,
            Divergence,
            InstructionSerialization,
            ComputeThroughput,
            Characteristic,
        ];
        let mut hints: Vec<&str> = cats.iter().map(|c| c.hint()).collect();
        assert!(hints.iter().all(|h| !h.is_empty()));
        hints.sort_unstable();
        hints.dedup();
        assert_eq!(hints.len(), cats.len());
    }

    #[test]
    fn reduce1_report_flags_shared_conflicts_reduce2_drops_them() {
        let gpu = GpuConfig::gtx580();
        let sizes: Vec<usize> = (14..=19).map(|e| 1usize << e).collect();
        let ds1 = collect_reduce(
            &gpu,
            ReduceVariant::Reduce1,
            &sizes,
            &[64, 128, 256, 512],
            &CollectOptions::default(),
        )
        .unwrap();
        let model = BlackForestModel::fit(&ds1, &ModelConfig::quick(11)).unwrap();
        let report = BottleneckReport::analyze(&model, 12);
        assert_eq!(report.findings.len(), 12);
        // Findings are importance-sorted.
        for w in report.findings.windows(2) {
            assert!(w[0].importance >= w[1].importance);
        }
        // reduce1's defining bottleneck (bank conflicts) must be visible in
        // the analysis: the conflict counters exist in the data...
        assert!(ds1.feature_index("l1_shared_bank_conflict").is_some());
        assert!(report.primary().is_some());
        // ...whereas reduce2 (sequential addressing) has no conflicts at all,
        // so the counter is constant zero and vanishes from the analysis —
        // the paper's §5.3 observation.
        let ds2 = collect_reduce(
            &gpu,
            ReduceVariant::Reduce2,
            &sizes,
            &[64, 128, 256, 512],
            &CollectOptions::default(),
        )
        .unwrap();
        assert!(ds2.feature_index("l1_shared_bank_conflict").is_none());
        assert!(ds2.feature_index("shared_replay_overhead").is_none());
    }

    #[test]
    fn component_labels_are_meaningful_strings() {
        let gpu = GpuConfig::gtx580();
        let sizes: Vec<usize> = (13..=16).map(|e| 1usize << e).collect();
        let ds = collect_reduce(
            &gpu,
            ReduceVariant::Reduce1,
            &sizes,
            &[64, 128, 256],
            &CollectOptions::default(),
        )
        .unwrap();
        let model = BlackForestModel::fit(&ds, &ModelConfig::quick(13)).unwrap();
        let pca = model.pca.as_ref().unwrap();
        for c in 0..pca.n_components {
            let label = component_label(pca, c);
            assert!(!label.is_empty());
        }
    }

    #[test]
    fn category_shares_sum_matches_findings() {
        let gpu = GpuConfig::gtx580();
        let sizes: Vec<usize> = (12..=15).map(|e| 1usize << e).collect();
        let ds = collect_reduce(
            &gpu,
            ReduceVariant::Reduce2,
            &sizes,
            &[64, 128, 256],
            &CollectOptions::default(),
        )
        .unwrap();
        let model = BlackForestModel::fit(&ds, &ModelConfig::quick(12)).unwrap();
        let report = BottleneckReport::analyze(&model, 8);
        let total: f64 = report.category_shares().iter().map(|(_, v)| v).sum();
        let direct: f64 = report
            .findings
            .iter()
            .map(|f| f.relative_importance.max(0.0))
            .sum();
        assert!((total - direct).abs() < 1e-9);
    }
}
