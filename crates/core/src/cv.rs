//! K-fold cross-validation for BlackForest response models.
//!
//! §7 of the paper: "Additional studies need to be made to determine the
//! minimal training set, thus limiting the overhead to a minimum." This
//! module provides the machinery for those studies: deterministic k-fold
//! splits, per-fold fit/score of the forest, and a training-set-size
//! learning curve.

use crate::dataset::Dataset;
use crate::{BfError, Result};
use bf_forest::{ForestParams, RandomForest};
use bf_linalg::stats;
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Per-fold and aggregate scores of a cross-validation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CvResult {
    /// Held-out R² of each fold.
    pub fold_r_squared: Vec<f64>,
    /// Held-out MSE of each fold.
    pub fold_mse: Vec<f64>,
    /// Mean held-out R².
    pub mean_r_squared: f64,
    /// Mean held-out MSE.
    pub mean_mse: f64,
}

/// Deterministically assigns each observation to one of `k` folds.
pub fn fold_assignments(n: usize, k: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    let mut folds = vec![0usize; n];
    for (rank, &i) in order.iter().enumerate() {
        folds[i] = rank % k;
    }
    folds
}

/// Runs k-fold cross-validation of a random forest on the dataset.
pub fn kfold_forest(
    data: &Dataset,
    k: usize,
    params: &ForestParams,
    seed: u64,
) -> Result<CvResult> {
    if k < 2 {
        return Err(BfError::Data("need at least 2 folds".into()));
    }
    if data.len() < 2 * k {
        return Err(BfError::Data(format!(
            "need at least {} observations for {k}-fold CV, have {}",
            2 * k,
            data.len()
        )));
    }
    let folds = fold_assignments(data.len(), k, seed);
    let mut fold_r_squared = Vec::with_capacity(k);
    let mut fold_mse = Vec::with_capacity(k);
    for fold in 0..k {
        let mut train_x = Vec::new();
        let mut train_y = Vec::new();
        let mut test_x = Vec::new();
        let mut test_y = Vec::new();
        for (i, row) in data.rows.iter().enumerate() {
            if folds[i] == fold {
                test_x.push(row.clone());
                test_y.push(data.response[i]);
            } else {
                train_x.push(row.clone());
                train_y.push(data.response[i]);
            }
        }
        let forest = RandomForest::fit(&train_x, &train_y, params)
            .map_err(|e| BfError::Fit(e.to_string()))?;
        let preds = forest
            .predict(&test_x)
            .map_err(|e| BfError::Fit(e.to_string()))?;
        fold_r_squared.push(stats::r_squared(&preds, &test_y));
        fold_mse.push(stats::mse(&preds, &test_y));
    }
    let mean_r_squared = fold_r_squared.iter().sum::<f64>() / k as f64;
    let mean_mse = fold_mse.iter().sum::<f64>() / k as f64;
    Ok(CvResult {
        fold_r_squared,
        fold_mse,
        mean_r_squared,
        mean_mse,
    })
}

/// One point of the learning curve: training size vs CV accuracy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LearningCurvePoint {
    /// Number of training observations used.
    pub train_size: usize,
    /// Mean held-out R² at that size.
    pub r_squared: f64,
    /// Mean held-out MSE at that size.
    pub mse: f64,
}

/// Builds a learning curve: for each fraction of the data (shuffled once),
/// run k-fold CV on that subset. This is the §7 "minimal training set"
/// study as an API.
pub fn learning_curve(
    data: &Dataset,
    fractions: &[f64],
    k: usize,
    params: &ForestParams,
    seed: u64,
) -> Result<Vec<LearningCurvePoint>> {
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xCAFE);
    order.shuffle(&mut rng);
    let mut out = Vec::with_capacity(fractions.len());
    for &frac in fractions {
        let n = ((data.len() as f64 * frac).round() as usize).clamp(2 * k, data.len());
        let mut subset = Dataset::new(data.feature_names.clone(), &data.response_name);
        for &i in order.iter().take(n) {
            subset.rows.push(data.rows[i].clone());
            subset.response.push(data.response[i]);
        }
        let cv = kfold_forest(&subset, k, params, seed)?;
        out.push(LearningCurvePoint {
            train_size: n,
            r_squared: cv.mean_r_squared,
            mse: cv.mean_mse,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{collect_matmul, CollectOptions};
    use gpu_sim::GpuConfig;

    fn mm_data() -> Dataset {
        let sizes: Vec<usize> = (2..=20).step_by(2).map(|k| k * 16).collect();
        collect_matmul(
            &GpuConfig::gtx580(),
            &sizes,
            &CollectOptions::default().with_repetitions(3, 0.02),
        )
        .unwrap()
    }

    #[test]
    fn fold_assignments_are_balanced_and_deterministic() {
        let f1 = fold_assignments(23, 5, 9);
        let f2 = fold_assignments(23, 5, 9);
        assert_eq!(f1, f2);
        for fold in 0..5 {
            let count = f1.iter().filter(|&&f| f == fold).count();
            assert!((4..=5).contains(&count), "fold {fold} has {count}");
        }
        assert_ne!(f1, fold_assignments(23, 5, 10));
    }

    #[test]
    fn kfold_scores_reasonably_on_mm() {
        let data = mm_data();
        let cv = kfold_forest(
            &data,
            5,
            &ForestParams::default().with_trees(100).with_seed(3),
            11,
        )
        .unwrap();
        assert_eq!(cv.fold_r_squared.len(), 5);
        assert!(cv.mean_r_squared > 0.5, "r2 {}", cv.mean_r_squared);
        assert!(cv.mean_mse >= 0.0);
    }

    #[test]
    fn kfold_rejects_degenerate_setups() {
        let data = mm_data();
        assert!(kfold_forest(&data, 1, &ForestParams::default(), 1).is_err());
        let mut tiny = Dataset::new(data.feature_names.clone(), "time_ms");
        for i in 0..5 {
            tiny.rows.push(data.rows[i].clone());
            tiny.response.push(data.response[i]);
        }
        assert!(kfold_forest(&tiny, 5, &ForestParams::default(), 1).is_err());
    }

    #[test]
    fn learning_curve_improves_with_more_data() {
        let data = mm_data();
        let curve = learning_curve(
            &data,
            &[0.4, 1.0],
            4,
            &ForestParams::default().with_trees(80).with_seed(5),
            13,
        )
        .unwrap();
        assert_eq!(curve.len(), 2);
        assert!(curve[0].train_size < curve[1].train_size);
        // More data should not make CV accuracy much worse.
        assert!(curve[1].r_squared >= curve[0].r_squared - 0.1);
    }
}
