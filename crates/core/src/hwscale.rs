//! Hardware-scaling *scope* sweep across the GPU zoo.
//!
//! The paper's §6.2 transfers a model from one source GPU to one target.
//! With a zoo of configurations spanning five architecture generations, a
//! new question opens up: how far away may the training hardware be before
//! transfer accuracy degrades? This module answers it empirically. For
//! every target GPU it trains three transfer models from progressively
//! wider source pools — same architecture only, neighbouring generations,
//! the whole zoo — always holding the target's own sweep out of the pool,
//! and evaluates each on the target's test split. Aggregating per scope
//! yields a *scope-vs-error curve*: the wider the pool, the more rows and
//! machine-metric variation the forest sees, but the more foreign the
//! counter semantics become.
//!
//! Pooling across architectures is only possible on the schema
//! intersection: counter availability differs per generation (Fermi has L1
//! hit/miss, Kepler has replay counters, Maxwell renames them, Pascal adds
//! `global_hit_rate`), so the pooled dataset keeps exactly the columns
//! every source produces, and [`HardwareScalingPredictor::fit`] further
//! intersects with the target's schema.

use crate::collect::CollectOptions;
use crate::dataset::Dataset;
use crate::model::ModelConfig;
use crate::predict::{summarize, HardwareScalingPredictor, HwFeatureStrategy};
use crate::toolchain::{BlackForest, Workload};
use crate::{BfError, Result};
use gpu_sim::GpuConfig;
use serde::{Deserialize, Serialize};

/// How far from the target architecture the training pool may reach.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scope {
    /// Only GPUs of the target's own architecture (the target itself is
    /// always held out).
    PerArch,
    /// GPUs whose architecture generation is at most one ordinal step away
    /// (Kepler targets may train on Fermi, Kepler, and Maxwell sources).
    PerGeneration,
    /// Every other GPU in the zoo.
    AllZoo,
}

impl Scope {
    /// All scopes, narrowest first — the x-axis of the curve.
    pub fn all() -> [Scope; 3] {
        [Scope::PerArch, Scope::PerGeneration, Scope::AllZoo]
    }

    /// Stable name used in reports and JSON artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            Scope::PerArch => "per-arch",
            Scope::PerGeneration => "per-generation",
            Scope::AllZoo => "all-zoo",
        }
    }

    /// Whether `source` may train a model for `target` under this scope.
    /// The target itself is never admitted.
    pub fn admits(&self, target: &GpuConfig, source: &GpuConfig) -> bool {
        if source.name == target.name {
            return false;
        }
        match self {
            Scope::PerArch => source.arch == target.arch,
            Scope::PerGeneration => {
                let d = source.arch.ordinal() as i64 - target.arch.ordinal() as i64;
                d.abs() <= 1
            }
            Scope::AllZoo => true,
        }
    }
}

/// One fitted-and-evaluated (target, scope) cell of the sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScopeEvaluation {
    /// Scope name (see [`Scope::name`]).
    pub scope: String,
    /// Target GPU held out of the training pool.
    pub target: String,
    /// Target architecture name.
    pub target_arch: String,
    /// Names of the pooled source GPUs.
    pub sources: Vec<String>,
    /// Rows in the pooled training dataset.
    pub pooled_rows: usize,
    /// Columns shared by every source (before intersecting with the
    /// target's schema).
    pub common_features: usize,
    /// Top-k importance-ranking overlap between pool and target.
    pub similarity: f64,
    /// Spearman correlation of the full importance rankings.
    pub rank_correlation: f64,
    /// Mean absolute percentage error on the target's test split.
    pub mape: f64,
    /// R² of predicted vs measured times on the target's test split.
    pub r_squared: f64,
}

/// One point of the scope-vs-error curve: a scope aggregated over all
/// targets it could serve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScopeCurvePoint {
    /// Scope name.
    pub scope: String,
    /// Number of targets this scope produced a model for.
    pub targets: usize,
    /// Mean number of source GPUs pooled per target.
    pub mean_sources: f64,
    /// Mean MAPE over targets.
    pub mean_mape: f64,
    /// Median MAPE over targets (robust to one badly-transferring GPU).
    pub median_mape: f64,
    /// Mean R² over targets.
    pub mean_r_squared: f64,
    /// Mean importance-ranking similarity over targets.
    pub mean_similarity: f64,
}

/// The full sweep result: every (target, scope) evaluation plus the
/// aggregated curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HwScaleReport {
    /// Workload the sweep ran.
    pub workload: String,
    /// Problem sizes swept on every GPU.
    pub sizes: Vec<usize>,
    /// Zoo GPU names, in sweep order.
    pub zoo: Vec<String>,
    /// Distinct architecture names covered by the zoo.
    pub architectures: Vec<String>,
    /// All per-(target, scope) evaluations.
    pub evaluations: Vec<ScopeEvaluation>,
    /// The scope-vs-error curve, narrowest scope first.
    pub curve: Vec<ScopeCurvePoint>,
}

/// Pools source datasets on their feature-name intersection (order taken
/// from the first source).
fn pool(sources: &[&Dataset]) -> Result<Dataset> {
    let first = sources
        .first()
        .ok_or_else(|| BfError::Data("empty source pool".into()))?;
    let mut common: Vec<String> = first.feature_names.clone();
    for s in &sources[1..] {
        common.retain(|n| s.feature_index(n).is_some());
    }
    if common.is_empty() {
        return Err(BfError::Data(
            "no common features across pooled sources".into(),
        ));
    }
    let mut pooled = first.select(&common)?;
    for s in &sources[1..] {
        pooled.append(&s.select(&common)?)?;
    }
    Ok(pooled)
}

/// Collects one sweep per zoo GPU with the hardware-scaling options
/// (machine metrics injected, constant columns kept so schemas stay
/// intersectable).
pub fn collect_zoo(workload: Workload, sizes: &[usize], zoo: &[GpuConfig]) -> Result<Vec<Dataset>> {
    let opts = CollectOptions {
        include_machine_metrics: true,
        drop_constant: false,
        ..CollectOptions::default()
    };
    zoo.iter()
        .map(|gpu| {
            let mut bf = BlackForest::new(gpu.clone());
            bf.collect = opts.clone();
            bf.collect(workload, sizes)
        })
        .collect()
}

/// Runs the scope sweep: every zoo GPU takes a turn as the held-out
/// target, every scope that admits at least one source is fitted and
/// evaluated, and the per-scope aggregates become the curve.
pub fn sweep_scopes(
    workload: Workload,
    sizes: &[usize],
    zoo: &[GpuConfig],
    config: &ModelConfig,
    strategy: HwFeatureStrategy,
) -> Result<HwScaleReport> {
    if zoo.len() < 2 {
        return Err(BfError::Data(
            "hardware-scaling sweep needs at least two GPUs".into(),
        ));
    }
    let datasets = collect_zoo(workload, sizes, zoo)?;
    sweep_scopes_with(workload, sizes, zoo, &datasets, config, strategy)
}

/// Like [`sweep_scopes`] but over pre-collected per-GPU datasets (must be
/// index-aligned with `zoo`). Lets callers reuse one collection pass for
/// several experiments.
pub fn sweep_scopes_with(
    workload: Workload,
    sizes: &[usize],
    zoo: &[GpuConfig],
    datasets: &[Dataset],
    config: &ModelConfig,
    strategy: HwFeatureStrategy,
) -> Result<HwScaleReport> {
    if datasets.len() != zoo.len() {
        return Err(BfError::Data(format!(
            "zoo has {} GPUs but {} datasets supplied",
            zoo.len(),
            datasets.len()
        )));
    }
    let characteristic = workload.characteristics()[0];
    let mut evaluations = Vec::new();
    for (ti, target) in zoo.iter().enumerate() {
        let (tgt_train, tgt_test) = datasets[ti].split(0.8, config.seed);
        for scope in Scope::all() {
            let source_idx: Vec<usize> = zoo
                .iter()
                .enumerate()
                .filter(|(si, g)| *si != ti && scope.admits(target, g))
                .map(|(si, _)| si)
                .collect();
            if source_idx.is_empty() {
                continue;
            }
            let pooled = pool(
                &source_idx
                    .iter()
                    .map(|&si| &datasets[si])
                    .collect::<Vec<_>>(),
            )?;
            let hw = HardwareScalingPredictor::fit(&pooled, &tgt_train, config, strategy)?;
            let points = hw.evaluate(&tgt_test, characteristic)?;
            let summary = summarize(&points);
            evaluations.push(ScopeEvaluation {
                scope: scope.name().to_string(),
                target: target.name.clone(),
                target_arch: target.arch.name().to_string(),
                sources: source_idx.iter().map(|&si| zoo[si].name.clone()).collect(),
                pooled_rows: pooled.len(),
                common_features: pooled.n_features(),
                similarity: hw.similarity,
                rank_correlation: hw.rank_correlation,
                mape: summary.mape,
                r_squared: summary.r_squared,
            });
        }
    }
    let curve = Scope::all()
        .iter()
        .filter_map(|scope| curve_point(scope.name(), &evaluations))
        .collect();
    let mut architectures: Vec<String> = Vec::new();
    for g in zoo {
        let name = g.arch.name().to_string();
        if !architectures.contains(&name) {
            architectures.push(name);
        }
    }
    Ok(HwScaleReport {
        workload: workload.name(),
        sizes: sizes.to_vec(),
        zoo: zoo.iter().map(|g| g.name.clone()).collect(),
        architectures,
        evaluations,
        curve,
    })
}

fn curve_point(scope: &str, evaluations: &[ScopeEvaluation]) -> Option<ScopeCurvePoint> {
    let cells: Vec<&ScopeEvaluation> = evaluations.iter().filter(|e| e.scope == scope).collect();
    if cells.is_empty() {
        return None;
    }
    let n = cells.len() as f64;
    let mut mapes: Vec<f64> = cells.iter().map(|e| e.mape).collect();
    mapes.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median_mape = if mapes.len() % 2 == 1 {
        mapes[mapes.len() / 2]
    } else {
        0.5 * (mapes[mapes.len() / 2 - 1] + mapes[mapes.len() / 2])
    };
    Some(ScopeCurvePoint {
        scope: scope.to_string(),
        targets: cells.len(),
        mean_sources: cells.iter().map(|e| e.sources.len() as f64).sum::<f64>() / n,
        mean_mape: cells.iter().map(|e| e.mape).sum::<f64>() / n,
        median_mape,
        mean_r_squared: cells.iter().map(|e| e.r_squared).sum::<f64>() / n,
        mean_similarity: cells.iter().map(|e| e.similarity).sum::<f64>() / n,
    })
}

/// Renders the curve as an aligned text table for CLI output.
pub fn curve_table(report: &HwScaleReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>8} {:>10} {:>10} {:>12} {:>8} {:>12}\n",
        "scope", "targets", "sources", "MAPE%", "median MAPE%", "R2", "similarity"
    ));
    for p in &report.curve {
        out.push_str(&format!(
            "{:<16} {:>8} {:>10.1} {:>10.2} {:>12.2} {:>8.3} {:>12.2}\n",
            p.scope,
            p.targets,
            p.mean_sources,
            p.mean_mape,
            p.median_mape,
            p.mean_r_squared,
            p.mean_similarity
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zoo6() -> Vec<GpuConfig> {
        vec![
            GpuConfig::gtx480(),
            GpuConfig::gtx580(),
            GpuConfig::gtx680(),
            GpuConfig::k20m(),
            GpuConfig::gtx980(),
            GpuConfig::gtx1080(),
        ]
    }

    #[test]
    fn scopes_nest_from_narrow_to_wide() {
        let zoo = GpuConfig::presets();
        for target in &zoo {
            for source in &zoo {
                if Scope::PerArch.admits(target, source) {
                    assert!(Scope::PerGeneration.admits(target, source));
                }
                if Scope::PerGeneration.admits(target, source) {
                    assert!(Scope::AllZoo.admits(target, source));
                }
                assert!(!Scope::AllZoo.admits(target, target));
            }
        }
    }

    #[test]
    fn pooling_intersects_schemas_and_stacks_rows() {
        let mut a = Dataset::new(vec!["size".into(), "only_a".into()], "time_ms");
        a.push(vec![1.0, 2.0], 0.5).unwrap();
        let mut b = Dataset::new(vec!["size".into(), "only_b".into()], "time_ms");
        b.push(vec![3.0, 4.0], 0.7).unwrap();
        b.push(vec![5.0, 6.0], 0.9).unwrap();
        let pooled = pool(&[&a, &b]).unwrap();
        assert_eq!(pooled.feature_names, vec!["size".to_string()]);
        assert_eq!(pooled.len(), 3);
        assert_eq!(pooled.response, vec![0.5, 0.7, 0.9]);
    }

    #[test]
    fn sweep_produces_a_curve_over_all_three_scopes() {
        let zoo = zoo6();
        let sizes: Vec<usize> = (2..=10).map(|k| k * 16).collect();
        let config = ModelConfig::quick(2016);
        let report = sweep_scopes(
            Workload::MatMul,
            &sizes,
            &zoo,
            &config,
            HwFeatureStrategy::MixedImportance,
        )
        .unwrap();
        // Fermi and Kepler appear twice, so every scope serves at least
        // those four targets; the wider scopes serve all six.
        let by_scope = |name: &str| report.curve.iter().find(|p| p.scope == name);
        let per_arch = by_scope("per-arch").expect("per-arch point");
        let per_gen = by_scope("per-generation").expect("per-generation point");
        let all_zoo = by_scope("all-zoo").expect("all-zoo point");
        assert_eq!(per_arch.targets, 4);
        assert_eq!(per_gen.targets, 6);
        assert_eq!(all_zoo.targets, 6);
        assert!(per_arch.mean_sources <= per_gen.mean_sources);
        assert!(per_gen.mean_sources <= all_zoo.mean_sources);
        assert_eq!(all_zoo.mean_sources, 5.0);
        for e in &report.evaluations {
            assert!(e.mape.is_finite(), "{}/{} mape", e.scope, e.target);
            assert!(!e.sources.contains(&e.target), "target leaked into pool");
            assert!(e.pooled_rows > 0);
        }
        assert_eq!(
            report.architectures,
            vec!["fermi", "kepler", "maxwell", "pascal"]
        );
        let table = curve_table(&report);
        assert!(table.contains("per-arch") && table.contains("all-zoo"));
    }
}
