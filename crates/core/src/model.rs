//! Stage 2–4 of the methodology: random-forest construction and validation,
//! variable-importance analysis, and PCA refinement.

use crate::dataset::Dataset;
use crate::{BfError, Result};
use bf_forest::{ForestParams, PartialDependence, RandomForest, SplitStrategy, VariableImportance};
use bf_linalg::{stats, Matrix};
use bf_pca::{varimax, Pca, PcaOptions};
use serde::{Deserialize, Serialize};

/// Configuration of the modeling pipeline.
#[derive(Debug, Clone, Copy)]
pub struct ModelConfig {
    /// Trees in the forest (paper/R default: 500).
    pub n_trees: usize,
    /// Master RNG seed.
    pub seed: u64,
    /// Train fraction of the random split (paper: 0.8).
    pub train_fraction: f64,
    /// How many top-importance variables to retain (paper: "usually between
    /// 6 and 8").
    pub top_k: usize,
    /// Cumulative explained-variance threshold for retaining principal
    /// components (paper observes 4 components covering 96–97%).
    pub pca_variance_threshold: f64,
    /// Minimum samples per tree leaf.
    pub min_node_size: usize,
    /// Split-search backend for every forest the pipeline fits (default:
    /// histogram with 256 bins; see [`bf_forest::SplitStrategy`]).
    pub split_strategy: SplitStrategy,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            n_trees: 500,
            seed: 0xB1AC_F05E,
            train_fraction: 0.8,
            top_k: 6,
            pca_variance_threshold: 0.95,
            min_node_size: 5,
            split_strategy: SplitStrategy::default(),
        }
    }
}

impl ModelConfig {
    /// A lighter configuration for tests and interactive use.
    pub fn quick(seed: u64) -> ModelConfig {
        ModelConfig {
            n_trees: 120,
            seed,
            ..ModelConfig::default()
        }
    }
}

/// Accuracy metrics of a forest on held-out data plus its OOB statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ValidationMetrics {
    /// Test-set mean squared error.
    pub mse: f64,
    /// Test-set root mean squared error.
    pub rmse: f64,
    /// Test-set R².
    pub r_squared: f64,
    /// Test-set mean absolute percentage error.
    pub mape: f64,
    /// Out-of-bag MSE of the fitted forest.
    pub oob_mse: f64,
    /// Out-of-bag explained variance (R's "% Var explained").
    pub oob_r_squared: f64,
}

/// PCA refinement summary: retained components and varimax-rotated loadings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PcaSummary {
    /// Number of retained components.
    pub n_components: usize,
    /// Explained-variance fraction of each retained component.
    pub explained: Vec<f64>,
    /// Cumulative explained variance of the retained set.
    pub cumulative: f64,
    /// Varimax-rotated loadings (`features x components`).
    pub loadings: Matrix,
    /// Feature names aligned with loading rows.
    pub feature_names: Vec<String>,
}

impl PcaSummary {
    /// The `top` variables dominating component `c`, with signed loadings.
    pub fn dominant(&self, c: usize, top: usize) -> Vec<(String, f64)> {
        let mut pairs: Vec<(String, f64)> = self
            .feature_names
            .iter()
            .enumerate()
            .map(|(j, n)| (n.clone(), self.loadings[(j, c)]))
            .collect();
        pairs.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).unwrap());
        pairs.truncate(top);
        pairs
    }
}

/// A fitted BlackForest model: the forest, its interpretation artefacts,
/// and the retained-variable refit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlackForestModel {
    /// Full predictor schema (training order).
    pub feature_names: Vec<String>,
    /// Forest over all predictors.
    pub forest: RandomForest,
    /// Permutation importance of the full forest.
    pub importance: VariableImportance,
    /// Feature names sorted by decreasing importance.
    pub ranking: Vec<String>,
    /// The retained top-k features.
    pub selected: Vec<String>,
    /// Forest refitted on the retained features only.
    pub reduced_forest: RandomForest,
    /// Validation of the full forest.
    pub validation: ValidationMetrics,
    /// Validation of the reduced forest (the paper checks it "retains most
    /// of the predictive power").
    pub reduced_validation: ValidationMetrics,
    /// PCA refinement over the counter matrix.
    pub pca: Option<PcaSummary>,
    /// The training split.
    pub train: Dataset,
    /// The held-out split.
    pub test: Dataset,
}

fn validate(forest: &RandomForest, test: &Dataset) -> Result<ValidationMetrics> {
    let preds = forest
        .predict(&test.rows)
        .map_err(|e| BfError::Fit(e.to_string()))?;
    Ok(ValidationMetrics {
        mse: stats::mse(&preds, &test.response),
        rmse: stats::rmse(&preds, &test.response),
        r_squared: stats::r_squared(&preds, &test.response),
        mape: stats::mape(&preds, &test.response),
        oob_mse: forest.oob_mse(),
        oob_r_squared: forest.oob_r_squared(),
    })
}

impl BlackForestModel {
    /// Runs stages 2–4: split, fit, validate, rank, select, refit, PCA.
    pub fn fit(data: &Dataset, config: &ModelConfig) -> Result<BlackForestModel> {
        if data.len() < 10 {
            return Err(BfError::Data(format!(
                "need at least 10 observations, have {}",
                data.len()
            )));
        }
        let _fit_span = bf_trace::span!(
            "fit_model",
            rows = data.len(),
            features = data.n_features(),
            trees = config.n_trees
        );
        let (train, test) = data.split(config.train_fraction, config.seed);
        let params = ForestParams {
            n_trees: config.n_trees,
            min_node_size: config.min_node_size.min(train.len() / 4).max(1),
            split_strategy: config.split_strategy,
            ..ForestParams::default().with_seed(config.seed)
        };
        let forest = RandomForest::fit(&train.rows, &train.response, &params)
            .map_err(|e| BfError::Fit(e.to_string()))?;
        let validation = {
            let _v = bf_trace::span!("validate");
            validate(&forest, &test)?
        };
        let (importance, ranking) = {
            let _imp = bf_trace::span!("importance");
            let importance = forest.permutation_importance();
            let ranking: Vec<String> = importance
                .ranking()
                .into_iter()
                .map(|j| data.feature_names[j].clone())
                .collect();
            (importance, ranking)
        };
        let k = config.top_k.min(data.n_features()).max(1);
        let selected: Vec<String> = ranking.iter().take(k).cloned().collect();

        let select_span = bf_trace::span!("select_refit", top_k = k);
        let train_sel = train.select(&selected)?;
        let test_sel = test.select(&selected)?;
        let reduced_forest = RandomForest::fit(&train_sel.rows, &train_sel.response, &params)
            .map_err(|e| BfError::Fit(e.to_string()))?;
        let reduced_validation = {
            let _v = bf_trace::span!("validate");
            validate(&reduced_forest, &test_sel)?
        };
        drop(select_span);

        let pca = {
            let _pca = bf_trace::span!("pca");
            Self::run_pca(&train, config).ok()
        };

        Ok(BlackForestModel {
            feature_names: data.feature_names.clone(),
            forest,
            importance,
            ranking,
            selected,
            reduced_forest,
            validation,
            reduced_validation,
            pca,
            train,
            test,
        })
    }

    /// PCA with varimax rotation over the training predictors.
    fn run_pca(train: &Dataset, config: &ModelConfig) -> std::result::Result<PcaSummary, String> {
        let x = Matrix::from_rows(&train.rows).map_err(|e| e.to_string())?;
        let pca = Pca::fit(&x, PcaOptions { scale: true }).map_err(|e| e.to_string())?;
        let k = pca
            .components_for(config.pca_variance_threshold)
            .clamp(1, train.n_features());
        let raw = pca.factor_loadings(k).map_err(|e| e.to_string())?;
        let rotated = if k >= 2 {
            varimax(&raw, true).loadings
        } else {
            raw
        };
        let ratios = pca.explained_variance_ratio();
        Ok(PcaSummary {
            n_components: k,
            explained: ratios[..k].to_vec(),
            cumulative: ratios[..k].iter().sum(),
            loadings: rotated,
            feature_names: train.feature_names.clone(),
        })
    }

    /// Importance value for a named feature.
    pub fn importance_of(&self, name: &str) -> Option<f64> {
        let j = self.feature_names.iter().position(|n| n == name)?;
        Some(self.importance.mean_increase_mse[j])
    }

    /// Partial-dependence curve of the *full* forest for a named feature.
    pub fn partial_dependence(&self, name: &str, grid: usize) -> Option<PartialDependence> {
        let j = self.feature_names.iter().position(|n| n == name)?;
        Some(PartialDependence::compute(&self.forest, j, grid))
    }

    /// Predicts execution time from a full feature row (schema order).
    pub fn predict_row(&self, row: &[f64]) -> Result<f64> {
        self.forest
            .predict_row(row)
            .map_err(|e| BfError::Fit(e.to_string()))
    }

    /// Predicts execution time from the *selected* features only, in
    /// `self.selected` order — the entry point used by the counter-model
    /// prediction chain.
    pub fn predict_selected(&self, row: &[f64]) -> Result<f64> {
        self.reduced_forest
            .predict_row(row)
            .map_err(|e| BfError::Fit(e.to_string()))
    }

    /// Batched [`Self::predict_selected`]: one pass per tree over the whole
    /// batch through the level-order forest layout. Bit-identical per row
    /// to the single-row path.
    pub fn predict_selected_batch(&self, rows: &[Vec<f64>]) -> Result<Vec<f64>> {
        self.reduced_forest
            .predict_batch(rows)
            .map_err(|e| BfError::Fit(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{collect_matmul, CollectOptions};
    use gpu_sim::GpuConfig;

    fn matmul_dataset() -> Dataset {
        let gpu = GpuConfig::gtx580();
        let sizes: Vec<usize> = (2..=16).map(|k| k * 16).collect();
        collect_matmul(&gpu, &sizes, &CollectOptions::default()).unwrap()
    }

    #[test]
    fn fit_produces_accurate_model() {
        let data = matmul_dataset();
        let m = BlackForestModel::fit(&data, &ModelConfig::quick(1)).unwrap();
        assert!(
            m.validation.r_squared > 0.5,
            "r2 = {}",
            m.validation.r_squared
        );
        assert!(m.validation.oob_r_squared > 0.5);
    }

    #[test]
    fn reduced_model_retains_predictive_power() {
        let data = matmul_dataset();
        let m = BlackForestModel::fit(&data, &ModelConfig::quick(2)).unwrap();
        // The paper's criterion: the top-k refit keeps most of the accuracy.
        assert!(
            m.reduced_validation.r_squared > m.validation.r_squared - 0.25,
            "full {} vs reduced {}",
            m.validation.r_squared,
            m.reduced_validation.r_squared
        );
        assert_eq!(m.selected.len(), 6.min(data.n_features()));
    }

    #[test]
    fn ranking_is_sorted_by_importance() {
        let data = matmul_dataset();
        let m = BlackForestModel::fit(&data, &ModelConfig::quick(3)).unwrap();
        let imps: Vec<f64> = m
            .ranking
            .iter()
            .map(|n| m.importance_of(n).unwrap())
            .collect();
        for w in imps.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn pca_summary_is_sane() {
        let data = matmul_dataset();
        let m = BlackForestModel::fit(&data, &ModelConfig::quick(4)).unwrap();
        let pca = m.pca.as_ref().expect("pca should fit");
        assert!(pca.n_components >= 1);
        assert!(pca.cumulative >= 0.95 || pca.n_components == data.n_features());
        assert_eq!(pca.loadings.rows(), data.n_features());
        let dom = pca.dominant(0, 3);
        assert_eq!(dom.len(), 3);
        assert!(dom[0].1.abs() >= dom[1].1.abs());
    }

    #[test]
    fn rejects_tiny_datasets() {
        let mut ds = Dataset::new(vec!["a".into()], "time_ms");
        for i in 0..5 {
            ds.push(vec![i as f64], i as f64).unwrap();
        }
        assert!(BlackForestModel::fit(&ds, &ModelConfig::quick(5)).is_err());
    }

    #[test]
    fn partial_dependence_of_size_is_increasing() {
        let data = matmul_dataset();
        let m = BlackForestModel::fit(&data, &ModelConfig::quick(6)).unwrap();
        let pd = m.partial_dependence("size", 12).unwrap();
        assert!(pd.correlation() > 0.8, "corr = {}", pd.correlation());
    }

    #[test]
    fn predict_selected_accepts_reduced_rows() {
        let data = matmul_dataset();
        let m = BlackForestModel::fit(&data, &ModelConfig::quick(7)).unwrap();
        let sel = data.select(&m.selected).unwrap();
        let p = m.predict_selected(&sel.rows[3]).unwrap();
        assert!(p.is_finite() && p >= 0.0);
    }
}
