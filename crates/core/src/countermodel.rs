//! Stage 5 (results interpretation): model the retained counters in terms
//! of problem (and machine) characteristics.
//!
//! §4.2: "we model those parameters in terms of typical characteristics of
//! either the problem in hand or both the problem and hardware type, so that
//! predictions can be made solely based on the latter". Trivial cases use
//! GLMs (matrix size in MM); nonlinear, interacting cases use MARS (NW,
//! where the paper reports an average R² of 0.99 with `earth`).

use crate::dataset::Dataset;
use crate::{BfError, Result};
use bf_linalg::stats;
use bf_regress::glm::{Basis, LinearModel};
use bf_regress::mars::{Mars, MarsParams};
use serde::{Deserialize, Serialize};

/// Which regression family to use for counter models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelStrategy {
    /// Generalized linear model (polynomials + interactions of the
    /// characteristics).
    Glm,
    /// Multivariate adaptive regression splines.
    Mars,
    /// Fit both; keep the one with the better training R².
    Auto,
}

/// The fitted model of one counter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum CounterFit {
    /// The "counter" is itself a problem characteristic: pass it through.
    Identity {
        /// Index into the characteristic vector.
        index: usize,
    },
    /// A GLM over the characteristics.
    Glm(LinearModel),
    /// A MARS model over the characteristics.
    Mars(Mars),
}

/// One counter's model plus its fit diagnostics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CounterModel {
    /// Counter (feature) name.
    pub counter: String,
    /// The fitted regression.
    pub fit: CounterFit,
    /// Training R² of the fit.
    pub r_squared: f64,
    /// Residual deviance (RSS) of the fit — the quantity the paper reports
    /// per counter model.
    pub residual_deviance: f64,
    /// Residual deviance per observation.
    pub mean_residual_deviance: f64,
}

impl CounterModel {
    /// Predicts the counter value from a characteristic vector.
    pub fn predict(&self, chars: &[f64]) -> f64 {
        match &self.fit {
            CounterFit::Identity { index } => chars[*index],
            CounterFit::Glm(m) => m.predict_row(chars),
            CounterFit::Mars(m) => m.predict_row(chars),
        }
    }

    /// Short description of the model family used.
    pub fn family(&self) -> &'static str {
        match &self.fit {
            CounterFit::Identity { .. } => "identity",
            CounterFit::Glm(_) => "glm",
            CounterFit::Mars(_) => "mars",
        }
    }
}

/// The models of all retained counters for one application.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CounterModelSet {
    /// Characteristic names, in predictor order.
    pub characteristics: Vec<String>,
    /// One model per retained counter, aligned with the retained-feature
    /// order used by the reduced forest.
    pub models: Vec<CounterModel>,
}

/// A GLM basis over `p` characteristics: intercept, powers 1..=3 of each,
/// and pairwise interactions.
fn glm_basis(p: usize) -> Vec<Basis> {
    let mut basis = vec![Basis::Intercept];
    for f in 0..p {
        for power in 1..=3u32 {
            basis.push(Basis::Power { feature: f, power });
        }
    }
    for a in 0..p {
        for b in (a + 1)..p {
            basis.push(Basis::Interaction { a, b });
        }
    }
    basis
}

impl CounterModelSet {
    /// Fits a model for every `selected` feature as a function of the
    /// `characteristics` columns of `train`.
    pub fn fit(
        train: &Dataset,
        selected: &[String],
        characteristics: &[String],
        strategy: ModelStrategy,
    ) -> Result<CounterModelSet> {
        if characteristics.is_empty() {
            return Err(BfError::Data("no characteristics given".into()));
        }
        let _span = bf_trace::span!("fit_counter_models", counters = selected.len());
        // Characteristic matrix (inputs to every counter model).
        let char_rows: Vec<Vec<f64>> = {
            let idx: Vec<usize> = characteristics
                .iter()
                .map(|c| {
                    train
                        .feature_index(c)
                        .ok_or_else(|| BfError::Data(format!("characteristic {c} not in data")))
                })
                .collect::<Result<_>>()?;
            train
                .rows
                .iter()
                .map(|r| idx.iter().map(|&j| r[j]).collect())
                .collect()
        };

        let mut models = Vec::with_capacity(selected.len());
        for name in selected {
            if let Some(index) = characteristics.iter().position(|c| c == name) {
                models.push(CounterModel {
                    counter: name.clone(),
                    fit: CounterFit::Identity { index },
                    r_squared: 1.0,
                    residual_deviance: 0.0,
                    mean_residual_deviance: 0.0,
                });
                continue;
            }
            let _one = bf_trace::span!("fit_counter", counter = name.as_str());
            let y = train
                .column(name)
                .ok_or_else(|| BfError::Data(format!("selected feature {name} not in data")))?;
            models.push(Self::fit_one(name, &char_rows, &y, strategy)?);
        }
        Ok(CounterModelSet {
            characteristics: characteristics.to_vec(),
            models,
        })
    }

    fn fit_one(
        name: &str,
        chars: &[Vec<f64>],
        y: &[f64],
        strategy: ModelStrategy,
    ) -> Result<CounterModel> {
        let p = chars[0].len();
        let fit_glm = || -> Result<CounterModel> {
            let m = LinearModel::fit(&glm_basis(p), chars, y)
                .map_err(|e| BfError::Fit(e.to_string()))?;
            let pred = m.predict(chars);
            let r2 = stats::r_squared(&pred, y);
            Ok(CounterModel {
                counter: name.to_string(),
                r_squared: r2,
                residual_deviance: m.residual_deviance,
                mean_residual_deviance: m.mean_residual_deviance(),
                fit: CounterFit::Glm(m),
            })
        };
        let fit_mars = || -> Result<CounterModel> {
            let m = Mars::fit(chars, y, &MarsParams::default())
                .map_err(|e| BfError::Fit(e.to_string()))?;
            let pred = m.predict(chars);
            let rss: f64 = pred
                .iter()
                .zip(y.iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            Ok(CounterModel {
                counter: name.to_string(),
                r_squared: m.train_r_squared,
                residual_deviance: rss,
                mean_residual_deviance: rss / y.len() as f64,
                fit: CounterFit::Mars(m),
            })
        };
        match strategy {
            ModelStrategy::Glm => fit_glm(),
            ModelStrategy::Mars => fit_mars(),
            ModelStrategy::Auto => {
                let g = fit_glm()?;
                let m = fit_mars()?;
                // Prefer the simpler GLM unless MARS is clearly better.
                if m.r_squared > g.r_squared + 0.01 {
                    Ok(m)
                } else {
                    Ok(g)
                }
            }
        }
    }

    /// Predicts all counter values for a characteristic vector, aligned
    /// with the retained-feature order.
    pub fn predict(&self, chars: &[f64]) -> Vec<f64> {
        self.models.iter().map(|m| m.predict(chars)).collect()
    }

    /// Average R² across counter models (the paper quotes this for NW).
    pub fn mean_r_squared(&self) -> f64 {
        if self.models.is_empty() {
            return 0.0;
        }
        self.models.iter().map(|m| m.r_squared).sum::<f64>() / self.models.len() as f64
    }

    /// The counter model with the worst residual deviance (the paper calls
    /// out `inst_replay_overhead` as the poorly-modelled outlier for MM).
    pub fn worst_fit(&self) -> Option<&CounterModel> {
        self.models
            .iter()
            .filter(|m| !matches!(m.fit, CounterFit::Identity { .. }))
            .min_by(|a, b| a.r_squared.partial_cmp(&b.r_squared).unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A dataset whose counters are known functions of `size`.
    fn synthetic() -> Dataset {
        let mut ds = Dataset::new(
            vec![
                "size".into(),
                "quadratic".into(),
                "kinked".into(),
                "noisy".into(),
            ],
            "time_ms",
        );
        for i in 1..=40 {
            let s = i as f64 * 16.0;
            let quadratic = 0.01 * s * s + 2.0;
            let kinked = if s < 300.0 {
                s
            } else {
                300.0 + 0.1 * (s - 300.0)
            };
            let noisy = ((i * 2654435761usize) % 100) as f64;
            ds.push(vec![s, quadratic, kinked, noisy], s * 0.01)
                .unwrap();
        }
        ds
    }

    #[test]
    fn glm_models_quadratic_counter_perfectly() {
        let ds = synthetic();
        let set = CounterModelSet::fit(
            &ds,
            &["quadratic".into()],
            &["size".into()],
            ModelStrategy::Glm,
        )
        .unwrap();
        assert!(set.models[0].r_squared > 0.9999);
        let pred = set.models[0].predict(&[100.0]);
        assert!((pred - (0.01 * 100.0 * 100.0 + 2.0)).abs() < 0.5);
    }

    #[test]
    fn mars_wins_on_kinked_counter_under_auto() {
        let ds = synthetic();
        let set = CounterModelSet::fit(
            &ds,
            &["kinked".into()],
            &["size".into()],
            ModelStrategy::Auto,
        )
        .unwrap();
        assert!(
            set.models[0].r_squared > 0.99,
            "r2 {}",
            set.models[0].r_squared
        );
    }

    #[test]
    fn characteristic_passes_through_identity() {
        let ds = synthetic();
        let set = CounterModelSet::fit(
            &ds,
            &["size".into(), "quadratic".into()],
            &["size".into()],
            ModelStrategy::Auto,
        )
        .unwrap();
        assert_eq!(set.models[0].family(), "identity");
        assert_eq!(set.models[0].predict(&[123.0]), 123.0);
    }

    #[test]
    fn predict_returns_counters_in_selected_order() {
        let ds = synthetic();
        let set = CounterModelSet::fit(
            &ds,
            &["quadratic".into(), "size".into()],
            &["size".into()],
            ModelStrategy::Glm,
        )
        .unwrap();
        let out = set.predict(&[160.0]);
        assert_eq!(out.len(), 2);
        assert!((out[1] - 160.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_counter_has_poor_fit_and_is_worst() {
        let ds = synthetic();
        let set = CounterModelSet::fit(
            &ds,
            &["quadratic".into(), "noisy".into()],
            &["size".into()],
            ModelStrategy::Auto,
        )
        .unwrap();
        let worst = set.worst_fit().unwrap();
        assert_eq!(worst.counter, "noisy");
        assert!(worst.r_squared < 0.9);
        assert!(worst.mean_residual_deviance > 0.0);
    }

    #[test]
    fn rejects_unknown_characteristic_or_feature() {
        let ds = synthetic();
        assert!(CounterModelSet::fit(
            &ds,
            &["quadratic".into()],
            &["nope".into()],
            ModelStrategy::Glm
        )
        .is_err());
        assert!(
            CounterModelSet::fit(&ds, &["nope".into()], &["size".into()], ModelStrategy::Glm)
                .is_err()
        );
    }

    #[test]
    fn mean_r_squared_averages_models() {
        let ds = synthetic();
        let set = CounterModelSet::fit(
            &ds,
            &["quadratic".into(), "kinked".into()],
            &["size".into()],
            ModelStrategy::Auto,
        )
        .unwrap();
        let avg = set.mean_r_squared();
        assert!(avg > 0.99, "avg {avg}");
    }
}
