//! Artifact-path validation shared by every writer in the toolchain.
//!
//! The CLI, the benchmark bins, and the serving stack all write JSON
//! artifacts (`--out`, `--save`, `--trace-out`, `BENCH_*.json`). A typo'd
//! directory should fail with a clear message *before* minutes of
//! simulation or a whole load-test run, not with a bare OS error after
//! them — so every writer routes through [`resolve_out_path`] /
//! [`write_artifact`] here.

use std::path::{Path, PathBuf};

/// Validates an artifact output path up front: the parent directory must
/// exist and the path must not name a directory.
pub fn resolve_out_path(path: &Path) -> Result<PathBuf, String> {
    let parent = path
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .unwrap_or_else(|| Path::new("."));
    if !parent.exists() {
        return Err(format!(
            "output directory {} does not exist (for {})",
            parent.display(),
            path.display()
        ));
    }
    if !parent.is_dir() {
        return Err(format!(
            "output location {} is not a directory (for {})",
            parent.display(),
            path.display()
        ));
    }
    if path.is_dir() {
        return Err(format!(
            "output path {} is a directory, not a file",
            path.display()
        ));
    }
    Ok(path.to_path_buf())
}

/// Writes an artifact through [`resolve_out_path`], wrapping any filesystem
/// failure (permissions, disk full) in a message naming the path.
pub fn write_artifact(path: &Path, contents: &str) -> Result<(), String> {
    let path = resolve_out_path(path)?;
    std::fs::write(&path, contents).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_cwd_relative_files() {
        assert_eq!(
            resolve_out_path(Path::new("report.json")).unwrap(),
            PathBuf::from("report.json")
        );
    }

    #[test]
    fn rejects_missing_parent_with_clear_error() {
        let err = resolve_out_path(Path::new("/definitely/not/a/real/dir/out.json")).unwrap_err();
        assert!(err.contains("does not exist"), "unhelpful error: {err}");
    }

    #[test]
    fn write_artifact_round_trips() {
        let path = std::env::temp_dir().join("bf_artifact_roundtrip.txt");
        write_artifact(&path, "payload").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "payload");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn write_artifact_rejects_directory_target() {
        let err = write_artifact(&std::env::temp_dir(), "x").unwrap_err();
        assert!(err.contains("is a directory"), "unhelpful error: {err}");
    }
}
