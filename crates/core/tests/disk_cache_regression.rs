//! NW cache regression: repeated collections must hit the persistent
//! simulation cache, and a corrupted cache file must degrade to a clean
//! re-simulation — never to a crash or a changed dataset.
//!
//! Background: within one collection run, every NW launch is structurally
//! unique (one launch per anti-diagonal, each with a different grid), so
//! the in-memory memo tier legitimately scores a 0% hit rate on NW — the
//! repetitions knob clones one profiled run, it does not re-simulate. The
//! reuse that *is* available is **across runs**: sweeping the same lengths
//! again re-simulates identical launches. The disk tier
//! ([`gpu_sim::DiskCache`], enabled via `BF_SIM_CACHE_DIR`) captures
//! exactly that, and this test pins it: a second `collect_nw` over the same
//! lengths answers from disk, bit-identically.
//!
//! All scenarios share one `#[test]` because the cache-dir knob is a
//! process-global environment variable (same pattern as `determinism.rs`).

use blackforest::collect::{collect_nw, CollectOptions};
use blackforest::Dataset;
use gpu_sim::GpuConfig;
use std::io::{Read, Seek, SeekFrom, Write};

/// Exact bit pattern of every feature cell and response value.
fn fingerprint(ds: &Dataset) -> Vec<u64> {
    let mut bits = Vec::with_capacity(ds.len() * (ds.n_features() + 1));
    for row in &ds.rows {
        bits.extend(row.iter().map(|v| v.to_bits()));
    }
    bits.extend(ds.response.iter().map(|v| v.to_bits()));
    bits
}

#[test]
fn nw_collection_reuses_the_disk_cache_across_runs() {
    let dir = std::env::temp_dir().join(format!("bf-nw-diskcache-{}", std::process::id()));
    drop(std::fs::remove_dir_all(&dir));
    std::env::set_var("BF_SIM_CACHE_DIR", &dir);
    std::env::set_var("BF_SIM_CACHE", "1");

    let gpu = GpuConfig::gtx580();
    // Repetitions + noise on: the expanded observations must replay the
    // same noise stream regardless of where the simulation came from.
    let opts = CollectOptions::default().with_repetitions(3, 0.02);
    let lengths = [64, 128];

    // Cold run: nothing on disk, everything simulates and is persisted.
    gpu_sim::reset_global_cache_stats();
    let cold = collect_nw(&gpu, &lengths, &opts).unwrap();
    let cold_disk = gpu_sim::global_disk_cache_stats().misses;
    assert!(
        cold_disk > 0,
        "cold run must register disk misses (disk tier not wired?)"
    );

    // Warm run: a fresh process would build fresh SimCaches over the same
    // directory; a second collect in this process does exactly that (each
    // collect constructs its own cache via SimCache::from_env).
    gpu_sim::reset_global_cache_stats();
    let warm = collect_nw(&gpu, &lengths, &opts).unwrap();
    let warm_hits = gpu_sim::global_disk_cache_stats().hits;
    let stats = gpu_sim::global_cache_stats();
    assert!(
        warm_hits > 0,
        "NW re-collection must hit the disk cache (got {stats:?})"
    );
    assert_eq!(
        stats.misses, 0,
        "every NW launch was already cached, nothing should re-simulate"
    );
    assert_eq!(
        fingerprint(&warm),
        fingerprint(&cold),
        "disk-cached collection drifted from the simulated one"
    );

    // Corruption smoke test. The already-open cache serves from its
    // in-memory index, so to exercise the *loader* the way a fresh process
    // would, copy the cache file into a second directory, flip bytes in
    // the middle of the copy, and point the collection at it: the loader
    // must quarantine the damaged records, re-simulate the holes, and the
    // dataset must come out bit-identical.
    let corrupt_dir =
        std::env::temp_dir().join(format!("bf-nw-diskcache-corrupt-{}", std::process::id()));
    drop(std::fs::remove_dir_all(&corrupt_dir));
    std::fs::create_dir_all(&corrupt_dir).unwrap();
    let file = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "bin"))
        .expect("cache file must exist after a cold run");
    let copy = corrupt_dir.join(file.file_name().unwrap());
    std::fs::copy(&file, &copy).unwrap();
    {
        let mut f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&copy)
            .unwrap();
        let len = f.metadata().unwrap().len();
        let mut buf = [0u8; 64];
        f.seek(SeekFrom::Start(len / 2)).unwrap();
        f.read_exact(&mut buf).unwrap();
        for b in &mut buf {
            *b ^= 0xFF;
        }
        f.seek(SeekFrom::Start(len / 2)).unwrap();
        f.write_all(&buf).unwrap();
    }
    std::env::set_var("BF_SIM_CACHE_DIR", &corrupt_dir);
    gpu_sim::reset_global_cache_stats();
    let after_corruption = collect_nw(&gpu, &lengths, &opts).unwrap();
    let disk_after = gpu_sim::global_disk_cache_stats();
    let (surviving_hits, resimulated) = (disk_after.hits, disk_after.misses);
    assert!(
        surviving_hits > 0,
        "records before the corrupted region must still be served"
    );
    assert!(
        resimulated > 0,
        "the corrupted region must have cost some records (else the flip hit nothing)"
    );
    assert_eq!(
        fingerprint(&after_corruption),
        fingerprint(&cold),
        "corrupted cache changed collected values instead of degrading"
    );

    // The holes were re-simulated and appended; a final pass over the
    // repaired directory is all-hits again.
    gpu_sim::reset_global_cache_stats();
    collect_nw(&gpu, &lengths, &opts).unwrap();
    let repaired = gpu_sim::global_cache_stats();
    assert_eq!(
        repaired.misses, 0,
        "cache should serve everything again after corruption recovery"
    );

    std::env::remove_var("BF_SIM_CACHE_DIR");
    drop(std::fs::remove_dir_all(&dir));
    drop(std::fs::remove_dir_all(&corrupt_dir));
}
