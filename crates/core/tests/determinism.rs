//! Determinism of the parallel + memoized collection path.
//!
//! Launch-level parallel simulation accumulates per-application events in
//! issue order, and the memo cache replays pure simulation results, so the
//! profiled datasets must be *bit-identical* no matter how many worker
//! threads run and whether the cache is on. This test pins that contract
//! for all three collection drivers the paper uses.
//!
//! The thread/cache knobs are process-global environment variables
//! (`RAYON_NUM_THREADS`, `BF_SIM_CACHE`), so every scenario runs inside one
//! `#[test]` — integration-test binaries are separate processes, but tests
//! within a binary share an environment. Flipping the knobs mid-process is
//! harmless to any concurrently running test precisely because of the
//! property asserted here: the knobs change scheduling, never values.

use bf_kernels::reduce::ReduceVariant;
use blackforest::collect::{
    collect_nw, collect_reduce, collect_stencil, CollectOptions, ResponseMetric,
};
use blackforest::Dataset;
use gpu_sim::GpuConfig;

/// Exact bit pattern of every feature cell and response value.
fn fingerprint(ds: &Dataset) -> Vec<u64> {
    let mut bits = Vec::with_capacity(ds.len() * (ds.n_features() + 1));
    for row in &ds.rows {
        bits.extend(row.iter().map(|v| v.to_bits()));
    }
    bits.extend(ds.response.iter().map(|v| v.to_bits()));
    bits
}

fn set_knobs(threads: &str, cache: &str) {
    std::env::set_var("RAYON_NUM_THREADS", threads);
    std::env::set_var("BF_SIM_CACHE", cache);
}

#[test]
fn thread_count_and_cache_never_change_collected_values() {
    let gpu = GpuConfig::gtx580();
    // Repetitions + noise on, so the expansion path (and its RNG stream) is
    // covered too.
    let opts = CollectOptions::default().with_repetitions(2, 0.02);
    type Scenario<'a> = (&'a str, Box<dyn Fn() -> Dataset>);
    let scenarios: Vec<Scenario> = vec![
        (
            "reduce",
            Box::new({
                let gpu = gpu.clone();
                let opts = opts.clone();
                move || {
                    collect_reduce(
                        &gpu,
                        ReduceVariant::Reduce6,
                        &[1 << 12, 1 << 13],
                        &[64, 128],
                        &opts,
                    )
                    .unwrap()
                }
            }),
        ),
        (
            "nw",
            Box::new({
                let gpu = gpu.clone();
                let opts = opts.clone();
                move || collect_nw(&gpu, &[64, 128], &opts).unwrap()
            }),
        ),
        (
            "stencil",
            Box::new({
                let gpu = gpu.clone();
                let opts = opts.clone();
                move || collect_stencil(&gpu, &[32, 48], &[1, 3], &opts).unwrap()
            }),
        ),
    ];

    let saved_threads = std::env::var("RAYON_NUM_THREADS").ok();
    let saved_cache = std::env::var("BF_SIM_CACHE").ok();

    for (name, collectfn) in &scenarios {
        set_knobs("1", "0");
        let sequential = collectfn();
        let reference = fingerprint(&sequential);

        for (threads, cache) in [("1", "1"), ("4", "0"), ("4", "1"), ("16", "1")] {
            set_knobs(threads, cache);
            let ds = collectfn();
            assert_eq!(
                ds.feature_names, sequential.feature_names,
                "{name}: schema drifted at threads={threads} cache={cache}"
            );
            assert_eq!(
                fingerprint(&ds),
                reference,
                "{name}: values drifted at threads={threads} cache={cache}"
            );
        }
    }

    // Also pin the power response through the same machinery.
    set_knobs("1", "0");
    let power_opts = CollectOptions {
        response: ResponseMetric::AvgPowerW,
        ..opts.clone()
    };
    let seq = collect_nw(&gpu, &[64], &power_opts).unwrap();
    set_knobs("8", "1");
    let par = collect_nw(&gpu, &[64], &power_opts).unwrap();
    assert_eq!(fingerprint(&par), fingerprint(&seq));

    match saved_threads {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    match saved_cache {
        Some(v) => std::env::set_var("BF_SIM_CACHE", v),
        None => std::env::remove_var("BF_SIM_CACHE"),
    }
}
