//! End-to-end parity of the split strategies on real profiling sweeps: the
//! histogram default must tell the same performance story as the exact
//! search on the datasets the toolchain actually produces.

use bf_forest::{ForestParams, RandomForest, SplitStrategy};
use bf_kernels::reduce::ReduceVariant;
use blackforest::collect::{collect_matmul, collect_reduce, CollectOptions};
use blackforest::Dataset;
use gpu_sim::GpuConfig;

fn fit_pair(ds: &Dataset, seed: u64) -> (RandomForest, RandomForest) {
    let base = ForestParams::default().with_trees(120).with_seed(seed);
    let exact = RandomForest::fit(
        &ds.rows,
        &ds.response,
        &base.with_split_strategy(SplitStrategy::Exact),
    )
    .unwrap();
    let hist = RandomForest::fit(
        &ds.rows,
        &ds.response,
        &base.with_split_strategy(SplitStrategy::Histogram { max_bins: 256 }),
    )
    .unwrap();
    (exact, hist)
}

fn assert_same_story(ds: &Dataset, exact: &RandomForest, hist: &RandomForest) {
    let (r2e, r2h) = (exact.oob_r_squared(), hist.oob_r_squared());
    assert!(
        (r2e - r2h).abs() < 0.05,
        "OOB R² diverged: exact {r2e} vs histogram {r2h}"
    );
    let top_exact = &ds.feature_names[exact.permutation_importance().ranking()[0]];
    let top_hist = &ds.feature_names[hist.permutation_importance().ranking()[0]];
    assert_eq!(
        top_exact, top_hist,
        "top-1 important counter diverged between strategies"
    );
}

#[test]
fn reduce_sweep_same_r2_and_top_counter() {
    let gpu = GpuConfig::gtx580();
    let sizes: Vec<usize> = (14..=18).map(|e| 1usize << e).collect();
    let ds = collect_reduce(
        &gpu,
        ReduceVariant::Reduce0,
        &sizes,
        &[128, 256],
        &CollectOptions::default(),
    )
    .unwrap();
    let (exact, hist) = fit_pair(&ds, 21);
    assert_same_story(&ds, &exact, &hist);
}

#[test]
fn matmul_sweep_same_r2_and_top_counter() {
    let gpu = GpuConfig::gtx580();
    let sizes: Vec<usize> = (2..=14).step_by(2).map(|k| k * 16).collect();
    let ds = collect_matmul(&gpu, &sizes, &CollectOptions::default()).unwrap();
    let (exact, hist) = fit_pair(&ds, 22);
    assert_same_story(&ds, &exact, &hist);
}
