//! Registry lifecycle tests with real trained bundles: load → alias →
//! swap → drain, A/B splits, admin validation errors, and the shadow
//! replay engine end-to-end.

use bf_registry::{AliasUpdate, ModelBundle, Registry, RegistryError, ShadowJob, Split};
use blackforest::{BlackForest, ModelConfig, Workload};
use gpu_sim::GpuConfig;
use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

fn quick_bundle(seed: u64) -> ModelBundle {
    let gpu = GpuConfig::gtx580();
    let bf = BlackForest::new(gpu.clone()).with_config(ModelConfig::quick(seed));
    let sizes: Vec<usize> = (2..=14).map(|k| k * 16).collect();
    let report = bf.analyze(Workload::MatMul, &sizes).unwrap();
    ModelBundle::from_report(&report, &gpu, &sizes, true)
}

/// Two distinct trained bundles, shared across tests (training dominates
/// this suite's runtime).
fn bundles() -> &'static (ModelBundle, ModelBundle) {
    static BUNDLES: OnceLock<(ModelBundle, ModelBundle)> = OnceLock::new();
    BUNDLES.get_or_init(|| (quick_bundle(601), quick_bundle(602)))
}

#[test]
fn load_alias_resolve_and_hot_swap() {
    let (a, b) = bundles();
    let registry = Arc::new(Registry::new());
    let id_a = registry.load_bundle(a.clone()).unwrap();
    assert_eq!(id_a, a.content_id());
    // Loading the same bundle again is an idempotent success.
    assert_eq!(registry.load_bundle(a.clone()).unwrap(), id_a);
    assert_eq!(registry.list().models.len(), 1);

    registry
        .set_alias(AliasUpdate {
            alias: "default".into(),
            id: Some(id_a),
            create: true,
            ..AliasUpdate::default()
        })
        .unwrap();

    let mut reader = registry.reader();
    let before = reader.resolve("default").unwrap();
    assert_eq!(before.model.content_id, id_a);
    assert_eq!(before.alias.as_deref(), Some("default"));
    // Direct content-id addressing resolves too.
    assert_eq!(
        reader
            .resolve(&format!("{id_a:016x}"))
            .unwrap()
            .model
            .content_id,
        id_a
    );

    // Hot swap: the reader sees the new model on its next resolve, while
    // the in-flight `Resolved` keeps the old model alive and bit-stable.
    let id_b = registry.load_bundle(b.clone()).unwrap();
    assert_ne!(id_a, id_b);
    registry
        .set_alias(AliasUpdate {
            alias: "default".into(),
            id: Some(id_b),
            ..AliasUpdate::default()
        })
        .unwrap();
    let after = reader.resolve("default").unwrap();
    assert_eq!(after.model.content_id, id_b);
    assert_eq!(before.model.content_id, id_a, "in-flight Arc is unaffected");

    // Warm-up provably ran before publication on both models.
    assert_eq!(before.model.warm_checksum, before.model.flat.warm());
    assert_eq!(after.model.warm_checksum, after.model.flat.warm());
}

#[test]
fn ab_split_routes_the_configured_percentage() {
    let (a, b) = bundles();
    let registry = Arc::new(Registry::new());
    let id_a = registry.load_bundle(a.clone()).unwrap();
    let id_b = registry.load_bundle(b.clone()).unwrap();
    registry
        .set_alias(AliasUpdate {
            alias: "canary".into(),
            id: Some(id_a),
            create: true,
            split: Some(Split {
                secondary: id_b,
                percent: 25,
            }),
            ..AliasUpdate::default()
        })
        .unwrap();
    let mut reader = registry.reader();
    let mut secondary = 0usize;
    for _ in 0..400 {
        let r = reader.resolve("canary").unwrap();
        if r.split_secondary {
            assert_eq!(r.model.content_id, id_b);
            secondary += 1;
        } else {
            assert_eq!(r.model.content_id, id_a);
        }
    }
    // The arm selector is a deterministic counter mod 100: exactly 25%.
    assert_eq!(secondary, 100);
}

#[test]
fn unload_refuses_aliased_models_then_drains() {
    let (a, b) = bundles();
    let registry = Arc::new(Registry::new());
    let id_a = registry.load_bundle(a.clone()).unwrap();
    let id_b = registry.load_bundle(b.clone()).unwrap();
    registry
        .set_alias(AliasUpdate {
            alias: "default".into(),
            id: Some(id_a),
            create: true,
            ..AliasUpdate::default()
        })
        .unwrap();

    // Still aliased: refused with the holding aliases named.
    match registry.unload(id_a) {
        Err(RegistryError::InUse { id, aliases }) => {
            assert_eq!(id, id_a);
            assert_eq!(aliases, vec!["default".to_string()]);
        }
        other => panic!("expected InUse, got {other:?}"),
    }

    // Repoint, hold a simulated in-flight reference, then unload.
    registry
        .set_alias(AliasUpdate {
            alias: "default".into(),
            id: Some(id_b),
            ..AliasUpdate::default()
        })
        .unwrap();
    let mut reader = registry.reader();
    let inflight = reader.resolve(&format!("{id_a:016x}")).unwrap();
    registry.unload(id_a).unwrap();
    assert!(
        reader.resolve(&format!("{id_a:016x}")).is_err(),
        "unloaded model must disappear from routing"
    );
    // The in-flight Arc still works and keeps the model draining.
    assert_eq!(inflight.model.content_id, id_a);
    assert_eq!(registry.sweep_drained(), 1);
    let draining = registry.draining();
    assert_eq!(draining.len(), 1);
    assert_eq!(draining[0].0, id_a);
    // Dropping the last reference completes the drain.
    drop(inflight);
    assert_eq!(registry.sweep_drained(), 0);
    assert!(registry.list().draining.is_empty());

    // Unloading an unknown model is a 404-mapped error.
    assert!(matches!(
        registry.unload(id_a),
        Err(RegistryError::UnknownModel { .. })
    ));
}

#[test]
fn alias_validation_unknown_alias_fingerprint_and_compatibility() {
    let (a, _) = bundles();
    let registry = Arc::new(Registry::new());
    let id_a = registry.load_bundle(a.clone()).unwrap();

    // Updating a nonexistent alias without create is a 409.
    let err = registry
        .set_alias(AliasUpdate {
            alias: "default".into(),
            id: Some(id_a),
            ..AliasUpdate::default()
        })
        .unwrap_err();
    assert!(matches!(err, RegistryError::UnknownAlias { .. }));
    assert_eq!(err.http_status(), 409);

    registry
        .set_alias(AliasUpdate {
            alias: "default".into(),
            id: Some(id_a),
            create: true,
            ..AliasUpdate::default()
        })
        .unwrap();

    // A bundle trained on a different GPU fingerprint cannot be swapped in
    // without force.
    let mut foreign = a.clone();
    foreign.gpu_fingerprint ^= 0xdead_beef;
    let id_foreign = registry.load_bundle(foreign).unwrap();
    let err = registry
        .set_alias(AliasUpdate {
            alias: "default".into(),
            id: Some(id_foreign),
            ..AliasUpdate::default()
        })
        .unwrap_err();
    assert!(matches!(err, RegistryError::FingerprintMismatch { .. }));
    assert_eq!(err.http_status(), 409);
    assert!(err.to_string().contains("force"), "{err}");
    registry
        .set_alias(AliasUpdate {
            alias: "default".into(),
            id: Some(id_foreign),
            force: true,
            ..AliasUpdate::default()
        })
        .unwrap();

    // A shadow with a different characteristic schema is rejected.
    let mut skewed = a.clone();
    skewed.characteristics.push("sweeps".into());
    let id_skewed = registry.load_bundle(skewed).unwrap();
    let err = registry
        .set_alias(AliasUpdate {
            alias: "default".into(),
            shadow: Some(id_skewed),
            force: true,
            ..AliasUpdate::default()
        })
        .unwrap_err();
    assert!(matches!(err, RegistryError::Incompatible { .. }));
    assert_eq!(err.http_status(), 409);

    // Pointing an alias at a model that was never loaded is a 404.
    let err = registry
        .set_alias(AliasUpdate {
            alias: "default".into(),
            id: Some(0x1234),
            ..AliasUpdate::default()
        })
        .unwrap_err();
    assert!(matches!(err, RegistryError::UnknownModel { .. }));
    assert_eq!(err.http_status(), 404);

    // Percent must be a percentage.
    let err = registry
        .set_alias(AliasUpdate {
            alias: "default".into(),
            split: Some(Split {
                secondary: id_a,
                percent: 101,
            }),
            ..AliasUpdate::default()
        })
        .unwrap_err();
    assert!(matches!(err, RegistryError::BadRequest { .. }));
}

#[test]
fn shadow_engine_replays_and_reports_divergence() {
    let (a, b) = bundles();
    let registry = Arc::new(Registry::new());
    let id_a = registry.load_bundle(a.clone()).unwrap();
    let id_b = registry.load_bundle(b.clone()).unwrap();
    registry
        .set_alias(AliasUpdate {
            alias: "default".into(),
            id: Some(id_a),
            create: true,
            shadow: Some(id_b),
            ..AliasUpdate::default()
        })
        .unwrap();

    let mut reader = registry.reader();
    let resolved = reader.resolve("default").unwrap();
    let shadow = resolved.shadow.clone().expect("shadow attached");
    assert_eq!(shadow.content_id, id_b);

    // Replay a few primary predictions against the shadow.
    let rows: Vec<Vec<f64>> = [48.0, 96.0, 160.0]
        .iter()
        .map(|&s| {
            resolved
                .model
                .bundle
                .characteristics_for(s, None, None)
                .unwrap()
        })
        .collect();
    let primary_ms: Vec<f64> = rows
        .iter()
        .map(|r| resolved.model.bundle.predictor.predict(r).unwrap())
        .collect();
    registry.submit_shadow(ShadowJob {
        shadow: Arc::clone(&shadow),
        primary_id: resolved.model.content_id,
        workload: resolved.model.bundle.workload.clone(),
        rows: rows.clone(),
        primary_ms: primary_ms.clone(),
    });

    // The engine is asynchronous; poll until the report lands.
    let deadline = Instant::now() + Duration::from_secs(10);
    let report = loop {
        let report = registry.shadow_report();
        if report.requests >= 1 || Instant::now() > deadline {
            break report;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(report.requests, 1);
    assert_eq!(report.rows, 3);
    assert_eq!(report.errors, 0);
    // Two differently seeded trainings genuinely disagree somewhere.
    assert!(report.max_rel_delta > 0.0, "report: {report:?}");
    assert!(report.mean_rel_delta <= report.max_rel_delta);
    let per = report
        .per_workload
        .get(&resolved.model.bundle.workload)
        .expect("per-workload entry");
    assert_eq!(per.rows, 3);
    let pair = format!("{id_a:016x}→{id_b:016x}");
    assert_eq!(report.pairs.get(&pair), Some(&3));

    // The metric exposition carries the same counters.
    let metrics = registry.render_metrics();
    assert!(metrics.contains("bf_shadow_requests_total 1"), "{metrics}");
    assert!(metrics.contains("bf_shadow_rows_total 3"));
    assert!(metrics.contains(&format!(
        "bf_shadow_rows_total{{workload=\"{}\"}} 3",
        resolved.model.bundle.workload
    )));
}

#[test]
fn reader_epoch_only_refreshes_on_publication() {
    let (a, _) = bundles();
    let registry = Arc::new(Registry::new());
    let id_a = registry.load_bundle(a.clone()).unwrap();
    registry
        .set_alias(AliasUpdate {
            alias: "default".into(),
            id: Some(id_a),
            create: true,
            ..AliasUpdate::default()
        })
        .unwrap();
    let epoch = registry.epoch();
    let mut reader = registry.reader();
    // Steady state: resolves do not move the epoch.
    for _ in 0..100 {
        reader.resolve("default").unwrap();
    }
    assert_eq!(registry.epoch(), epoch);
    // A publication moves it exactly once.
    registry
        .set_alias(AliasUpdate {
            alias: "canary".into(),
            id: Some(id_a),
            create: true,
            ..AliasUpdate::default()
        })
        .unwrap();
    assert_eq!(registry.epoch(), epoch + 1);
    // Per-model serving counters are caller-driven.
    let r = reader.resolve("default").unwrap();
    r.model.record_served(5);
    assert_eq!(r.model.served_requests.load(Ordering::Relaxed), 1);
    assert_eq!(r.model.served_rows.load(Ordering::Relaxed), 5);
    let metrics = registry.render_metrics();
    assert!(metrics.contains(&format!("bf_model_rows_total{{model=\"{id_a:016x}\"}} 5")));
}
