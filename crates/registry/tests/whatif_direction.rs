//! End-to-end what-if acceptance: a quick-trained bundle must price the
//! bank-conflict fix for the conflicted reduce variant in the same
//! direction the simulator reports when the fix is actually applied to the
//! traces.
//!
//! This closes the loop of the lint what-if estimator: the statically
//! derived counter vectors of the baseline and hypothetically fixed kernel
//! go through [`bf_registry::ModelBundle::predict_ms_with`], and the
//! predicted delta's sign is checked against ground truth from
//! [`gpu_sim::simulate_launch`] over the same [`bf_analyze::FixedKernel`]
//! rewrite.

use bf_analyze::{whatif_scenarios, Fix, FixedKernel, WhatIfModel};
use bf_kernels::reduce::{reduce_application, ReduceVariant};
use bf_registry::ModelBundle;
use blackforest::{BlackForest, ModelConfig, Workload};
use gpu_sim::{simulate_launch, GpuConfig};

#[test]
fn model_priced_bank_conflict_fix_agrees_with_simulator_direction() {
    let gpu = GpuConfig::gtx580();

    // Quick-train a reduce bundle. Within a single variant's sweep every
    // counter co-varies with problem size, so the forest cannot learn what
    // bank conflicts *cost* — conflict counters rank at the bottom of the
    // importance ordering and a counter override moves nothing. Pooling the
    // conflicted (reduce1) and conflict-free (reduce3) variants makes the
    // replay/issue counters vary independently of size, which is exactly
    // the signal the what-if estimator needs the model to carry.
    let config = ModelConfig {
        top_k: 10,
        ..ModelConfig::quick(811)
    };
    let bf = BlackForest::new(gpu.clone()).with_config(config);
    let sizes: Vec<usize> = (4..=9).map(|k| 1usize << (k + 9)).collect();
    let mut data = bf
        .collect(Workload::Reduce(ReduceVariant::Reduce1), &sizes)
        .unwrap();
    // The collector drops all-zero counter columns, so the conflict-free
    // variant is missing the conflict counters entirely; pad them back as
    // zeros (their true value) and reorder to the pooled schema.
    let mut free = bf
        .collect(Workload::Reduce(ReduceVariant::Reduce3), &sizes)
        .unwrap();
    for name in &data.feature_names {
        if free.feature_index(name).is_none() {
            free.add_constant_column(name, 0.0);
        }
    }
    data.append(&free.select(&data.feature_names).unwrap())
        .unwrap();
    let report = bf
        .analyze_dataset(Workload::Reduce(ReduceVariant::Reduce1), data)
        .unwrap();
    let bundle = ModelBundle::from_report(&report, &gpu, &sizes, true);

    // The application under the lens: the interleaved, bank-conflicted
    // reduction at a size inside the training range.
    let size = 1usize << 14;
    let threads = 128usize;
    let app = reduce_application(ReduceVariant::Reduce1, size, threads);
    let chars = vec![
        ("size".to_string(), size as f64),
        ("threads".to_string(), threads as f64),
    ];

    let scenarios = whatif_scenarios(&gpu, &app).unwrap();
    let scenario = scenarios
        .iter()
        .find(|s| s.fix == Fix::ConflictFreeShared)
        .expect("reduce1 must have an applicable bank-conflict fix");

    // Model-predicted direction.
    let baseline_ms = bundle.predict_ms(&chars, &scenario.baseline).unwrap();
    let fixed_ms = bundle.predict_ms(&chars, &scenario.fixed).unwrap();
    assert!(
        baseline_ms > 0.0 && fixed_ms > 0.0,
        "predictions must be positive: baseline {baseline_ms} fixed {fixed_ms}"
    );
    assert!(
        fixed_ms < baseline_ms,
        "model must predict a speedup from removing bank conflicts: \
         baseline {baseline_ms}ms vs fixed {fixed_ms}ms"
    );

    // Simulator ground truth over the identical trace rewrite.
    let mut sim_base_ms = 0.0;
    let mut sim_fixed_ms = 0.0;
    for k in &app.launches {
        sim_base_ms += simulate_launch(&gpu, k.as_ref()).unwrap().time_seconds * 1e3;
        let fixed = FixedKernel {
            inner: k.as_ref(),
            fix: Fix::ConflictFreeShared,
        };
        sim_fixed_ms += simulate_launch(&gpu, &fixed).unwrap().time_seconds * 1e3;
    }
    assert!(
        sim_fixed_ms < sim_base_ms,
        "simulator must agree the fix helps: baseline {sim_base_ms}ms vs fixed {sim_fixed_ms}ms"
    );

    // Direction agreement is the acceptance criterion; both deltas must be
    // speedups.
    let model_delta = baseline_ms - fixed_ms;
    let sim_delta = sim_base_ms - sim_fixed_ms;
    assert!(
        model_delta.signum() == sim_delta.signum(),
        "model delta {model_delta}ms and simulator delta {sim_delta}ms disagree in direction"
    );
}
