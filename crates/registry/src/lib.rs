//! # bf-registry
//!
//! A concurrent model registry for the BlackForest serving stack.
//!
//! The prediction server of [PR 7] serves exactly one [`ModelBundle`],
//! frozen at startup. This crate supplies the missing half of ROADMAP
//! item 3: *N* concurrently loaded bundles, addressed by content id and by
//! mutable aliases, with zero-downtime promotion of a retrained bundle and
//! a live measure of how much two bundles disagree.
//!
//! * [`bundle`] — the versioned JSON [`ModelBundle`] artifact (moved here
//!   from bf-serve so the registry, which owns bundle lifecycles, also owns
//!   the artifact format; bf-serve re-exports it unchanged).
//! * [`registry`] — the [`Registry`] itself: an immutable [`RouteTable`]
//!   snapshot behind an epoch counter. Readers ([`RegistryReader`]) cache
//!   the current `Arc<RouteTable>` and revalidate it with one relaxed
//!   atomic load per request; they touch a lock only in the instant after
//!   a mutation, so the serving hot path never blocks on a reload. Writers
//!   build the expensive parts (forest compilation, page warm-up) *outside*
//!   any lock and publish by swapping one `Arc`.
//! * [`shadow`] — the shadow-mode replay engine: primary predictions are
//!   resubmitted against a shadow bundle on a dedicated thread (bounded
//!   queue, drop-on-full — the primary path is never backpressured) and
//!   paired into a streaming divergence report (count, mean/max relative
//!   delta, per-workload breakdown).
//!
//! The registry is the serving-side analogue of bf-analyze's differential
//! oracle: Stevens & Klöckner (arXiv:1904.09538) argue the cost of asking
//! a model to predict beyond its training data must be made explicit —
//! shadow mode measures exactly that, continuously, against live traffic.

pub mod bundle;
pub mod registry;
pub mod shadow;

pub use bundle::{BundleError, ModelBundle, Prediction, SweepMeta, SCHEMA_VERSION};
pub use registry::{
    AliasInfo, AliasTarget, AliasUpdate, DrainInfo, LoadedModel, ModelInfo, ModelsReport, Registry,
    RegistryError, RegistryReader, Resolved, RouteTable, Split,
};
pub use shadow::{ShadowJob, ShadowReport, WorkloadDelta};
