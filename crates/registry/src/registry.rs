//! The registry proper: loaded models, alias routing, and the
//! epoch-validated snapshot reader.
//!
//! ## Concurrency design
//!
//! All routing state lives in one immutable [`RouteTable`] behind an
//! `Arc`. Mutations (load, unload, alias swap) clone the table, edit the
//! clone, and publish it by replacing the `Arc` and bumping an epoch
//! counter — classic read-copy-update. A [`RegistryReader`] caches the
//! `Arc` it last saw together with the epoch it was published at; each
//! request costs one atomic load to revalidate, and only the first read
//! *after* a mutation takes the table lock (to clone the new `Arc`).
//! Since mutations are rare (an operator action) and readers hold the lock
//! for a single `Arc::clone`, the serving hot path is lock-free in the
//! steady state and never waits on a reload in progress: the expensive
//! part of a load — deserialization, forest compilation, page warm-up —
//! happens before the lock is touched.
//!
//! ## Drain protocol
//!
//! Models are handed to requests as `Arc<LoadedModel>` clones resolved at
//! dispatch time, so an in-flight request keeps its model alive (and
//! bit-stable) across any number of concurrent swaps — requests never fail
//! or mix models mid-flight. An unloaded model moves to a *graveyard* and
//! is considered drained once its only remaining reference is the
//! graveyard's own (`Arc::strong_count == 1`): no request, worker, or
//! cached reader snapshot can still touch it. [`Registry::sweep_drained`]
//! drops drained entries; it runs implicitly on every list/metrics render.

use crate::bundle::{BundleError, ModelBundle};
use crate::shadow::{ShadowEngine, ShadowJob, ShadowReport};
use bf_forest::FlatForest;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{SystemTime, UNIX_EPOCH};

/// A bundle loaded for serving: the artifact plus everything derived from
/// it at load time (content id, compiled forest) and per-model serving
/// counters.
pub struct LoadedModel {
    /// The artifact itself.
    pub bundle: ModelBundle,
    /// Content hash of the serialized bundle; the model's address.
    pub content_id: u64,
    /// The reduced forest compiled into the level-order batch layout.
    pub flat: FlatForest,
    /// Checksum returned by [`FlatForest::warm`] at load time; recorded so
    /// a warm pass provably ran before the model was published.
    pub warm_checksum: u64,
    /// Path the bundle was loaded from, when it came from disk.
    pub source: Option<PathBuf>,
    /// Unix seconds when the model was loaded into this registry.
    pub loaded_unix: u64,
    /// Requests answered by this model.
    pub served_requests: AtomicU64,
    /// Prediction rows answered by this model.
    pub served_rows: AtomicU64,
}

impl LoadedModel {
    fn build(bundle: ModelBundle, source: Option<PathBuf>) -> LoadedModel {
        let mut span = bf_trace::span!("registry.load", workload = bundle.workload.as_str());
        let content_id = bundle.content_id();
        let flat = FlatForest::from_forest(&bundle.predictor.model.reduced_forest);
        // Fault every page of the compiled layout before publication, so
        // the first request after a hot swap pays no first-touch cost.
        let warm_checksum = flat.warm();
        // One end-to-end prediction warms the counter-model path too.
        if let Some(&size) = bundle.sweep.sizes.get(bundle.sweep.sizes.len() / 2) {
            if let Ok(chars) = bundle.characteristics_for(size as f64, None, None) {
                let _ = bundle.predict(&chars);
            }
        }
        if span.is_active() {
            span.attr("content_id", format!("{content_id:016x}").as_str());
            span.attr("trees", flat.n_trees() as u64);
        }
        LoadedModel {
            bundle,
            content_id,
            flat,
            warm_checksum,
            source,
            loaded_unix: now_unix(),
            served_requests: AtomicU64::new(0),
            served_rows: AtomicU64::new(0),
        }
    }

    /// The model's address in hex, as used in URLs and metric labels.
    pub fn id_hex(&self) -> String {
        format!("{:016x}", self.content_id)
    }

    /// Records one answered request of `rows` prediction rows.
    pub fn record_served(&self, rows: u64) {
        self.served_requests.fetch_add(1, Ordering::Relaxed);
        self.served_rows.fetch_add(rows, Ordering::Relaxed);
    }
}

/// Percentage traffic split attached to an alias.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Split {
    /// Content id of the secondary model.
    pub secondary: u64,
    /// Percent of requests (0–100) routed to the secondary.
    pub percent: u8,
}

/// What an alias routes to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AliasTarget {
    /// Content id of the primary model.
    pub primary: u64,
    /// Optional percentage A/B split.
    pub split: Option<Split>,
    /// Optional shadow model: every primary request is replayed against it
    /// off the hot path.
    pub shadow: Option<u64>,
}

/// One immutable routing snapshot: the loaded models and the alias map.
#[derive(Clone, Default)]
pub struct RouteTable {
    models: Vec<Arc<LoadedModel>>,
    aliases: BTreeMap<String, AliasTarget>,
}

impl RouteTable {
    /// The model with this content id, if loaded.
    pub fn model(&self, id: u64) -> Option<&Arc<LoadedModel>> {
        self.models.iter().find(|m| m.content_id == id)
    }

    /// The alias entry with this name, if set.
    pub fn alias(&self, name: &str) -> Option<&AliasTarget> {
        self.aliases.get(name)
    }

    /// All loaded models.
    pub fn models(&self) -> &[Arc<LoadedModel>] {
        &self.models
    }

    /// All aliases, name-sorted.
    pub fn aliases(&self) -> impl Iterator<Item = (&String, &AliasTarget)> {
        self.aliases.iter()
    }
}

/// The outcome of resolving a predict target: the model the request must
/// use for its whole lifetime, plus the shadow model to replay against.
#[derive(Clone)]
pub struct Resolved {
    /// The model that answers the request.
    pub model: Arc<LoadedModel>,
    /// Shadow model attached to the resolved alias, if any.
    pub shadow: Option<Arc<LoadedModel>>,
    /// The alias the request came through, when it did.
    pub alias: Option<String>,
    /// Whether an A/B split routed this request to the secondary.
    pub split_secondary: bool,
}

/// Errors from registry operations, each with a canonical HTTP status.
#[derive(Debug)]
pub enum RegistryError {
    /// The bundle file failed to load or decode.
    Bundle(BundleError),
    /// No loaded model under this id or alias.
    UnknownModel {
        /// The id/alias as given.
        key: String,
    },
    /// An alias swap targeted an alias that does not exist (and `create`
    /// was not set).
    UnknownAlias {
        /// The alias as given.
        alias: String,
    },
    /// The proposed model was trained on a different GPU than the alias
    /// currently serves (and `force` was not set).
    FingerprintMismatch {
        /// The alias being updated.
        alias: String,
        /// Fingerprint of the currently aliased model.
        current: u64,
        /// Fingerprint of the proposed model.
        proposed: u64,
    },
    /// Models that cannot be paired (e.g. shadow with a different
    /// characteristic schema than the primary).
    Incompatible {
        /// Human-readable explanation.
        reason: String,
    },
    /// The model is still referenced by one or more aliases.
    InUse {
        /// The model being unloaded.
        id: u64,
        /// Aliases still routing to it.
        aliases: Vec<String>,
    },
    /// A malformed request (bad percent, missing field, ...).
    BadRequest {
        /// Human-readable explanation.
        reason: String,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Bundle(e) => write!(f, "{e}"),
            RegistryError::UnknownModel { key } => {
                write!(f, "no loaded model under id or alias {key:?}")
            }
            RegistryError::UnknownAlias { alias } => write!(
                f,
                "alias {alias:?} does not exist; pass \"create\": true to create it"
            ),
            RegistryError::FingerprintMismatch {
                alias,
                current,
                proposed,
            } => write!(
                f,
                "alias {alias:?} currently serves a bundle with GPU fingerprint \
                 {current:#x}; the proposed bundle was trained on fingerprint {proposed:#x} \
                 — pass \"force\": true to swap across GPUs"
            ),
            RegistryError::Incompatible { reason } => write!(f, "incompatible models: {reason}"),
            RegistryError::InUse { id, aliases } => write!(
                f,
                "model {id:016x} is still aliased by {aliases:?}; repoint or drop the \
                 aliases before unloading"
            ),
            RegistryError::BadRequest { reason } => write!(f, "{reason}"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<BundleError> for RegistryError {
    fn from(e: BundleError) -> Self {
        RegistryError::Bundle(e)
    }
}

impl RegistryError {
    /// The HTTP status the serving layer should answer with.
    pub fn http_status(&self) -> u16 {
        match self {
            RegistryError::Bundle(_) | RegistryError::BadRequest { .. } => 400,
            RegistryError::UnknownModel { .. } => 404,
            RegistryError::UnknownAlias { .. }
            | RegistryError::FingerprintMismatch { .. }
            | RegistryError::Incompatible { .. }
            | RegistryError::InUse { .. } => 409,
        }
    }
}

/// An admin alias update. `id` is the new primary (`None` keeps the
/// current one); `split`/`shadow` replace the alias's split and shadow
/// outright (`None` clears them).
#[derive(Debug, Default)]
pub struct AliasUpdate {
    /// Alias name to create or update.
    pub alias: String,
    /// New primary model (content id). `None` keeps the current primary.
    pub id: Option<u64>,
    /// Create the alias if it does not exist (otherwise 409).
    pub create: bool,
    /// Allow swapping to a model trained on a different GPU fingerprint.
    pub force: bool,
    /// Percentage A/B split to install (replaces any existing split).
    pub split: Option<Split>,
    /// Shadow model to attach (replaces any existing shadow).
    pub shadow: Option<u64>,
}

/// A model removed from the table, awaiting drain.
struct Retired {
    model: Arc<LoadedModel>,
    retired_unix: u64,
}

/// The registry: an epoch-published [`RouteTable`] plus the shadow engine
/// and the drain graveyard.
pub struct Registry {
    /// Bumped on every published mutation; readers revalidate against it.
    epoch: AtomicU64,
    table: Mutex<Arc<RouteTable>>,
    graveyard: Mutex<Vec<Retired>>,
    shadow: ShadowEngine,
    /// Deterministic A/B arm selector: request counter modulo 100.
    ab_counter: AtomicU64,
    /// Published mutations (loads, unloads, alias swaps) since start.
    swaps: AtomicU64,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry with a running shadow engine.
    pub fn new() -> Registry {
        Registry {
            epoch: AtomicU64::new(0),
            table: Mutex::new(Arc::new(RouteTable::default())),
            graveyard: Mutex::new(Vec::new()),
            shadow: ShadowEngine::start(),
            ab_counter: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
        }
    }

    /// The current epoch. Changes exactly when the routing table does.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// A fresh snapshot reader. Each serving thread owns one.
    pub fn reader(self: &Arc<Self>) -> RegistryReader {
        let table = self.snapshot();
        RegistryReader {
            registry: Arc::clone(self),
            epoch: self.epoch(),
            table,
        }
    }

    /// The current table (slow path: takes the table lock for one clone).
    pub fn snapshot(&self) -> Arc<RouteTable> {
        Arc::clone(&self.table.lock().unwrap())
    }

    /// Clones the current table, applies `mutate`, and publishes the
    /// result under a new epoch. The closure must be cheap: every
    /// expensive step (bundle decode, forest compile, warm-up) happens in
    /// the caller before this is entered.
    fn publish<T>(
        &self,
        mutate: impl FnOnce(&mut RouteTable) -> Result<T, RegistryError>,
    ) -> Result<T, RegistryError> {
        let mut guard = self.table.lock().unwrap();
        let mut next = RouteTable::clone(&guard);
        let out = mutate(&mut next)?;
        *guard = Arc::new(next);
        self.epoch.fetch_add(1, Ordering::Release);
        self.swaps.fetch_add(1, Ordering::Relaxed);
        bf_trace::counter!("registry.publishes");
        Ok(out)
    }

    /// Loads a bundle value into the registry (compile + warm outside any
    /// lock, then publish). Loading an already-loaded bundle is an
    /// idempotent success. Returns the content id.
    pub fn load_bundle(&self, bundle: ModelBundle) -> Result<u64, RegistryError> {
        self.load_model(bundle, None)
    }

    /// Loads a bundle from a JSON file; see [`Registry::load_bundle`].
    pub fn load_path(&self, path: &Path) -> Result<u64, RegistryError> {
        let bundle = ModelBundle::load(path)?;
        self.load_model(bundle, Some(path.to_path_buf()))
    }

    fn load_model(
        &self,
        bundle: ModelBundle,
        source: Option<PathBuf>,
    ) -> Result<u64, RegistryError> {
        let model = Arc::new(LoadedModel::build(bundle, source));
        let id = model.content_id;
        self.publish(|table| {
            if table.model(id).is_none() {
                table.models.push(model);
            }
            Ok(id)
        })?;
        Ok(id)
    }

    /// Unloads a model. Refused while any alias still routes to it; the
    /// model then drains in the graveyard (see the module docs).
    pub fn unload(&self, id: u64) -> Result<(), RegistryError> {
        let retired = self.publish(|table| {
            let holders: Vec<String> = table
                .aliases
                .iter()
                .filter(|(_, t)| {
                    t.primary == id
                        || t.shadow == Some(id)
                        || t.split.map(|s| s.secondary == id).unwrap_or(false)
                })
                .map(|(name, _)| name.clone())
                .collect();
            if !holders.is_empty() {
                return Err(RegistryError::InUse {
                    id,
                    aliases: holders,
                });
            }
            let at = table.models.iter().position(|m| m.content_id == id).ok_or(
                RegistryError::UnknownModel {
                    key: format!("{id:016x}"),
                },
            )?;
            Ok(table.models.remove(at))
        })?;
        self.graveyard.lock().unwrap().push(Retired {
            model: retired,
            retired_unix: now_unix(),
        });
        Ok(())
    }

    /// Creates or updates an alias. Validation (existence, GPU
    /// fingerprint, shadow/split compatibility) happens against the table
    /// being published, so concurrent admin calls cannot interleave into
    /// an invalid state.
    pub fn set_alias(&self, update: AliasUpdate) -> Result<AliasTarget, RegistryError> {
        if let Some(split) = update.split {
            if split.percent > 100 {
                return Err(RegistryError::BadRequest {
                    reason: format!("split percent must be 0–100, got {}", split.percent),
                });
            }
        }
        self.publish(move |table| {
            let existing = table.aliases.get(&update.alias).cloned();
            if existing.is_none() && !update.create {
                return Err(RegistryError::UnknownAlias {
                    alias: update.alias.clone(),
                });
            }
            let primary_id = match update.id.or(existing.as_ref().map(|t| t.primary)) {
                Some(id) => id,
                None => {
                    return Err(RegistryError::BadRequest {
                        reason: "a new alias needs an \"id\" to point at".into(),
                    })
                }
            };
            let primary =
                table
                    .model(primary_id)
                    .cloned()
                    .ok_or_else(|| RegistryError::UnknownModel {
                        key: format!("{primary_id:016x}"),
                    })?;
            if let Some(current) = existing.as_ref().and_then(|t| table.model(t.primary)) {
                if current.bundle.gpu_fingerprint != primary.bundle.gpu_fingerprint && !update.force
                {
                    return Err(RegistryError::FingerprintMismatch {
                        alias: update.alias.clone(),
                        current: current.bundle.gpu_fingerprint,
                        proposed: primary.bundle.gpu_fingerprint,
                    });
                }
            }
            for (role, id) in [
                ("split secondary", update.split.map(|s| s.secondary)),
                ("shadow", update.shadow),
            ] {
                let Some(id) = id else { continue };
                let other =
                    table
                        .model(id)
                        .cloned()
                        .ok_or_else(|| RegistryError::UnknownModel {
                            key: format!("{id:016x}"),
                        })?;
                if other.bundle.characteristics != primary.bundle.characteristics {
                    return Err(RegistryError::Incompatible {
                        reason: format!(
                            "{role} {:016x} expects characteristics {:?} but the primary \
                             expects {:?}; paired predictions would be meaningless",
                            id, other.bundle.characteristics, primary.bundle.characteristics
                        ),
                    });
                }
            }
            let target = AliasTarget {
                primary: primary_id,
                split: update.split,
                shadow: update.shadow,
            };
            table.aliases.insert(update.alias.clone(), target.clone());
            bf_trace::counter!("registry.alias_swaps");
            Ok(target)
        })
    }

    /// Drops an alias (models stay loaded).
    pub fn drop_alias(&self, alias: &str) -> Result<(), RegistryError> {
        self.publish(|table| {
            table
                .aliases
                .remove(alias)
                .map(|_| ())
                .ok_or(RegistryError::UnknownAlias {
                    alias: alias.to_string(),
                })
        })
    }

    /// Resolves an id or alias against the current table (slow path; the
    /// serving threads use [`RegistryReader::resolve`]).
    pub fn resolve(&self, key: &str) -> Result<Resolved, RegistryError> {
        resolve_in(&self.snapshot(), key, &self.ab_counter)
    }

    /// Submits a shadow replay job; drops it (counted) when the shadow
    /// queue is full rather than slowing the primary path.
    pub fn submit_shadow(&self, job: ShadowJob) {
        self.shadow.submit(job);
    }

    /// The current streaming shadow divergence report.
    pub fn shadow_report(&self) -> ShadowReport {
        self.shadow.report()
    }

    /// Drops graveyard entries whose only reference is the graveyard's
    /// own; returns how many models are still draining.
    pub fn sweep_drained(&self) -> usize {
        let mut graveyard = self.graveyard.lock().unwrap();
        graveyard.retain(|r| Arc::strong_count(&r.model) > 1);
        graveyard.len()
    }

    /// `(content id, outstanding refs)` for every model still draining.
    pub fn draining(&self) -> Vec<(u64, usize)> {
        self.sweep_drained();
        self.graveyard
            .lock()
            .unwrap()
            .iter()
            .map(|r| (r.model.content_id, Arc::strong_count(&r.model) - 1))
            .collect()
    }

    /// A serializable inventory: models, aliases, and draining entries.
    pub fn list(&self) -> ModelsReport {
        self.sweep_drained();
        let table = self.snapshot();
        let models = table
            .models
            .iter()
            .map(|m| ModelInfo {
                id: m.id_hex(),
                workload: m.bundle.workload.clone(),
                gpu: m.bundle.gpu_name.clone(),
                gpu_fingerprint: format!("{:#x}", m.bundle.gpu_fingerprint),
                schema_version: m.bundle.schema_version,
                trees: m.flat.n_trees(),
                characteristics: m.bundle.characteristics.clone(),
                source: m.source.as_ref().map(|p| p.display().to_string()),
                loaded_unix: m.loaded_unix,
                served_requests: m.served_requests.load(Ordering::Relaxed),
                served_rows: m.served_rows.load(Ordering::Relaxed),
            })
            .collect();
        let aliases = table
            .aliases
            .iter()
            .map(|(name, t)| AliasInfo {
                alias: name.clone(),
                primary: format!("{:016x}", t.primary),
                split: t.split,
                split_secondary: t.split.map(|s| format!("{:016x}", s.secondary)),
                shadow: t.shadow.map(|id| format!("{id:016x}")),
            })
            .collect();
        let draining = self
            .graveyard
            .lock()
            .unwrap()
            .iter()
            .map(|r| DrainInfo {
                id: format!("{:016x}", r.model.content_id),
                refs: Arc::strong_count(&r.model) - 1,
                retired_unix: r.retired_unix,
            })
            .collect();
        ModelsReport {
            epoch: self.epoch(),
            models,
            aliases,
            draining,
        }
    }

    /// Prometheus-style exposition of registry and shadow state, appended
    /// to the server's `/metrics` body.
    pub fn render_metrics(&self) -> String {
        let draining = self.sweep_drained();
        let table = self.snapshot();
        let mut out = String::with_capacity(1024);
        out.push_str("# HELP bf_models_loaded Models currently loaded in the registry.\n");
        out.push_str("# TYPE bf_models_loaded gauge\n");
        out.push_str(&format!("bf_models_loaded {}\n", table.models.len()));
        out.push_str("# HELP bf_models_draining Unloaded models with outstanding references.\n");
        out.push_str("# TYPE bf_models_draining gauge\n");
        out.push_str(&format!("bf_models_draining {draining}\n"));
        out.push_str("# HELP bf_registry_epoch Routing-table publications since start.\n");
        out.push_str("# TYPE bf_registry_epoch counter\n");
        out.push_str(&format!("bf_registry_epoch {}\n", self.epoch()));
        out.push_str("# HELP bf_model_requests_total Requests answered, per model.\n");
        out.push_str("# TYPE bf_model_requests_total counter\n");
        for m in table.models.iter() {
            out.push_str(&format!(
                "bf_model_requests_total{{model=\"{}\"}} {}\n",
                m.id_hex(),
                m.served_requests.load(Ordering::Relaxed)
            ));
        }
        out.push_str("# HELP bf_model_rows_total Prediction rows answered, per model.\n");
        out.push_str("# TYPE bf_model_rows_total counter\n");
        for m in table.models.iter() {
            out.push_str(&format!(
                "bf_model_rows_total{{model=\"{}\"}} {}\n",
                m.id_hex(),
                m.served_rows.load(Ordering::Relaxed)
            ));
        }
        out.push_str(&self.shadow.render_metrics());
        out
    }
}

/// Resolves `key` (an alias name or a 16-hex-digit content id) against a
/// table, applying the alias's A/B split if one is installed.
fn resolve_in(
    table: &RouteTable,
    key: &str,
    ab_counter: &AtomicU64,
) -> Result<Resolved, RegistryError> {
    if let Some(target) = table.alias(key) {
        let mut id = target.primary;
        let mut split_secondary = false;
        if let Some(split) = target.split {
            // Deterministic round-robin arm selection: exactly `percent`
            // of every 100 consecutive resolutions take the secondary.
            let tick = ab_counter.fetch_add(1, Ordering::Relaxed);
            if (tick % 100) < u64::from(split.percent) {
                id = split.secondary;
                split_secondary = true;
            }
        }
        let model = table
            .model(id)
            .cloned()
            .ok_or_else(|| RegistryError::UnknownModel {
                key: format!("{id:016x}"),
            })?;
        let shadow = target.shadow.and_then(|sid| table.model(sid).cloned());
        return Ok(Resolved {
            model,
            shadow,
            alias: Some(key.to_string()),
            split_secondary,
        });
    }
    if let Some(id) = parse_id_hex(key) {
        if let Some(model) = table.model(id).cloned() {
            return Ok(Resolved {
                model,
                shadow: None,
                alias: None,
                split_secondary: false,
            });
        }
    }
    Err(RegistryError::UnknownModel {
        key: key.to_string(),
    })
}

/// Parses a 16-hex-digit content id.
pub fn parse_id_hex(s: &str) -> Option<u64> {
    (s.len() == 16)
        .then(|| u64::from_str_radix(s, 16).ok())
        .flatten()
}

/// A serving thread's cached view of the routing table. `table()` and
/// `resolve()` revalidate with one atomic load; the lock is taken only on
/// the first call after a mutation, for a single `Arc` clone.
pub struct RegistryReader {
    registry: Arc<Registry>,
    epoch: u64,
    table: Arc<RouteTable>,
}

impl RegistryReader {
    /// The current table snapshot (refreshed if the epoch moved).
    pub fn table(&mut self) -> &Arc<RouteTable> {
        let now = self.registry.epoch.load(Ordering::Acquire);
        if now != self.epoch {
            self.table = self.registry.snapshot();
            self.epoch = now;
        }
        &self.table
    }

    /// Resolves an id or alias through the cached snapshot.
    pub fn resolve(&mut self, key: &str) -> Result<Resolved, RegistryError> {
        let now = self.registry.epoch.load(Ordering::Acquire);
        if now != self.epoch {
            self.table = self.registry.snapshot();
            self.epoch = now;
        }
        resolve_in(&self.table, key, &self.registry.ab_counter)
    }

    /// The registry this reader views.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }
}

/// One loaded model, as listed by `GET /v1/models`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelInfo {
    /// Content id (16 hex digits).
    pub id: String,
    /// Workload the bundle was trained for.
    pub workload: String,
    /// GPU the training sweep ran on.
    pub gpu: String,
    /// Training-GPU configuration fingerprint.
    pub gpu_fingerprint: String,
    /// Bundle schema version.
    pub schema_version: u32,
    /// Trees in the compiled reduced forest.
    pub trees: usize,
    /// Characteristic names, in query order.
    pub characteristics: Vec<String>,
    /// Source path, when loaded from disk.
    pub source: Option<String>,
    /// Unix seconds when the model was loaded.
    pub loaded_unix: u64,
    /// Requests answered by this model.
    pub served_requests: u64,
    /// Prediction rows answered by this model.
    pub served_rows: u64,
}

/// One alias, as listed by `GET /v1/models`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AliasInfo {
    /// Alias name.
    pub alias: String,
    /// Primary model id (16 hex digits).
    pub primary: String,
    /// Installed A/B split, if any.
    pub split: Option<Split>,
    /// Secondary model id in hex, when a split is installed.
    pub split_secondary: Option<String>,
    /// Shadow model id in hex, when a shadow is attached.
    pub shadow: Option<String>,
}

/// One draining (unloaded, still referenced) model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DrainInfo {
    /// Content id (16 hex digits).
    pub id: String,
    /// References outstanding beyond the graveyard's own.
    pub refs: usize,
    /// Unix seconds when the model was unloaded.
    pub retired_unix: u64,
}

/// The full `GET /v1/models` inventory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelsReport {
    /// Routing-table epoch the inventory was taken at.
    pub epoch: u64,
    /// Loaded models.
    pub models: Vec<ModelInfo>,
    /// Aliases.
    pub aliases: Vec<AliasInfo>,
    /// Unloaded models still draining.
    pub draining: Vec<DrainInfo>,
}

fn now_unix() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_id_hex_requires_exactly_16_hex_digits() {
        assert_eq!(parse_id_hex("00000000000000ff"), Some(0xff));
        assert_eq!(parse_id_hex("ff"), None);
        assert_eq!(parse_id_hex("00000000000000zz"), None);
        assert_eq!(parse_id_hex("00000000000000ff0"), None);
    }

    #[test]
    fn empty_registry_resolves_nothing_and_sweeps_clean() {
        let r = Registry::new();
        assert!(matches!(
            r.resolve("default"),
            Err(RegistryError::UnknownModel { .. })
        ));
        assert_eq!(r.sweep_drained(), 0);
        assert_eq!(r.epoch(), 0);
        let report = r.list();
        assert!(report.models.is_empty() && report.aliases.is_empty());
    }

    #[test]
    fn error_statuses_map_to_http() {
        assert_eq!(
            RegistryError::UnknownModel { key: "x".into() }.http_status(),
            404
        );
        assert_eq!(
            RegistryError::UnknownAlias { alias: "x".into() }.http_status(),
            409
        );
        assert_eq!(
            RegistryError::FingerprintMismatch {
                alias: "default".into(),
                current: 1,
                proposed: 2
            }
            .http_status(),
            409
        );
        assert_eq!(
            RegistryError::InUse {
                id: 7,
                aliases: vec!["default".into()]
            }
            .http_status(),
            409
        );
        assert_eq!(
            RegistryError::BadRequest { reason: "x".into() }.http_status(),
            400
        );
    }
}
