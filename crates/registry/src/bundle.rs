//! Versioned model-artifact bundles.
//!
//! A [`ModelBundle`] persists everything the prediction chain needs to
//! answer queries without re-profiling or re-training: the fitted
//! forest/counter-model predictor, the feature schema and retained
//! variables, the training-GPU fingerprint, and the sweep that produced the
//! training data. Bundles are plain JSON with an explicit
//! [`SCHEMA_VERSION`]; the loader probes the version *before* attempting a
//! full decode so a stale or foreign file fails with a clear message
//! instead of a deep deserialization error.

use blackforest::bottleneck::BottleneckReport;
use blackforest::predict::ProblemScalingPredictor;
use blackforest::toolchain::{AnalysisReport, Workload};
use gpu_sim::GpuConfig;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::path::Path;
use std::time::{SystemTime, UNIX_EPOCH};

/// Current bundle schema version. Bump on any breaking change to the
/// serialized layout of [`ModelBundle`] or the models nested inside it.
/// Version 2 added `gpu_arch` (the training GPU's architecture name) so
/// consumers can reason about cross-architecture promotion without
/// re-deriving the architecture from the fingerprint.
pub const SCHEMA_VERSION: u32 = 2;

/// Errors raised when saving or loading a bundle.
#[derive(Debug)]
pub enum BundleError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The file is not valid JSON or not a bundle at all.
    Format(String),
    /// The file is a bundle, but from an incompatible schema version.
    Version {
        /// Version recorded in the file.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
}

impl std::fmt::Display for BundleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BundleError::Io(e) => write!(f, "bundle io error: {e}"),
            BundleError::Format(msg) => write!(f, "bundle format error: {msg}"),
            BundleError::Version { found, expected } => write!(
                f,
                "bundle schema version {found} is not supported (this build reads \
                 version {expected}); re-train with `blackforest train --save`"
            ),
        }
    }
}

impl std::error::Error for BundleError {}

impl From<std::io::Error> for BundleError {
    fn from(e: std::io::Error) -> Self {
        BundleError::Io(e)
    }
}

/// Metadata of the profiling sweep a bundle was trained on.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepMeta {
    /// The swept values of the primary problem characteristic.
    pub sizes: Vec<usize>,
    /// Whether the quick (reduced) sweep/forest configuration was used.
    pub quick: bool,
    /// Rows in the collected dataset (after repetition expansion).
    pub n_runs: usize,
    /// Predictor columns in the collected dataset.
    pub n_features: usize,
    /// Unix timestamp (seconds) of bundle creation.
    pub created_unix: u64,
}

/// Minimal probe used to check the version field before a full decode.
#[derive(Deserialize)]
struct VersionProbe {
    schema_version: Option<u32>,
}

/// A self-contained, reloadable model artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelBundle {
    /// Bundle layout version; see [`SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Workload name (parses back via [`Workload::from_name`]).
    pub workload: String,
    /// Name of the GPU the sweep ran on.
    pub gpu_name: String,
    /// Architecture generation of the training GPU (`fermi`, `kepler`,
    /// `maxwell`, `pascal`, `volta`). Counter availability differs across
    /// generations, so a bundle's retained features only make sense on
    /// architectures that produce them.
    pub gpu_arch: String,
    /// Configuration fingerprint of the training GPU — a prediction served
    /// from this bundle is only valid for a GPU with this exact fingerprint.
    pub gpu_fingerprint: u64,
    /// Problem-characteristic names, in query order.
    pub characteristics: Vec<String>,
    /// Full predictor schema of the training data, in column order.
    pub feature_names: Vec<String>,
    /// The retained top-k features driving the reduced forest.
    pub selected: Vec<String>,
    /// Provenance of the training sweep.
    pub sweep: SweepMeta,
    /// The fitted prediction chain (forest + counter models).
    pub predictor: ProblemScalingPredictor,
    /// The ranked bottleneck findings of the training-time analysis.
    pub bottlenecks: BottleneckReport,
}

impl ModelBundle {
    /// Packages a finished analysis into a bundle.
    pub fn from_report(
        report: &AnalysisReport,
        gpu: &GpuConfig,
        sizes: &[usize],
        quick: bool,
    ) -> ModelBundle {
        let created_unix = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        ModelBundle {
            schema_version: SCHEMA_VERSION,
            workload: report.workload.name(),
            gpu_name: gpu.name.clone(),
            gpu_arch: gpu.arch.name().to_string(),
            gpu_fingerprint: gpu.fingerprint(),
            characteristics: report.predictor.counters.characteristics.clone(),
            feature_names: report.predictor.model.feature_names.clone(),
            selected: report.predictor.model.selected.clone(),
            sweep: SweepMeta {
                sizes: sizes.to_vec(),
                quick,
                n_runs: report.dataset.len(),
                n_features: report.dataset.n_features(),
                created_unix,
            },
            predictor: report.predictor.clone(),
            bottlenecks: report.bottlenecks.clone(),
        }
    }

    /// Writes the bundle as JSON.
    pub fn save(&self, path: &Path) -> Result<(), BundleError> {
        let file = std::fs::File::create(path)?;
        serde_json::to_writer(std::io::BufWriter::new(file), self)
            .map_err(|e| BundleError::Format(format!("serialize bundle: {e}")))
    }

    /// Loads a bundle, rejecting non-bundle files and mismatched schema
    /// versions with targeted errors.
    pub fn load(path: &Path) -> Result<ModelBundle, BundleError> {
        let text = std::fs::read_to_string(path)?;
        let probe: VersionProbe = serde_json::from_str(&text)
            .map_err(|e| BundleError::Format(format!("{}: not valid JSON: {e}", path.display())))?;
        match probe.schema_version {
            None => {
                return Err(BundleError::Format(format!(
                    "{}: no schema_version field — not a model bundle (perhaps a raw \
                     predictor JSON from an older `train`?)",
                    path.display()
                )))
            }
            Some(v) if v != SCHEMA_VERSION => {
                return Err(BundleError::Version {
                    found: v,
                    expected: SCHEMA_VERSION,
                })
            }
            Some(_) => {}
        }
        serde_json::from_str(&text)
            .map_err(|e| BundleError::Format(format!("{}: decode bundle: {e}", path.display())))
    }

    /// A stable content identifier: a hash of the serialized bundle. Used
    /// to key the server's prediction cache so a reloaded (different)
    /// bundle can never serve another bundle's cached answers.
    pub fn content_id(&self) -> u64 {
        let json = serde_json::to_string(self).unwrap_or_default();
        let mut h = DefaultHasher::new();
        json.hash(&mut h);
        h.finish()
    }

    /// The workload enum this bundle was trained for.
    pub fn workload(&self) -> Option<Workload> {
        Workload::from_name(&self.workload)
    }

    /// Builds the characteristic vector for a query that names the primary
    /// size plus optional secondary characteristics (`threads`, `sweeps`).
    /// Unsupplied secondaries take the workload defaults; a characteristic
    /// with no default is an error.
    pub fn characteristics_for(
        &self,
        size: f64,
        threads: Option<f64>,
        sweeps: Option<f64>,
    ) -> Result<Vec<f64>, String> {
        self.characteristics
            .iter()
            .enumerate()
            .map(|(i, name)| {
                if i == 0 {
                    return Ok(size);
                }
                let supplied = match name.as_str() {
                    "threads" => threads,
                    "sweeps" => sweeps,
                    _ => None,
                };
                supplied
                    .or_else(|| Workload::default_characteristic(name))
                    .ok_or_else(|| format!("characteristic {name} required but not supplied"))
            })
            .collect()
    }

    /// Runs the prediction chain: characteristics → per-counter predictions
    /// → execution time. Identical to the in-memory
    /// [`ProblemScalingPredictor::predict`] (the time comes from the same
    /// call), with the intermediate counter predictions exposed.
    pub fn predict(&self, chars: &[f64]) -> Result<Prediction, String> {
        let predicted_ms = self.predictor.predict(chars).map_err(|e| e.to_string())?;
        let values = self.predictor.counters.predict(chars);
        let counters = self
            .predictor
            .counters
            .models
            .iter()
            .zip(values)
            .map(|(m, v)| (m.counter.clone(), v))
            .collect();
        Ok(Prediction {
            predicted_ms,
            counters,
        })
    }

    /// Runs the prediction chain with explicit counter overrides: the
    /// characteristic vector is assembled by name (workload defaults fill
    /// unsupplied secondaries), each retained counter is predicted as
    /// usual, then any counter named in `overrides` is replaced with the
    /// supplied value before the reduced forest prices the row.
    ///
    /// This is the engine behind the lint what-if estimator: the overrides
    /// are statically derived counters of a hypothetical (baseline or
    /// fixed) kernel, so the difference between two calls prices the fix
    /// in predicted milliseconds. Overridden counters that the reduced
    /// forest did not retain are ignored — they cannot influence the
    /// prediction by construction.
    pub fn predict_ms_with(
        &self,
        chars: &[(String, f64)],
        overrides: &[(String, f64)],
    ) -> Result<f64, String> {
        let char_values: Vec<f64> = self
            .characteristics
            .iter()
            .map(|name| {
                chars
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, v)| *v)
                    .or_else(|| Workload::default_characteristic(name))
                    .ok_or_else(|| format!("characteristic {name} required but not supplied"))
            })
            .collect::<Result<_, _>>()?;
        let mut row = self.predictor.counters.predict(&char_values);
        for (i, m) in self.predictor.counters.models.iter().enumerate() {
            if let Some((_, v)) = overrides.iter().find(|(n, _)| n == &m.counter) {
                row[i] = *v;
            }
        }
        self.predictor
            .model
            .predict_selected(&row)
            .map_err(|e| e.to_string())
    }
}

impl bf_analyze::WhatIfModel for ModelBundle {
    fn predict_ms(
        &self,
        characteristics: &[(String, f64)],
        overrides: &[(String, f64)],
    ) -> Result<f64, String> {
        self.predict_ms_with(characteristics, overrides)
    }
}

/// One answered prediction: the execution time and the intermediate
/// per-counter predictions that fed the reduced forest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Predicted execution time (ms).
    pub predicted_ms: f64,
    /// `(counter name, predicted value)` pairs in retained-feature order.
    pub counters: Vec<(String, f64)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use blackforest::{BlackForest, ModelConfig, Workload};

    fn quick_bundle(seed: u64) -> (ModelBundle, AnalysisReport) {
        let gpu = GpuConfig::gtx580();
        let bf = BlackForest::new(gpu.clone()).with_config(ModelConfig::quick(seed));
        let sizes: Vec<usize> = (2..=14).map(|k| k * 16).collect();
        let report = bf.analyze(Workload::MatMul, &sizes).unwrap();
        let bundle = ModelBundle::from_report(&report, &gpu, &sizes, true);
        (bundle, report)
    }

    #[test]
    fn bundle_round_trips_bit_exact_predictions() {
        let (bundle, report) = quick_bundle(401);
        let dir = std::env::temp_dir().join("bf_serve_bundle_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mm.bundle.json");
        bundle.save(&path).unwrap();
        let back = ModelBundle::load(&path).unwrap();
        assert_eq!(back.schema_version, SCHEMA_VERSION);
        assert_eq!(back.workload, "matrixMul");
        assert_eq!(back.gpu_fingerprint, GpuConfig::gtx580().fingerprint());
        assert_eq!(back.gpu_arch, "fermi");
        for size in [48.0, 120.0, 224.0] {
            let chars = back.characteristics_for(size, None, None).unwrap();
            let p = back.predict(&chars).unwrap();
            let direct = report.predictor.predict(&chars).unwrap();
            assert_eq!(p.predicted_ms.to_bits(), direct.to_bits());
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn loader_rejects_wrong_version_and_non_bundles() {
        let (bundle, _) = quick_bundle(402);
        let dir = std::env::temp_dir().join("bf_serve_bundle_test");
        std::fs::create_dir_all(&dir).unwrap();

        let future = dir.join("future.bundle.json");
        let mut v2 = bundle.clone();
        v2.schema_version = SCHEMA_VERSION + 1;
        v2.save(&future).unwrap();
        match ModelBundle::load(&future) {
            Err(BundleError::Version { found, expected }) => {
                assert_eq!(found, SCHEMA_VERSION + 1);
                assert_eq!(expected, SCHEMA_VERSION);
            }
            other => panic!("expected version error, got {other:?}"),
        }

        let raw = dir.join("raw.json");
        std::fs::write(&raw, "{\"model\": 1}").unwrap();
        assert!(matches!(
            ModelBundle::load(&raw),
            Err(BundleError::Format(_))
        ));

        let garbage = dir.join("garbage.json");
        std::fs::write(&garbage, "{not json").unwrap();
        assert!(matches!(
            ModelBundle::load(&garbage),
            Err(BundleError::Format(_))
        ));

        assert!(matches!(
            ModelBundle::load(&dir.join("does-not-exist.json")),
            Err(BundleError::Io(_))
        ));
        for p in [future, raw, garbage] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn content_id_distinguishes_bundles() {
        let (a, _) = quick_bundle(403);
        let mut b = a.clone();
        assert_eq!(a.content_id(), b.content_id());
        b.gpu_fingerprint ^= 1;
        assert_ne!(a.content_id(), b.content_id());
    }

    #[test]
    fn characteristics_fill_workload_defaults() {
        let (mut bundle, _) = quick_bundle(404);
        bundle.characteristics = vec!["size".into(), "threads".into()];
        assert_eq!(
            bundle.characteristics_for(4096.0, None, None).unwrap(),
            vec![4096.0, 256.0]
        );
        assert_eq!(
            bundle
                .characteristics_for(4096.0, Some(128.0), None)
                .unwrap(),
            vec![4096.0, 128.0]
        );
        bundle.characteristics = vec!["size".into(), "mystery".into()];
        assert!(bundle.characteristics_for(4096.0, None, None).is_err());
    }
}
