//! Shadow-mode replay: primary predictions are re-evaluated against a
//! shadow bundle off the hot path, and the paired results feed a
//! streaming divergence report.
//!
//! The engine is a bounded channel plus one dedicated thread. Submission
//! is `try_send`: when the queue is full the job is *dropped and counted*
//! rather than blocking — shadow mode must never backpressure the primary
//! path (the bench pins this: shadow adds no measurable p99). Divergence
//! is tracked as the relative delta `|shadow − primary| / max(|primary|,
//! 1e-12)` per row, aggregated overall and per workload.

use crate::registry::LoadedModel;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Jobs the shadow queue will hold before dropping new ones.
const SHADOW_QUEUE_CAP: usize = 1024;

/// One primary request replayed against a shadow model.
pub struct ShadowJob {
    /// The shadow model to evaluate.
    pub shadow: Arc<LoadedModel>,
    /// Content id of the primary that answered the live request.
    pub primary_id: u64,
    /// Workload name of the primary (the report's breakdown key).
    pub workload: String,
    /// The canonicalized characteristic rows of the request.
    pub rows: Vec<Vec<f64>>,
    /// The primary's predicted times, one per row.
    pub primary_ms: Vec<f64>,
}

/// Divergence aggregate for one workload.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WorkloadDelta {
    /// Paired rows compared.
    pub rows: u64,
    /// Mean relative delta over those rows.
    pub mean_rel_delta: f64,
    /// Largest relative delta seen.
    pub max_rel_delta: f64,
    /// Sum of relative deltas (the mean's numerator; kept so the report
    /// stays exactly mergeable).
    pub sum_rel_delta: f64,
}

/// The streaming divergence report served at `/v1/models/shadow/report`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ShadowReport {
    /// Requests replayed against a shadow.
    pub requests: u64,
    /// Prediction rows compared.
    pub rows: u64,
    /// Jobs dropped because the shadow queue was full.
    pub dropped: u64,
    /// Rows whose shadow evaluation failed (e.g. schema drift).
    pub errors: u64,
    /// Mean relative delta over every compared row.
    pub mean_rel_delta: f64,
    /// Largest relative delta over every compared row.
    pub max_rel_delta: f64,
    /// Per-workload breakdown, keyed by workload name.
    pub per_workload: BTreeMap<String, WorkloadDelta>,
    /// `primary→shadow` content-id pairs and how many rows each compared.
    pub pairs: BTreeMap<String, u64>,
}

#[derive(Default)]
struct ShadowAccum {
    requests: u64,
    rows: u64,
    errors: u64,
    sum_rel: f64,
    max_rel: f64,
    per_workload: BTreeMap<String, WorkloadDelta>,
    pairs: BTreeMap<String, u64>,
}

impl ShadowAccum {
    /// Folds one evaluated job into the running aggregates.
    fn record(
        &mut self,
        workload: &str,
        pair: String,
        primary_ms: &[f64],
        shadow_ms: &[Result<f64, String>],
    ) {
        self.requests += 1;
        let entry = self.per_workload.entry(workload.to_string()).or_default();
        let mut pair_rows = 0u64;
        for (primary, shadow) in primary_ms.iter().zip(shadow_ms) {
            let shadow = match shadow {
                Ok(v) => *v,
                Err(_) => {
                    self.errors += 1;
                    continue;
                }
            };
            let rel = (shadow - primary).abs() / primary.abs().max(1e-12);
            self.rows += 1;
            pair_rows += 1;
            self.sum_rel += rel;
            self.max_rel = self.max_rel.max(rel);
            entry.rows += 1;
            entry.sum_rel_delta += rel;
            entry.max_rel_delta = entry.max_rel_delta.max(rel);
        }
        *self.pairs.entry(pair).or_insert(0) += pair_rows;
    }

    fn report(&self, dropped: u64) -> ShadowReport {
        let per_workload = self
            .per_workload
            .iter()
            .map(|(k, v)| {
                let mut v = v.clone();
                v.mean_rel_delta = if v.rows > 0 {
                    v.sum_rel_delta / v.rows as f64
                } else {
                    0.0
                };
                (k.clone(), v)
            })
            .collect();
        ShadowReport {
            requests: self.requests,
            rows: self.rows,
            dropped,
            errors: self.errors,
            mean_rel_delta: if self.rows > 0 {
                self.sum_rel / self.rows as f64
            } else {
                0.0
            },
            max_rel_delta: self.max_rel,
            per_workload,
            pairs: self.pairs.clone(),
        }
    }
}

/// The replay engine: a bounded queue and its evaluation thread.
pub(crate) struct ShadowEngine {
    tx: Mutex<Option<SyncSender<ShadowJob>>>,
    dropped: Arc<AtomicU64>,
    accum: Arc<Mutex<ShadowAccum>>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl ShadowEngine {
    /// Spawns the evaluation thread and returns the engine.
    pub(crate) fn start() -> ShadowEngine {
        let (tx, rx) = sync_channel::<ShadowJob>(SHADOW_QUEUE_CAP);
        let accum: Arc<Mutex<ShadowAccum>> = Arc::default();
        let worker_accum = Arc::clone(&accum);
        let handle = std::thread::Builder::new()
            .name("bf-shadow".into())
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    let _span = bf_trace::span!("shadow.replay", rows = job.rows.len());
                    let shadow_ms: Vec<Result<f64, String>> = job
                        .rows
                        .iter()
                        .map(|row| {
                            job.shadow
                                .bundle
                                .predictor
                                .predict(row)
                                .map_err(|e| e.to_string())
                        })
                        .collect();
                    bf_trace::counter!("serve.shadow.replayed");
                    let pair = format!("{:016x}→{}", job.primary_id, job.shadow.id_hex());
                    worker_accum.lock().unwrap().record(
                        &job.workload,
                        pair,
                        &job.primary_ms,
                        &shadow_ms,
                    );
                }
            })
            .expect("spawn shadow thread");
        ShadowEngine {
            tx: Mutex::new(Some(tx)),
            dropped: Arc::new(AtomicU64::new(0)),
            accum,
            handle: Mutex::new(Some(handle)),
        }
    }

    /// Enqueues a job; on a full queue the job is dropped and counted so
    /// the caller (the primary request path) never blocks.
    pub(crate) fn submit(&self, job: ShadowJob) {
        let guard = self.tx.lock().unwrap();
        let Some(tx) = guard.as_ref() else { return };
        match tx.try_send(job) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                bf_trace::counter!("serve.shadow.dropped");
            }
        }
    }

    /// The current streaming report.
    pub(crate) fn report(&self) -> ShadowReport {
        self.accum
            .lock()
            .unwrap()
            .report(self.dropped.load(Ordering::Relaxed))
    }

    /// Prometheus-style exposition (`bf_shadow_*`).
    pub(crate) fn render_metrics(&self) -> String {
        let report = self.report();
        let mut out = String::with_capacity(512);
        out.push_str("# HELP bf_shadow_requests_total Requests replayed against a shadow model.\n");
        out.push_str("# TYPE bf_shadow_requests_total counter\n");
        out.push_str(&format!("bf_shadow_requests_total {}\n", report.requests));
        out.push_str("# TYPE bf_shadow_rows_total counter\n");
        out.push_str(&format!("bf_shadow_rows_total {}\n", report.rows));
        out.push_str("# TYPE bf_shadow_dropped_total counter\n");
        out.push_str(&format!("bf_shadow_dropped_total {}\n", report.dropped));
        out.push_str("# TYPE bf_shadow_errors_total counter\n");
        out.push_str(&format!("bf_shadow_errors_total {}\n", report.errors));
        out.push_str(
            "# HELP bf_shadow_rel_delta Relative divergence of shadow vs primary predictions.\n",
        );
        out.push_str("# TYPE bf_shadow_rel_delta_mean gauge\n");
        out.push_str(&format!(
            "bf_shadow_rel_delta_mean {}\n",
            report.mean_rel_delta
        ));
        out.push_str("# TYPE bf_shadow_rel_delta_max gauge\n");
        out.push_str(&format!(
            "bf_shadow_rel_delta_max {}\n",
            report.max_rel_delta
        ));
        for (workload, delta) in &report.per_workload {
            out.push_str(&format!(
                "bf_shadow_rel_delta_mean{{workload=\"{workload}\"}} {}\n",
                delta.mean_rel_delta
            ));
            out.push_str(&format!(
                "bf_shadow_rel_delta_max{{workload=\"{workload}\"}} {}\n",
                delta.max_rel_delta
            ));
            out.push_str(&format!(
                "bf_shadow_rows_total{{workload=\"{workload}\"}} {}\n",
                delta.rows
            ));
        }
        out
    }
}

impl Drop for ShadowEngine {
    fn drop(&mut self) {
        // Closing the channel ends the thread's recv loop; join so queued
        // jobs are fully folded into the (now unobservable) report.
        *self.tx.lock().unwrap() = None;
        if let Some(handle) = self.handle.lock().unwrap().take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_tracks_mean_max_and_per_workload() {
        // Exercise the math directly with synthetic shadow outcomes; the
        // engine's end-to-end path is covered by the crate's integration
        // tests with real bundles.
        let mut acc = ShadowAccum::default();
        acc.record(
            "reduce1",
            "aaaa→bbbb".into(),
            &[10.0, 100.0],
            &[Ok(11.0), Ok(90.0)],
        );
        let report = acc.report(3);
        assert_eq!(report.requests, 1);
        assert_eq!(report.rows, 2);
        assert_eq!(report.dropped, 3);
        assert_eq!(report.errors, 0);
        // Relative deltas: |11-10|/10 = 0.1 and |90-100|/100 = 0.1.
        assert!((report.mean_rel_delta - 0.1).abs() < 1e-12);
        assert!((report.max_rel_delta - 0.1).abs() < 1e-12);
        let wd = report.per_workload.get("reduce1").expect("workload entry");
        assert_eq!(wd.rows, 2);
        assert!((wd.mean_rel_delta - 0.1).abs() < 1e-12);
        assert_eq!(report.pairs.get("aaaa→bbbb"), Some(&2));

        // Errors count separately and never poison the aggregates.
        acc.record(
            "reduce1",
            "aaaa→bbbb".into(),
            &[5.0],
            &[Err("drift".into())],
        );
        let report = acc.report(3);
        assert_eq!(report.errors, 1);
        assert_eq!(report.rows, 2);
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut acc = ShadowAccum::default();
        acc.record("stencil", "aaaa→bbbb".into(), &[2.0], &[Ok(3.0)]);
        let report = acc.report(0);
        let json = serde_json::to_string(&report).unwrap();
        let back: ShadowReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.rows, report.rows);
        assert_eq!(back.per_workload.len(), 1);
        assert!((back.mean_rel_delta - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_primary_uses_epsilon_floor() {
        let mut acc = ShadowAccum::default();
        acc.record("reduce1", "p→s".into(), &[0.0], &[Ok(0.0)]);
        let report = acc.report(0);
        assert_eq!(report.rows, 1);
        assert_eq!(report.max_rel_delta, 0.0);
    }
}
