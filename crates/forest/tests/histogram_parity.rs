//! Exact-vs-histogram parity: when every feature has at most `max_bins`
//! distinct values, each bin is pure (one value per bin) and the histogram
//! search must reproduce the exact search node for node.

use bf_forest::{ForestParams, RandomForest, SplitStrategy};

/// Integer-valued synthetic data: 3 predictors with bounded cardinality, an
/// integer response so floating-point sums are exact under any accumulation
/// order — parity must then be bit-exact.
fn integer_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let x: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            vec![
                (i % 50) as f64,
                ((i * 7) % 23) as f64,
                ((i * 13) % 11) as f64,
            ]
        })
        .collect();
    let y: Vec<f64> = x.iter().map(|r| 4.0 * r[0] - 3.0 * r[2] + r[1]).collect();
    (x, y)
}

#[test]
fn pure_bins_reproduce_exact_forest_bit_for_bit() {
    let (x, y) = integer_data(150);
    for seed in [1u64, 42, 1234] {
        let base = ForestParams::default().with_trees(30).with_seed(seed);
        let exact =
            RandomForest::fit(&x, &y, &base.with_split_strategy(SplitStrategy::Exact)).unwrap();
        let hist = RandomForest::fit(
            &x,
            &y,
            &base.with_split_strategy(SplitStrategy::Histogram { max_bins: 256 }),
        )
        .unwrap();
        assert_eq!(exact.trees(), hist.trees(), "seed {seed}");
        assert_eq!(exact.oob_mse(), hist.oob_mse(), "seed {seed}");
        assert_eq!(
            exact.permutation_importance().ranking(),
            hist.permutation_importance().ranking(),
            "seed {seed}"
        );
    }
}

#[test]
fn pure_bins_match_exact_at_minimal_bin_count() {
    // max_bins exactly equal to the largest per-feature cardinality is still
    // lossless — the guarantee is "max_bins >= distinct", not "much larger".
    let (x, y) = integer_data(120);
    let max_cardinality = 50;
    let base = ForestParams::default().with_trees(20).with_seed(7);
    let exact = RandomForest::fit(&x, &y, &base.with_split_strategy(SplitStrategy::Exact)).unwrap();
    let hist = RandomForest::fit(
        &x,
        &y,
        &base.with_split_strategy(SplitStrategy::Histogram {
            max_bins: max_cardinality,
        }),
    )
    .unwrap();
    assert_eq!(exact.trees(), hist.trees());
}

#[test]
fn coarse_bins_stay_close_on_continuous_data() {
    // High-cardinality continuous features force genuine quantile binning;
    // the approximation must stay statistically close to the exact fit.
    let n = 400;
    let x: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let t = i as f64;
            vec![t * 0.37 + (t * 0.11).sin(), (t * 1.7).cos() * 10.0]
        })
        .collect();
    let y: Vec<f64> = x.iter().map(|r| 2.0 * r[0] + 0.3 * r[1]).collect();
    let base = ForestParams::default().with_trees(80).with_seed(3);
    let exact = RandomForest::fit(&x, &y, &base.with_split_strategy(SplitStrategy::Exact)).unwrap();
    let hist = RandomForest::fit(
        &x,
        &y,
        &base.with_split_strategy(SplitStrategy::Histogram { max_bins: 64 }),
    )
    .unwrap();
    let (r2e, r2h) = (exact.oob_r_squared(), hist.oob_r_squared());
    assert!(
        (r2e - r2h).abs() < 0.05,
        "exact r2 {r2e} vs histogram r2 {r2h}"
    );
    assert_eq!(
        exact.permutation_importance().ranking()[0],
        hist.permutation_importance().ranking()[0]
    );
}
