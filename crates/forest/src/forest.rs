//! Random forests: bagged ensembles of unpruned CART trees.
//!
//! Construction follows the paper's algorithm verbatim: (1) draw `n_trees`
//! bootstrap samples, (2) grow an unpruned regression tree on each with
//! `mtry` random candidate features per node, (3) predict new data by
//! averaging the trees. Out-of-bag (OOB) samples provide an unbiased error
//! estimate and feed the permutation-importance calculation.

use crate::binned::{BinnedDataset, MAX_BINS_LIMIT};
use crate::importance::VariableImportance;
use crate::tree::{rows_to_columns, RegressionTree, TreeParams};
use crate::{ForestError, Result};
use rand::prelude::*;
use rand::rngs::StdRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// How candidate splits are searched at each tree node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SplitStrategy {
    /// Sort every node's samples on every candidate feature and sweep all
    /// boundaries — the textbook CART search. `O(n log n)` per (node,
    /// feature); exact.
    Exact,
    /// Quantise each feature into at most `max_bins` bins once per fit, then
    /// search splits over per-bin `(count, Σy)` histograms accumulated in one
    /// `O(n)` pass per (node, feature). Identical trees to [`Exact`] whenever
    /// every feature has at most `max_bins` distinct values; a quantile
    /// approximation (and a large speedup) otherwise. See [`crate::binned`].
    Histogram {
        /// Bin-count ceiling per feature, `2..=65536`.
        max_bins: usize,
    },
}

impl Default for SplitStrategy {
    fn default() -> Self {
        SplitStrategy::Histogram { max_bins: 256 }
    }
}

/// Forest hyperparameters. Defaults mirror R's `randomForest` for regression:
/// 500 trees, `mtry = max(p/3, 1)`, minimum node size 5 — plus histogram
/// split search with 256 bins, which reproduces the exact search on the
/// moderate-cardinality data BlackForest trains on.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ForestParams {
    /// Number of trees `n_t`.
    pub n_trees: usize,
    /// Candidate features per split; `None` selects `max(p/3, 1)`.
    pub mtry: Option<usize>,
    /// Minimum samples per terminal node.
    pub min_node_size: usize,
    /// Optional depth cap (default: unbounded, as RF prescribes).
    pub max_depth: usize,
    /// RNG seed for reproducible forests.
    pub seed: u64,
    /// Split-search backend (default: `Histogram { max_bins: 256 }`).
    pub split_strategy: SplitStrategy,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_trees: 500,
            mtry: None,
            min_node_size: 5,
            max_depth: usize::MAX,
            seed: 0xB1AC_F05E,
            split_strategy: SplitStrategy::default(),
        }
    }
}

impl ForestParams {
    /// Returns a copy with the given seed (builder-style convenience).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with the given tree count.
    pub fn with_trees(mut self, n: usize) -> Self {
        self.n_trees = n;
        self
    }

    /// Returns a copy with an explicit `mtry`.
    pub fn with_mtry(mut self, mtry: usize) -> Self {
        self.mtry = Some(mtry);
        self
    }

    /// Returns a copy with the given split-search strategy.
    pub fn with_split_strategy(mut self, strategy: SplitStrategy) -> Self {
        self.split_strategy = strategy;
        self
    }
}

/// A fitted random-forest regressor, retaining the training data (column
/// major) so OOB statistics, importance, and partial dependence can be
/// computed after the fact — the same data the R object keeps around.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForest {
    pub(crate) trees: Vec<RegressionTree>,
    /// For each tree, the sorted list of OOB sample indices.
    pub(crate) oob_indices: Vec<Vec<u32>>,
    /// Column-major copy of the training features.
    pub(crate) columns: Vec<Vec<f64>>,
    /// Training response.
    pub(crate) y: Vec<f64>,
    pub(crate) params: ForestParams,
    pub(crate) n_features: usize,
    /// Seeds used per tree (needed to reproduce importance permutations).
    pub(crate) tree_seeds: Vec<u64>,
}

impl RandomForest {
    /// Fits a forest on row-major observations `x` and response `y`.
    pub fn fit(x: &[Vec<f64>], y: &[f64], params: &ForestParams) -> Result<RandomForest> {
        if x.is_empty() || y.is_empty() {
            return Err(ForestError::BadTrainingData("empty training set".into()));
        }
        if x.len() != y.len() {
            return Err(ForestError::BadTrainingData(format!(
                "{} feature rows but {} responses",
                x.len(),
                y.len()
            )));
        }
        let p = x[0].len();
        if p == 0 {
            return Err(ForestError::BadTrainingData("zero features".into()));
        }
        if x.iter().any(|r| r.len() != p) {
            return Err(ForestError::BadTrainingData("ragged feature rows".into()));
        }
        if params.n_trees == 0 {
            return Err(ForestError::BadParams("n_trees must be positive".into()));
        }
        if params.min_node_size == 0 {
            return Err(ForestError::BadParams(
                "min_node_size must be positive".into(),
            ));
        }
        let fit_span = bf_trace::span!("fit_forest", rows = y.len(), trees = params.n_trees);
        let fit_id = fit_span.id();
        let n = y.len();
        let columns = rows_to_columns(x);
        let mtry = params.mtry.unwrap_or_else(|| (p / 3).max(1)).min(p);
        let tree_params = TreeParams {
            min_node_size: params.min_node_size,
            mtry,
            max_depth: params.max_depth,
        };
        // Histogram strategy: quantise the features ONCE, before the parallel
        // tree loop; every tree shares the read-only binned dataset and only
        // its bootstrap index vector differs.
        let binned = match params.split_strategy {
            SplitStrategy::Exact => None,
            SplitStrategy::Histogram { max_bins } => {
                if !(2..=MAX_BINS_LIMIT).contains(&max_bins) {
                    return Err(ForestError::BadParams(format!(
                        "max_bins must be in 2..={MAX_BINS_LIMIT}, got {max_bins}"
                    )));
                }
                let _bins = bf_trace::span!("build_bins", max_bins = max_bins);
                Some(BinnedDataset::build(&columns, max_bins))
            }
        };
        // Derive one independent seed per tree from the master seed so the
        // parallel build is deterministic regardless of scheduling.
        let mut master = StdRng::seed_from_u64(params.seed);
        let tree_seeds: Vec<u64> = (0..params.n_trees).map(|_| master.random()).collect();

        let built: Vec<(RegressionTree, Vec<u32>)> = tree_seeds
            .par_iter()
            .map(|&seed| {
                bf_trace::with_parent(fit_id, || {
                    let _tree_span = bf_trace::span!("fit_tree");
                    let mut rng = StdRng::seed_from_u64(seed);
                    // Bootstrap sample of size n, with replacement.
                    let mut in_bag = vec![false; n];
                    let mut idx = Vec::with_capacity(n);
                    for _ in 0..n {
                        let i = rng.random_range(0..n);
                        idx.push(i as u32);
                        in_bag[i] = true;
                    }
                    let tree = match &binned {
                        Some(b) => {
                            crate::binned::fit_binned_on_indices(b, y, &idx, &tree_params, &mut rng)
                        }
                        None => RegressionTree::fit_on_indices(
                            &columns,
                            y,
                            &idx,
                            &tree_params,
                            &mut rng,
                        ),
                    };
                    let oob: Vec<u32> = (0..n as u32).filter(|&i| !in_bag[i as usize]).collect();
                    (tree, oob)
                })
            })
            .collect();

        let (trees, oob_indices): (Vec<_>, Vec<_>) = built.into_iter().unzip();
        Ok(RandomForest {
            trees,
            oob_indices,
            columns,
            y: y.to_vec(),
            params: ForestParams {
                mtry: Some(mtry),
                ..*params
            },
            n_features: p,
            tree_seeds,
        })
    }

    /// Predicts the response for one feature row (average over all trees).
    pub fn predict_row(&self, row: &[f64]) -> Result<f64> {
        if row.len() != self.n_features {
            return Err(ForestError::BadQuery {
                expected: self.n_features,
                got: row.len(),
            });
        }
        let sum: f64 = self.trees.iter().map(|t| t.predict_row(row)).sum();
        Ok(sum / self.trees.len() as f64)
    }

    /// Predicts a batch of rows.
    pub fn predict(&self, rows: &[Vec<f64>]) -> Result<Vec<f64>> {
        rows.iter().map(|r| self.predict_row(r)).collect()
    }

    /// Out-of-bag prediction for every training sample. Samples that were
    /// in-bag for every tree (rare beyond ~20 trees) fall back to the full
    /// forest prediction.
    pub fn oob_predictions(&self) -> Vec<f64> {
        let n = self.y.len();
        let mut sums = vec![0.0; n];
        let mut counts = vec![0u32; n];
        for (tree, oob) in self.trees.iter().zip(self.oob_indices.iter()) {
            for &i in oob {
                sums[i as usize] += tree.predict_columns(&self.columns, i as usize, None);
                counts[i as usize] += 1;
            }
        }
        (0..n)
            .map(|i| {
                if counts[i] > 0 {
                    sums[i] / counts[i] as f64
                } else {
                    let row: Vec<f64> = self.columns.iter().map(|c| c[i]).collect();
                    self.predict_row(&row).unwrap_or(0.0)
                }
            })
            .collect()
    }

    /// Out-of-bag mean squared error — the forest's honest generalisation
    /// error estimate (the paper's `MSE_OOB`).
    pub fn oob_mse(&self) -> f64 {
        let preds = self.oob_predictions();
        bf_mse(&preds, &self.y)
    }

    /// Percentage of response variance explained, computed from OOB error as
    /// R's `randomForest` does: `1 - MSE_OOB / var(y)`.
    pub fn oob_r_squared(&self) -> f64 {
        let var = population_variance(&self.y);
        if var == 0.0 {
            return if self.oob_mse() == 0.0 { 1.0 } else { 0.0 };
        }
        1.0 - self.oob_mse() / var
    }

    /// Permutation variable importance (see [`crate::importance`]).
    pub fn permutation_importance(&self) -> VariableImportance {
        VariableImportance::compute(self)
    }

    /// Impurity-based importance: total SSE decrease credited to each
    /// feature, summed over all trees, normalised to sum to 1. A cheap
    /// cross-check on the permutation measure.
    pub fn impurity_importance(&self) -> Vec<f64> {
        let mut total = vec![0.0; self.n_features];
        for tree in &self.trees {
            for (t, &v) in total.iter_mut().zip(tree.impurity_importance.iter()) {
                *t += v;
            }
        }
        let s: f64 = total.iter().sum();
        if s > 0.0 {
            for t in &mut total {
                *t /= s;
            }
        }
        total
    }

    /// Number of trees in the forest.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Borrow the fitted trees (used by parity tests and diagnostics).
    pub fn trees(&self) -> &[RegressionTree] {
        &self.trees
    }

    /// Number of features the forest was trained with.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The effective parameters used in the fit (with `mtry` resolved).
    pub fn params(&self) -> &ForestParams {
        &self.params
    }

    /// Borrow the training response.
    pub fn training_response(&self) -> &[f64] {
        &self.y
    }

    /// Borrow the column-major training features.
    pub fn training_columns(&self) -> &[Vec<f64>] {
        &self.columns
    }
}

pub(crate) fn bf_mse(pred: &[f64], obs: &[f64]) -> f64 {
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter()
        .zip(obs.iter())
        .map(|(p, o)| (p - o) * (p - o))
        .sum::<f64>()
        / pred.len() as f64
}

pub(crate) fn population_variance(y: &[f64]) -> f64 {
    if y.is_empty() {
        return 0.0;
    }
    let m = y.iter().sum::<f64>() / y.len() as f64;
    y.iter().map(|&v| (v - m) * (v - m)).sum::<f64>() / y.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_linear(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = 2*x0 + noiseless; x1 is shuffled noise.
        let x: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![i as f64, ((i * 31) % 17) as f64])
            .collect();
        let y: Vec<f64> = (0..n).map(|i| 2.0 * i as f64).collect();
        (x, y)
    }

    #[test]
    fn fit_predict_recovers_monotone_signal() {
        let (x, y) = make_linear(80);
        let f = RandomForest::fit(
            &x,
            &y,
            &ForestParams::default().with_trees(100).with_seed(1),
        )
        .unwrap();
        let p = f.predict_row(&[40.0, 3.0]).unwrap();
        assert!((p - 80.0).abs() < 12.0, "prediction {p} too far from 80");
    }

    #[test]
    fn oob_r_squared_high_on_learnable_signal() {
        let (x, y) = make_linear(100);
        let f = RandomForest::fit(
            &x,
            &y,
            &ForestParams::default().with_trees(200).with_seed(2),
        )
        .unwrap();
        assert!(f.oob_r_squared() > 0.9, "r2 = {}", f.oob_r_squared());
    }

    #[test]
    fn oob_r_squared_near_zero_on_pure_noise() {
        // Response unrelated to features: OOB R² must not be meaningfully
        // positive.
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..100)
            .map(|i| ((i * 2654435761usize) % 97) as f64)
            .collect();
        let f = RandomForest::fit(
            &x,
            &y,
            &ForestParams::default().with_trees(100).with_seed(3),
        )
        .unwrap();
        assert!(f.oob_r_squared() < 0.3, "r2 = {}", f.oob_r_squared());
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = make_linear(50);
        let p = ForestParams::default().with_trees(50).with_seed(42);
        let f1 = RandomForest::fit(&x, &y, &p).unwrap();
        let f2 = RandomForest::fit(&x, &y, &p).unwrap();
        assert_eq!(
            f1.predict_row(&[25.0, 1.0]).unwrap(),
            f2.predict_row(&[25.0, 1.0]).unwrap()
        );
        assert_eq!(f1.oob_mse(), f2.oob_mse());
    }

    #[test]
    fn different_seeds_differ() {
        let (x, y) = make_linear(50);
        let f1 = RandomForest::fit(&x, &y, &ForestParams::default().with_trees(50).with_seed(1))
            .unwrap();
        let f2 = RandomForest::fit(&x, &y, &ForestParams::default().with_trees(50).with_seed(2))
            .unwrap();
        // Same data, same hyperparameters, different bootstraps: OOB error
        // will almost surely differ.
        assert_ne!(f1.oob_mse(), f2.oob_mse());
    }

    #[test]
    fn forest_beats_or_matches_small_forest_oob() {
        // With a single tree most rows have no OOB tree at all and fall back
        // to (in-bag) full-forest predictions, so its "OOB" error is biased
        // low and the comparison is seed luck. Eight trees leave virtually no
        // uncovered rows while still averaging far fewer bootstraps, and
        // averaging over several seeds removes the remaining bootstrap noise.
        let (x, y) = make_linear(120);
        let mean_oob = |trees: usize| -> f64 {
            [1u64, 5, 9]
                .iter()
                .map(|&seed| {
                    RandomForest::fit(
                        &x,
                        &y,
                        &ForestParams::default().with_trees(trees).with_seed(seed),
                    )
                    .unwrap()
                    .oob_mse()
                })
                .sum::<f64>()
                / 3.0
        };
        assert!(mean_oob(200) <= mean_oob(8) * 1.05);
    }

    #[test]
    fn rejects_empty_and_mismatched_input() {
        assert!(RandomForest::fit(&[], &[], &ForestParams::default()).is_err());
        let x = vec![vec![1.0], vec![2.0]];
        assert!(RandomForest::fit(&x, &[1.0], &ForestParams::default()).is_err());
    }

    #[test]
    fn rejects_ragged_rows() {
        let x = vec![vec![1.0, 2.0], vec![3.0]];
        assert!(RandomForest::fit(&x, &[1.0, 2.0], &ForestParams::default()).is_err());
    }

    #[test]
    fn rejects_zero_trees_or_zero_node_size() {
        let x = vec![vec![1.0], vec![2.0]];
        let y = vec![1.0, 2.0];
        let p = ForestParams {
            n_trees: 0,
            ..ForestParams::default()
        };
        assert!(RandomForest::fit(&x, &y, &p).is_err());
        let p = ForestParams {
            min_node_size: 0,
            ..ForestParams::default()
        };
        assert!(RandomForest::fit(&x, &y, &p).is_err());
    }

    #[test]
    fn predict_rejects_wrong_width() {
        let (x, y) = make_linear(30);
        let f = RandomForest::fit(&x, &y, &ForestParams::default().with_trees(10)).unwrap();
        assert!(matches!(
            f.predict_row(&[1.0]),
            Err(ForestError::BadQuery {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn mtry_defaults_to_third_of_features() {
        let x: Vec<Vec<f64>> = (0..30)
            .map(|i| (0..9).map(|j| ((i * (j + 1)) % 13) as f64).collect())
            .collect();
        let y: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let f = RandomForest::fit(&x, &y, &ForestParams::default().with_trees(5)).unwrap();
        assert_eq!(f.params().mtry, Some(3));
    }

    #[test]
    fn oob_predictions_cover_every_sample() {
        let (x, y) = make_linear(60);
        let f = RandomForest::fit(
            &x,
            &y,
            &ForestParams::default().with_trees(100).with_seed(8),
        )
        .unwrap();
        let preds = f.oob_predictions();
        assert_eq!(preds.len(), 60);
        assert!(preds.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn impurity_importance_sums_to_one_and_ranks_signal_first() {
        let (x, y) = make_linear(100);
        let f = RandomForest::fit(&x, &y, &ForestParams::default().with_trees(60).with_seed(9))
            .unwrap();
        let imp = f.impurity_importance();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > imp[1]);
    }

    #[test]
    fn default_strategy_is_histogram_256() {
        assert_eq!(
            ForestParams::default().split_strategy,
            SplitStrategy::Histogram { max_bins: 256 }
        );
    }

    #[test]
    fn histogram_forest_identical_to_exact_on_low_cardinality_data() {
        // Integer features/response with < 256 distinct values: every bin is
        // pure, so the histogram path must reproduce the exact trees bit for
        // bit (same RNG stream, same thresholds, same leaf means).
        let (x, y) = make_linear(120);
        let base = ForestParams::default().with_trees(40).with_seed(11);
        let exact =
            RandomForest::fit(&x, &y, &base.with_split_strategy(SplitStrategy::Exact)).unwrap();
        let hist = RandomForest::fit(
            &x,
            &y,
            &base.with_split_strategy(SplitStrategy::Histogram { max_bins: 256 }),
        )
        .unwrap();
        assert_eq!(exact.trees(), hist.trees());
        assert_eq!(exact.oob_mse(), hist.oob_mse());
    }

    #[test]
    fn coarse_histogram_still_learns_signal() {
        let (x, y) = make_linear(200);
        let f = RandomForest::fit(
            &x,
            &y,
            &ForestParams::default()
                .with_trees(60)
                .with_seed(12)
                .with_split_strategy(SplitStrategy::Histogram { max_bins: 16 }),
        )
        .unwrap();
        assert!(f.oob_r_squared() > 0.8, "r2 = {}", f.oob_r_squared());
    }

    #[test]
    fn rejects_degenerate_max_bins() {
        let (x, y) = make_linear(30);
        for bad in [0usize, 1, MAX_BINS_LIMIT + 1] {
            let p = ForestParams::default()
                .with_trees(5)
                .with_split_strategy(SplitStrategy::Histogram { max_bins: bad });
            assert!(RandomForest::fit(&x, &y, &p).is_err(), "max_bins = {bad}");
        }
    }

    #[test]
    fn predictions_bounded_by_training_response() {
        let (x, y) = make_linear(60);
        let f = RandomForest::fit(
            &x,
            &y,
            &ForestParams::default().with_trees(50).with_seed(10),
        )
        .unwrap();
        let (lo, hi) = (0.0, 118.0);
        for q in [-50.0, 0.0, 30.0, 59.0, 500.0] {
            let p = f.predict_row(&[q, 0.0]).unwrap();
            assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
        }
    }
}
