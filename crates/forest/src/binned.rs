//! Histogram-binned split search: bin once, train fast.
//!
//! The exact split search ([`crate::split`]) sorts every node's samples on
//! every candidate feature — `O(n log n)` per (node, feature). For forest
//! training that sort dominates wall-clock time. This module implements the
//! standard histogram alternative (LightGBM-style, adapted to random-forest
//! `mtry` sampling):
//!
//! 1. **Bin once per fit.** [`BinnedDataset::build`] quantises each feature
//!    into at most `max_bins` ordered bins (quantile cuts that never split a
//!    run of equal values) and stores one `u16` code per cell, column-major.
//!    The dataset is immutable and shared read-only by every tree/bootstrap.
//! 2. **One O(n) sweep per (node, feature).** A node's histogram — per-bin
//!    `(count, Σy)` — is accumulated in a single pass over the node's
//!    bootstrap indices; the best boundary then falls out of a sweep over at
//!    most `max_bins` bins. No sorting ever happens after the build.
//! 3. **Sibling subtraction.** A node's histogram equals its parent's minus
//!    its sibling's. Because the builder pops the right child first, the
//!    right child's freshly scanned histograms can be subtracted from the
//!    parent's cached ones to hand the left child its histograms for free
//!    (for features all three happened to sample).
//!
//! **Exactness.** Each bin records the global min/max raw value it covers, so
//! a boundary between bins `b` and `b'` uses the threshold
//! `(hi[b] + lo[b'])/2`. When every distinct value has its own bin (i.e. the
//! feature has at most `max_bins` distinct values) this is *precisely* the
//! exact search's midpoint, and the grown tree is identical to the exact
//! path's, node for node — the parity tests in `tests/histogram_parity.rs`
//! assert that. With more distinct values than bins the split points are
//! quantile approximations, which is the usual accuracy/speed trade.

use crate::split::Split;
use crate::tree::{Node, RegressionTree, TreeParams};
use rand::prelude::*;

/// Hard ceiling on `max_bins` (bin codes are stored as `u16`).
pub const MAX_BINS_LIMIT: usize = 1 << 16;

/// Per-feature bin metadata: the global raw-value range each bin covers.
#[derive(Debug, Clone)]
struct FeatureBins {
    /// Minimum raw value landing in each bin.
    lo: Vec<f64>,
    /// Maximum raw value landing in each bin.
    hi: Vec<f64>,
}

/// A quantised copy of the training features, built once per forest fit and
/// shared read-only across all trees.
#[derive(Debug, Clone)]
pub struct BinnedDataset {
    n_rows: usize,
    /// Configured ceiling (actual per-feature bin counts may be lower).
    max_bins: usize,
    /// Column-major bin codes: feature `f` of row `i` is `codes[f*n_rows+i]`.
    codes: Vec<u16>,
    bins: Vec<FeatureBins>,
}

impl BinnedDataset {
    /// Quantises column-major training data into at most `max_bins` bins per
    /// feature. Cuts are at population quantiles but never separate equal
    /// values, so bins cover disjoint, ordered value ranges.
    pub fn build(columns: &[Vec<f64>], max_bins: usize) -> BinnedDataset {
        let max_bins = max_bins.clamp(2, MAX_BINS_LIMIT);
        let n_rows = columns.first().map_or(0, |c| c.len());
        let mut codes = vec![0u16; columns.len() * n_rows];
        let mut bins = Vec::with_capacity(columns.len());
        let mut order: Vec<u32> = Vec::with_capacity(n_rows);

        for (f, col) in columns.iter().enumerate() {
            order.clear();
            order.extend(0..n_rows as u32);
            order.sort_unstable_by(|&a, &b| col[a as usize].partial_cmp(&col[b as usize]).unwrap());

            // Count distinct values first: when they all fit, each gets its
            // own (pure) bin — the lossless case the parity guarantee needs.
            // Only genuinely high-cardinality features fall back to quantile
            // packing.
            let mut distinct = 0usize;
            let mut at = 0;
            while at < n_rows {
                let v = col[order[at] as usize];
                while at < n_rows && col[order[at] as usize] == v {
                    at += 1;
                }
                distinct += 1;
            }
            // Walk runs of equal values, closing a bin whenever it reaches the
            // quantile population target (never mid-run).
            let target = if distinct <= max_bins {
                1
            } else {
                n_rows.div_ceil(max_bins).max(1)
            };
            let mut lo = Vec::new();
            let mut hi = Vec::new();
            let mut bin: usize = 0;
            let mut bin_pop: usize = 0;
            let mut pos = 0;
            while pos < n_rows {
                let value = col[order[pos] as usize];
                let mut run_end = pos + 1;
                while run_end < n_rows && col[order[run_end] as usize] == value {
                    run_end += 1;
                }
                if bin_pop >= target && bin + 1 < max_bins {
                    bin += 1;
                    bin_pop = 0;
                }
                if bin_pop == 0 {
                    lo.push(value);
                    hi.push(value);
                } else {
                    hi[bin] = value;
                }
                for &row in &order[pos..run_end] {
                    codes[f * n_rows + row as usize] = bin as u16;
                }
                bin_pop += run_end - pos;
                pos = run_end;
            }
            bins.push(FeatureBins { lo, hi });
        }
        BinnedDataset {
            n_rows,
            max_bins,
            codes,
            bins,
        }
    }

    /// Number of rows in the binned data.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of features in the binned data.
    pub fn n_features(&self) -> usize {
        self.bins.len()
    }

    /// Number of bins actually used by feature `f`.
    pub fn n_bins(&self, f: usize) -> usize {
        self.bins[f].lo.len()
    }

    /// The bin codes of feature `f` for all rows.
    fn feature_codes(&self, f: usize) -> &[u16] {
        &self.codes[f * self.n_rows..(f + 1) * self.n_rows]
    }
}

/// A node's per-bin statistics on one feature.
#[derive(Debug, Clone, Default)]
struct Hist {
    counts: Vec<u32>,
    sums: Vec<f64>,
}

impl Hist {
    fn reset(&mut self, n_bins: usize) {
        self.counts.clear();
        self.counts.resize(n_bins, 0);
        self.sums.clear();
        self.sums.resize(n_bins, 0.0);
    }

    /// Accumulates `(count, Σy)` per bin in one pass over the node's indices.
    fn scan(&mut self, codes: &[u16], y: &[f64], idx: &[u32]) {
        for &i in idx {
            let b = codes[i as usize] as usize;
            self.counts[b] += 1;
            self.sums[b] += y[i as usize];
        }
    }

    /// In-place `self -= other` (used to turn a parent histogram into the
    /// remaining sibling's).
    fn subtract(&mut self, other: &Hist) {
        for (c, &o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *c -= o;
        }
        for (s, &o) in self.sums.iter_mut().zip(other.sums.iter()) {
            *s -= o;
        }
    }
}

/// One parent's cached histograms, waiting for the right child to subtract
/// itself out so the left child can pick its histograms up for free.
struct SiblingEntry {
    /// The parent's sampled features, parallel to `hists`.
    feats: Vec<u32>,
    /// Parent histograms initially; each becomes the *left child's* histogram
    /// once the right child subtracts itself (`ready[k]` flips to true).
    hists: Vec<Hist>,
    ready: Vec<bool>,
}

/// Arena of pending sibling-subtraction entries. Bounded so pathological
/// (spine-shaped) trees cannot accumulate unbounded cached histograms.
struct SiblingCache {
    entries: Vec<Option<SiblingEntry>>,
    free: Vec<usize>,
    live: usize,
    cap: usize,
}

impl SiblingCache {
    fn new(cap: usize) -> SiblingCache {
        SiblingCache {
            entries: Vec::new(),
            free: Vec::new(),
            live: 0,
            cap,
        }
    }

    /// Stores a parent's histograms; `None` when the arena is at capacity.
    fn create(&mut self, feats: Vec<u32>, hists: Vec<Hist>) -> Option<usize> {
        if self.live >= self.cap {
            return None;
        }
        self.live += 1;
        let n = feats.len();
        let entry = SiblingEntry {
            feats,
            hists,
            ready: vec![false; n],
        };
        match self.free.pop() {
            Some(id) => {
                self.entries[id] = Some(entry);
                Some(id)
            }
            None => {
                self.entries.push(Some(entry));
                Some(self.entries.len() - 1)
            }
        }
    }

    /// Right-child hook: subtracts the right child's scanned histogram from
    /// the parent's cached one, leaving the left child's.
    fn subtract_right(&mut self, id: usize, feature: u32, right: &Hist) {
        if let Some(entry) = self.entries[id].as_mut() {
            if let Some(k) = entry.feats.iter().position(|&f| f == feature) {
                if !entry.ready[k] {
                    entry.hists[k].subtract(right);
                    entry.ready[k] = true;
                }
            }
        }
    }

    /// Left-child hook: the precomputed histogram for `feature`, if the right
    /// child got around to subtracting it.
    fn lookup(&self, id: usize, feature: u32) -> Option<&Hist> {
        let entry = self.entries[id].as_ref()?;
        let k = entry.feats.iter().position(|&f| f == feature)?;
        entry.ready[k].then(|| &entry.hists[k])
    }

    fn release(&mut self, id: usize) {
        if self.entries[id].take().is_some() {
            self.live -= 1;
            self.free.push(id);
        }
    }
}

/// Best boundary of one feature's node histogram.
///
/// Mirrors [`crate::split::best_split_on_feature`] decision for decision:
/// boundaries are swept left to right, `min_leaf` is enforced on both sides,
/// ties keep the earlier boundary (strict `>`), and the same improvement
/// floor guards constant-response nodes. Returns the winning [`Split`] plus
/// the last bin routed left.
fn best_split_on_histogram(
    feature: usize,
    bins: &FeatureBins,
    hist: &Hist,
    n: usize,
    total_sum: f64,
    min_leaf: usize,
) -> Option<(Split, u16)> {
    if n < 2 * min_leaf {
        return None;
    }
    let total_n = n as f64;
    let parent_score = total_sum * total_sum / total_n;
    let mut left_n = 0usize;
    let mut left_sum = 0.0f64;
    let mut prev_occupied: Option<usize> = None;
    let mut best: Option<(Split, u16)> = None;
    for b in 0..hist.counts.len() {
        if hist.counts[b] == 0 {
            continue;
        }
        if let Some(pb) = prev_occupied {
            if left_n >= min_leaf && n - left_n >= min_leaf {
                let right_sum = total_sum - left_sum;
                let right_n = total_n - left_n as f64;
                let score = left_sum * left_sum / left_n as f64 + right_sum * right_sum / right_n;
                let improvement = score - parent_score;
                if best
                    .as_ref()
                    .is_none_or(|(s, _)| improvement > s.improvement)
                {
                    best = Some((
                        Split {
                            feature,
                            // Midpoint between the last value left and the
                            // first value right — for pure bins exactly the
                            // exact search's CART midpoint.
                            threshold: 0.5 * (bins.hi[pb] + bins.lo[b]),
                            improvement,
                            left_count: left_n,
                        },
                        pb as u16,
                    ));
                }
            }
        }
        left_n += hist.counts[b] as usize;
        left_sum += hist.sums[b];
        prev_occupied = Some(b);
    }
    best.filter(|(s, _)| s.improvement > 1e-12 * (1.0 + parent_score.abs()))
}

/// Partitions `idx` so rows with `code <= split_bin` come first; returns the
/// boundary. Same two-pointer walk as [`crate::split::partition_indices`], so
/// the resulting index order (and hence every downstream floating-point sum)
/// is identical to the exact path's.
fn partition_codes(codes: &[u16], split_bin: u16, idx: &mut [u32]) -> usize {
    let mut lo = 0usize;
    let mut hi = idx.len();
    while lo < hi {
        if codes[idx[lo] as usize] <= split_bin {
            lo += 1;
        } else {
            hi -= 1;
            idx.swap(lo, hi);
        }
    }
    lo
}

/// Work item for the binned builder. `start..end` is this node's range of the
/// shared index buffer; `use_cache`/`fill_cache` wire the sibling trick.
struct BinnedBuildItem {
    start: usize,
    end: usize,
    depth: usize,
    slot: usize,
    /// Left child: sibling-cache entry holding precomputed histograms.
    use_cache: Option<usize>,
    /// Right child: entry to subtract freshly scanned histograms into.
    fill_cache: Option<usize>,
}

/// Grows one regression tree over binned data. Control flow — node pop
/// order, RNG consumption, tie-breaking, stopping rules — is kept in
/// lock-step with [`RegressionTree::fit_on_indices`] so that identical trees
/// come out whenever the binning is lossless.
pub(crate) fn fit_binned_on_indices(
    binned: &BinnedDataset,
    y: &[f64],
    idx: &[u32],
    params: &TreeParams,
    rng: &mut impl Rng,
) -> RegressionTree {
    let n_features = binned.n_features();
    let mtry = params.mtry.min(n_features).max(1);
    let mut nodes: Vec<Node> = Vec::new();
    let mut impurity = vec![0.0; n_features];
    let mut indices: Vec<u32> = idx.to_vec();
    let mut feature_pool: Vec<usize> = (0..n_features).collect();

    // Reusable per-node histogram slots (one per mtry candidate) plus the
    // bounded sibling arena: all allocation happens up front, not per node.
    let mut histset: Vec<Hist> = (0..mtry).map(|_| Hist::default()).collect();
    let mut cache = SiblingCache::new(64);
    // Subtraction beats a rescan only when the node dwarfs its bin count.
    let cache_min_rows = 2 * binned.max_bins;

    nodes.push(Node::Leaf {
        value: 0.0,
        count: 0,
    }); // placeholder root
    let mut stack = vec![BinnedBuildItem {
        start: 0,
        end: indices.len(),
        depth: 0,
        slot: 0,
        use_cache: None,
        fill_cache: None,
    }];

    while let Some(item) = stack.pop() {
        let node_idx = &indices[item.start..item.end];
        let n = node_idx.len();
        let mean = if n == 0 {
            0.0
        } else {
            node_idx.iter().map(|&i| y[i as usize]).sum::<f64>() / n as f64
        };

        let can_split = n >= 2 * params.min_node_size && item.depth < params.max_depth;
        let mut chosen: Option<(Split, u16)> = None;
        if can_split {
            // Identical partial Fisher-Yates draw to the exact path, so both
            // paths consume the same RNG stream at the same nodes.
            for k in 0..mtry {
                let pick = rng.random_range(k..n_features);
                feature_pool.swap(k, pick);
            }
            let total_sum: f64 = node_idx.iter().map(|&i| y[i as usize]).sum();
            for (k, &f) in feature_pool[..mtry].iter().enumerate() {
                let codes = binned.feature_codes(f);
                let cached = item
                    .use_cache
                    .and_then(|id| cache.lookup(id, f as u32))
                    .cloned();
                match cached {
                    Some(h) => histset[k] = h,
                    None => {
                        histset[k].reset(binned.n_bins(f));
                        histset[k].scan(codes, y, node_idx);
                        if let Some(id) = item.fill_cache {
                            cache.subtract_right(id, f as u32, &histset[k]);
                        }
                    }
                }
                if let Some(found) = best_split_on_histogram(
                    f,
                    &binned.bins[f],
                    &histset[k],
                    n,
                    total_sum,
                    params.min_node_size,
                ) {
                    if chosen
                        .as_ref()
                        .is_none_or(|(c, _)| found.0.improvement > c.improvement)
                    {
                        chosen = Some(found);
                    }
                }
            }
        }

        match chosen {
            None => {
                nodes[item.slot] = Node::Leaf {
                    value: mean,
                    count: n as u32,
                };
            }
            Some((split, split_bin)) => {
                impurity[split.feature] += split.improvement;
                let boundary = item.start
                    + partition_codes(
                        binned.feature_codes(split.feature),
                        split_bin,
                        &mut indices[item.start..item.end],
                    );
                debug_assert!(boundary > item.start && boundary < item.end);
                let left_slot = nodes.len();
                let right_slot = nodes.len() + 1;
                nodes.push(Node::Leaf {
                    value: 0.0,
                    count: 0,
                });
                nodes.push(Node::Leaf {
                    value: 0.0,
                    count: 0,
                });
                nodes[item.slot] = Node::Internal {
                    feature: split.feature as u32,
                    threshold: split.threshold,
                    left: left_slot as u32,
                    right: right_slot as u32,
                };
                // Park this node's histograms for its children: the right
                // child (popped next) subtracts itself out, the left child
                // then reads its histograms without touching the rows.
                let child_entry = if n >= cache_min_rows {
                    let feats: Vec<u32> = feature_pool[..mtry].iter().map(|&f| f as u32).collect();
                    let hists: Vec<Hist> = histset[..mtry].to_vec();
                    cache.create(feats, hists)
                } else {
                    None
                };
                stack.push(BinnedBuildItem {
                    start: item.start,
                    end: boundary,
                    depth: item.depth + 1,
                    slot: left_slot,
                    use_cache: child_entry,
                    fill_cache: None,
                });
                stack.push(BinnedBuildItem {
                    start: boundary,
                    end: item.end,
                    depth: item.depth + 1,
                    slot: right_slot,
                    use_cache: None,
                    fill_cache: child_entry,
                });
            }
        }
        if let Some(id) = item.use_cache {
            cache.release(id);
        }
    }

    RegressionTree::from_parts(nodes, n_features, impurity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    fn columns(data: &[&[f64]]) -> Vec<Vec<f64>> {
        data.iter().map(|c| c.to_vec()).collect()
    }

    #[test]
    fn pure_bins_when_distinct_fits() {
        let cols = columns(&[&[3.0, 1.0, 2.0, 1.0, 3.0, 2.0]]);
        let b = BinnedDataset::build(&cols, 256);
        assert_eq!(b.n_bins(0), 3);
        assert_eq!(b.feature_codes(0), &[2, 0, 1, 0, 2, 1]);
        // Pure bins: lo == hi == the distinct value.
        assert_eq!(b.bins[0].lo, vec![1.0, 2.0, 3.0]);
        assert_eq!(b.bins[0].hi, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn quantile_bins_cap_bin_count_and_keep_runs_together() {
        let col: Vec<f64> = (0..100).map(|i| (i % 50) as f64).collect();
        let b = BinnedDataset::build(std::slice::from_ref(&col), 8);
        assert!(b.n_bins(0) <= 8);
        // Equal raw values always share a bin.
        for i in 0..100 {
            for j in 0..100 {
                if col[i] == col[j] {
                    assert_eq!(b.feature_codes(0)[i], b.feature_codes(0)[j]);
                }
            }
        }
        // Codes are monotone in the raw value.
        for i in 0..100 {
            for j in 0..100 {
                if col[i] < col[j] {
                    assert!(b.feature_codes(0)[i] <= b.feature_codes(0)[j]);
                }
            }
        }
    }

    #[test]
    fn bin_ranges_are_disjoint_and_ordered() {
        let col: Vec<f64> = (0..1000).map(|i| ((i * 37) % 91) as f64 * 0.5).collect();
        let b = BinnedDataset::build(&[col], 16);
        let fb = &b.bins[0];
        for k in 0..b.n_bins(0) {
            assert!(fb.lo[k] <= fb.hi[k]);
            if k + 1 < b.n_bins(0) {
                assert!(fb.hi[k] < fb.lo[k + 1]);
            }
        }
    }

    #[test]
    fn histogram_split_matches_exact_on_step() {
        // Same fixture as split.rs's finds_obvious_split.
        let values: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = values
            .iter()
            .map(|&v| if v < 4.5 { 0.0 } else { 10.0 })
            .collect();
        let idx: Vec<u32> = (0..10).collect();
        let b = BinnedDataset::build(&[values], 256);
        let mut h = Hist::default();
        h.reset(b.n_bins(0));
        h.scan(b.feature_codes(0), &y, &idx);
        let total: f64 = y.iter().sum();
        let (s, split_bin) = best_split_on_histogram(0, &b.bins[0], &h, 10, total, 1).unwrap();
        assert!((s.threshold - 4.5).abs() < 1e-12);
        assert_eq!(s.left_count, 5);
        assert_eq!(split_bin, 4);
    }

    #[test]
    fn constant_feature_or_response_yields_no_split() {
        let idx: Vec<u32> = (0..8).collect();
        let constant = BinnedDataset::build(&[vec![3.0; 8]], 256);
        let y: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let mut h = Hist::default();
        h.reset(constant.n_bins(0));
        h.scan(constant.feature_codes(0), &y, &idx);
        assert!(best_split_on_histogram(0, &constant.bins[0], &h, 8, y.iter().sum(), 1).is_none());

        let varying = BinnedDataset::build(&[(0..8).map(|i| i as f64).collect()], 256);
        let flat = vec![5.0; 8];
        let mut h = Hist::default();
        h.reset(varying.n_bins(0));
        h.scan(varying.feature_codes(0), &flat, &idx);
        assert!(best_split_on_histogram(0, &varying.bins[0], &h, 8, 40.0, 1).is_none());
    }

    #[test]
    fn subtraction_recovers_left_histogram_exactly() {
        let col: Vec<f64> = (0..64).map(|i| (i % 16) as f64).collect();
        let y: Vec<f64> = (0..64).map(|i| (i * 3 % 7) as f64).collect();
        let b = BinnedDataset::build(&[col], 256);
        let codes = b.feature_codes(0);
        let parent_idx: Vec<u32> = (0..64).collect();
        let (left_idx, right_idx): (Vec<u32>, Vec<u32>) =
            parent_idx.iter().partition(|&&i| codes[i as usize] <= 7);
        let mut parent = Hist::default();
        parent.reset(b.n_bins(0));
        parent.scan(codes, &y, &parent_idx);
        let mut right = Hist::default();
        right.reset(b.n_bins(0));
        right.scan(codes, &y, &right_idx);
        let mut left_direct = Hist::default();
        left_direct.reset(b.n_bins(0));
        left_direct.scan(codes, &y, &left_idx);
        parent.subtract(&right);
        assert_eq!(parent.counts, left_direct.counts);
        // Integer-valued y: sums subtract exactly.
        assert_eq!(parent.sums, left_direct.sums);
    }

    #[test]
    fn sibling_cache_caps_live_entries() {
        let mut cache = SiblingCache::new(2);
        let mk = || (vec![0u32], vec![Hist::default()]);
        let (f1, h1) = mk();
        let a = cache.create(f1, h1).unwrap();
        let (f2, h2) = mk();
        let _b = cache.create(f2, h2).unwrap();
        let (f3, h3) = mk();
        assert!(cache.create(f3, h3).is_none());
        cache.release(a);
        let (f4, h4) = mk();
        assert!(cache.create(f4, h4).is_some());
    }

    #[test]
    fn binned_tree_learns_step_function() {
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..40).map(|i| if i < 20 { 1.0 } else { 9.0 }).collect();
        let cols = crate::tree::rows_to_columns(&x);
        let binned = BinnedDataset::build(&cols, 256);
        let idx: Vec<u32> = (0..40).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let t = fit_binned_on_indices(&binned, &y, &idx, &TreeParams::default(), &mut rng);
        assert!((t.predict_row(&[3.0]) - 1.0).abs() < 1e-9);
        assert!((t.predict_row(&[33.0]) - 9.0).abs() < 1e-9);
    }

    #[test]
    fn binned_tree_identical_to_exact_when_bins_are_pure() {
        // Integer-valued features and response: sums are exact under any
        // accumulation order, so the two paths must agree bit for bit.
        let x: Vec<Vec<f64>> = (0..120)
            .map(|i| vec![(i % 40) as f64, ((i * 13) % 23) as f64, (i / 10) as f64])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 3.0 * r[0] - 2.0 * r[2]).collect();
        let cols = crate::tree::rows_to_columns(&x);
        let binned = BinnedDataset::build(&cols, 256);
        let idx: Vec<u32> = (0..120).collect();
        let params = TreeParams {
            mtry: 2,
            ..TreeParams::default()
        };
        let mut rng_a = StdRng::seed_from_u64(77);
        let mut rng_b = StdRng::seed_from_u64(77);
        let exact = RegressionTree::fit_on_indices(&cols, &y, &idx, &params, &mut rng_a);
        let binned_tree = fit_binned_on_indices(&binned, &y, &idx, &params, &mut rng_b);
        assert_eq!(exact, binned_tree);
    }
}
