//! Level-order flat tree layout for batched prediction.
//!
//! [`RegressionTree`]'s arena stores children wherever the depth-first
//! builder happened to push them, and every node is an enum that must be
//! matched per step. That is fine for one row at a time but leaves easy
//! throughput on the table when many rows traverse the same forest: the
//! branch on the node kind and the pointer-chasing through `left`/`right`
//! dominate, and each tree's nodes are revisited once per row in an order
//! that thrashes the cache.
//!
//! [`FlatForest`] recompiles each fitted tree once into a structure-of-arrays
//! layout in **level order** (breadth-first), with the two children of every
//! internal node adjacent:
//!
//! * `feature[i]` — splitting variable, or [`LEAF`] for terminals;
//! * `threshold[i]` — split point, or the leaf value for terminals;
//! * `left[i]` — index of the left child; the right child is `left[i] + 1`.
//!
//! Traversal needs no enum match and no `right` load: `next = left +
//! (value goes right)`. Prediction then runs **one pass per tree over the
//! whole batch**, so a tree's (compact, contiguous) arrays stay hot across
//! all rows before the next tree is touched.
//!
//! The routing predicate is written `!(x <= threshold)` — not `x > threshold`
//! — so NaN inputs take the same (right) branch the arena walker's `if x <=
//! threshold { left } else { right }` takes, and the accumulation loop adds
//! tree values in exactly the order [`RandomForest::predict_row`] sums them.
//! Batched predictions are therefore **bit-identical** to row-by-row
//! predictions, which the tests in this module and the serving stack's
//! equality suite pin.

use crate::forest::RandomForest;
use crate::tree::{Node, RegressionTree};
use crate::{ForestError, Result};
use std::collections::VecDeque;

/// Sentinel in `feature[]` marking a terminal node.
pub const LEAF: u32 = u32::MAX;

/// One tree in structure-of-arrays, level-order form.
#[derive(Debug, Clone)]
struct FlatTree {
    /// Splitting variable per node; [`LEAF`] for terminals.
    feature: Vec<u32>,
    /// Split point per internal node; leaf value for terminals.
    threshold: Vec<f64>,
    /// Left-child index per internal node (right child is `left + 1`);
    /// unused (0) for terminals.
    left: Vec<u32>,
}

impl FlatTree {
    /// Recompiles an arena tree into level order.
    fn compile(tree: &RegressionTree) -> FlatTree {
        let nodes = tree.nodes();
        let mut feature = Vec::with_capacity(nodes.len());
        let mut threshold = Vec::with_capacity(nodes.len());
        let mut left = Vec::with_capacity(nodes.len());

        // Breadth-first walk over the arena. Slots are assigned in pop
        // order; each internal node reserves the next two consecutive slots
        // for its children before enqueueing them, so sibling adjacency
        // holds by construction.
        let mut queue: VecDeque<usize> = VecDeque::with_capacity(nodes.len());
        queue.push_back(0);
        let mut next_slot: u32 = 1;
        while let Some(at) = queue.pop_front() {
            match &nodes[at] {
                Node::Leaf { value, .. } => {
                    feature.push(LEAF);
                    threshold.push(*value);
                    left.push(0);
                }
                Node::Internal {
                    feature: f,
                    threshold: t,
                    left: l,
                    right: r,
                } => {
                    feature.push(*f);
                    threshold.push(*t);
                    left.push(next_slot);
                    next_slot += 2;
                    queue.push_back(*l as usize);
                    queue.push_back(*r as usize);
                }
            }
        }
        FlatTree {
            feature,
            threshold,
            left,
        }
    }

    /// Walks one row to its leaf value.
    #[inline]
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must route right
    fn predict_row(&self, row: &[f64]) -> f64 {
        let mut at = 0usize;
        loop {
            let f = self.feature[at];
            if f == LEAF {
                return self.threshold[at];
            }
            // `!(x <= t)` — not `x > t` — so NaN routes right, exactly as
            // the arena walker's if/else does.
            let go_right = !(row[f as usize] <= self.threshold[at]);
            at = self.left[at] as usize + go_right as usize;
        }
    }
}

/// A forest recompiled for batched prediction.
///
/// Build once per fitted forest (cheap: one breadth-first pass over each
/// tree) and reuse across calls; the serving stack compiles the bundle's
/// reduced forest at startup.
#[derive(Debug, Clone)]
pub struct FlatForest {
    trees: Vec<FlatTree>,
    n_features: usize,
}

impl FlatForest {
    /// Recompiles every tree of a fitted forest into level order.
    pub fn from_forest(forest: &RandomForest) -> FlatForest {
        FlatForest {
            trees: forest.trees().iter().map(FlatTree::compile).collect(),
            n_features: forest.n_features(),
        }
    }

    /// Number of features the source forest was trained with.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Touches every node of every compiled tree in one linear pass and
    /// returns a checksum of the visited layout. The model registry runs
    /// this before publishing a freshly loaded bundle, so the compiled
    /// arrays are faulted into memory (and the checksum recorded as proof
    /// a warm pass happened) before the first live request can reach the
    /// model — a hot swap never pays first-touch cost on the serving path.
    pub fn warm(&self) -> u64 {
        let mut acc: u64 = 0xcbf2_9ce4_8422_2325; // FNV offset basis
        for tree in &self.trees {
            for i in 0..tree.feature.len() {
                acc = acc
                    .wrapping_mul(0x0100_0000_01b3)
                    .wrapping_add(u64::from(tree.feature[i]))
                    .wrapping_add(tree.threshold[i].to_bits())
                    .wrapping_add(u64::from(tree.left[i]));
            }
        }
        acc
    }

    /// Predicts one row — identical result (and bit pattern) to
    /// [`RandomForest::predict_row`].
    pub fn predict_row(&self, row: &[f64]) -> Result<f64> {
        if row.len() != self.n_features {
            return Err(ForestError::BadQuery {
                expected: self.n_features,
                got: row.len(),
            });
        }
        let sum: f64 = self.trees.iter().map(|t| t.predict_row(row)).sum();
        Ok(sum / self.trees.len() as f64)
    }

    /// Predicts a batch of rows with one pass per tree over the whole batch.
    ///
    /// Accumulation order per row matches [`RandomForest::predict_row`]
    /// exactly (tree 0, tree 1, …, divide last), so results are
    /// bit-identical to calling `predict_row` on each row.
    pub fn predict_batch(&self, rows: &[Vec<f64>]) -> Result<Vec<f64>> {
        for row in rows {
            if row.len() != self.n_features {
                return Err(ForestError::BadQuery {
                    expected: self.n_features,
                    got: row.len(),
                });
            }
        }
        let mut acc = vec![0.0f64; rows.len()];
        for tree in &self.trees {
            for (row, a) in rows.iter().zip(acc.iter_mut()) {
                *a += tree.predict_row(row);
            }
        }
        let n = self.trees.len() as f64;
        for a in &mut acc {
            *a /= n;
        }
        Ok(acc)
    }
}

impl RandomForest {
    /// Batched prediction through the level-order layout: recompiles the
    /// forest (one breadth-first pass) and runs one pass per tree over the
    /// whole batch. Bit-identical to [`RandomForest::predict`].
    ///
    /// Callers that predict repeatedly should build a [`FlatForest`] once
    /// via [`FlatForest::from_forest`] and reuse it.
    pub fn predict_batch(&self, rows: &[Vec<f64>]) -> Result<Vec<f64>> {
        FlatForest::from_forest(self).predict_batch(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::ForestParams;

    fn training_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        // Two informative features plus one noisy one; non-trivial trees.
        let x: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                vec![
                    i as f64,
                    ((i * 31) % 17) as f64,
                    ((i * 7) % 5) as f64 * 0.25,
                ]
            })
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 2.0 * r[0] + 3.0 * r[1]).collect();
        (x, y)
    }

    fn query_grid() -> Vec<Vec<f64>> {
        // Interior, boundary, and extrapolated points.
        let mut q = Vec::new();
        for i in 0..40 {
            q.push(vec![
                i as f64 * 3.7 - 20.0,
                (i % 19) as f64,
                (i % 3) as f64 * 0.5,
            ]);
        }
        q.push(vec![-1e9, 0.0, 0.0]);
        q.push(vec![1e9, 1e9, 1e9]);
        q
    }

    #[test]
    fn flat_predictions_bit_identical_to_arena_per_row() {
        let (x, y) = training_data(90);
        let f = RandomForest::fit(
            &x,
            &y,
            &ForestParams::default().with_trees(60).with_seed(21),
        )
        .unwrap();
        let flat = FlatForest::from_forest(&f);
        for q in query_grid() {
            let arena = f.predict_row(&q).unwrap();
            let level = flat.predict_row(&q).unwrap();
            assert_eq!(arena.to_bits(), level.to_bits(), "row {q:?}");
        }
    }

    #[test]
    fn predict_batch_bit_identical_to_row_by_row_predict() {
        let (x, y) = training_data(120);
        let f = RandomForest::fit(
            &x,
            &y,
            &ForestParams::default().with_trees(80).with_seed(22),
        )
        .unwrap();
        let queries = query_grid();
        let one_by_one = f.predict(&queries).unwrap();
        let batched = f.predict_batch(&queries).unwrap();
        assert_eq!(one_by_one.len(), batched.len());
        for (i, (a, b)) in one_by_one.iter().zip(batched.iter()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "row {i}");
        }
    }

    #[test]
    fn nan_rows_route_identically() {
        let (x, y) = training_data(60);
        let f = RandomForest::fit(
            &x,
            &y,
            &ForestParams::default().with_trees(30).with_seed(23),
        )
        .unwrap();
        let q = vec![vec![f64::NAN, 5.0, 0.5], vec![30.0, f64::NAN, f64::NAN]];
        let arena: Vec<f64> = q.iter().map(|r| f.predict_row(r).unwrap()).collect();
        let batched = f.predict_batch(&q).unwrap();
        for (a, b) in arena.iter().zip(batched.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn batch_rejects_wrong_width_rows() {
        let (x, y) = training_data(40);
        let f = RandomForest::fit(
            &x,
            &y,
            &ForestParams::default().with_trees(10).with_seed(24),
        )
        .unwrap();
        let err = f
            .predict_batch(&[vec![1.0, 2.0, 3.0], vec![1.0]])
            .unwrap_err();
        assert!(matches!(
            err,
            ForestError::BadQuery {
                expected: 3,
                got: 1
            }
        ));
    }

    #[test]
    fn empty_batch_is_empty() {
        let (x, y) = training_data(40);
        let f = RandomForest::fit(
            &x,
            &y,
            &ForestParams::default().with_trees(10).with_seed(25),
        )
        .unwrap();
        assert_eq!(f.predict_batch(&[]).unwrap(), Vec::<f64>::new());
    }

    #[test]
    fn warm_checksum_is_deterministic_and_layout_sensitive() {
        let (x, y) = training_data(60);
        let f = RandomForest::fit(
            &x,
            &y,
            &ForestParams::default().with_trees(12).with_seed(27),
        )
        .unwrap();
        let flat = FlatForest::from_forest(&f);
        let a = flat.warm();
        let b = flat.warm();
        assert_eq!(a, b, "warm must be a pure function of the layout");
        assert_eq!(FlatForest::from_forest(&f).warm(), a);
        // A different forest yields a different layout checksum.
        let g = RandomForest::fit(
            &x,
            &y,
            &ForestParams::default().with_trees(12).with_seed(28),
        )
        .unwrap();
        assert_ne!(FlatForest::from_forest(&g).warm(), a);
    }

    #[test]
    fn compile_preserves_node_counts_and_sibling_adjacency() {
        let (x, y) = training_data(80);
        let f = RandomForest::fit(
            &x,
            &y,
            &ForestParams::default().with_trees(20).with_seed(26),
        )
        .unwrap();
        let flat = FlatForest::from_forest(&f);
        assert_eq!(flat.n_trees(), f.n_trees());
        assert_eq!(flat.n_features(), f.n_features());
        for (flat_tree, arena_tree) in flat.trees.iter().zip(f.trees().iter()) {
            assert_eq!(flat_tree.feature.len(), arena_tree.node_count());
            let leaves = flat_tree.feature.iter().filter(|&&f| f == LEAF).count();
            assert_eq!(leaves, arena_tree.leaf_count());
            // Level order: every internal node's children sit at left,
            // left + 1, and child indices strictly exceed the parent's.
            for (i, &f) in flat_tree.feature.iter().enumerate() {
                if f != LEAF {
                    let l = flat_tree.left[i] as usize;
                    assert!(l > i && l + 1 < flat_tree.feature.len());
                }
            }
        }
    }
}
