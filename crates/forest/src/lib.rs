//! Random-forest regression for BlackForest.
//!
//! This crate is a from-scratch implementation of the modeling core of the
//! paper: Breiman-style random forests of CART regression trees, with the two
//! interpretation tools the methodology leans on —
//!
//! * **permutation variable importance** (increase in out-of-bag MSE when one
//!   predictor's OOB values are shuffled, computed tree-by-tree as the forest
//!   is constructed, exactly as R's `randomForest` does), and
//! * **partial dependence** (the marginal effect of one predictor on the
//!   average prediction).
//!
//! The API mirrors how the paper uses R:
//!
//! ```
//! use bf_forest::{ForestParams, RandomForest};
//!
//! // 100 observations of 3 predictors; y depends only on the first.
//! let x: Vec<Vec<f64>> = (0..100)
//!     .map(|i| vec![i as f64, (i % 7) as f64, ((i * 13) % 5) as f64])
//!     .collect();
//! let y: Vec<f64> = x.iter().map(|r| 3.0 * r[0] + 1.0).collect();
//! let params = ForestParams::default().with_seed(7).with_mtry(2);
//! let forest = RandomForest::fit(&x, &y, &params).unwrap();
//! let importance = forest.permutation_importance();
//! assert_eq!(importance.ranking()[0], 0); // predictor 0 dominates
//! assert!(forest.oob_r_squared() > 0.8);
//! ```

// Index-based loops are the clearer idiom throughout this numeric code
// (parallel arrays, in-place matrix updates), so the pedantic lint is off.
#![allow(clippy::needless_range_loop)]

pub mod binned;
pub mod flat;
pub mod forest;
pub mod importance;
pub mod partial;
pub mod split;
pub mod tree;

pub use binned::BinnedDataset;
pub use flat::FlatForest;
pub use forest::{ForestParams, RandomForest, SplitStrategy};
pub use importance::VariableImportance;
pub use partial::PartialDependence;
pub use tree::RegressionTree;

/// Errors produced while fitting or querying forests.
#[derive(Debug, Clone, PartialEq)]
pub enum ForestError {
    /// The training set was empty or features/response lengths disagree.
    BadTrainingData(String),
    /// A query row had the wrong number of features.
    BadQuery {
        /// Number of features the model was trained with.
        expected: usize,
        /// Number of features supplied.
        got: usize,
    },
    /// Parameters out of range (e.g. zero trees).
    BadParams(String),
}

impl std::fmt::Display for ForestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ForestError::BadTrainingData(msg) => write!(f, "bad training data: {msg}"),
            ForestError::BadQuery { expected, got } => {
                write!(f, "query has {got} features, model expects {expected}")
            }
            ForestError::BadParams(msg) => write!(f, "bad parameters: {msg}"),
        }
    }
}

impl std::error::Error for ForestError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, ForestError>;
