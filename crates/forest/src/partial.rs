//! Partial dependence: the marginal effect of one predictor on the forest's
//! average prediction.
//!
//! For a grid of values `v` of feature `j`, the partial dependence is
//! `PD_j(v) = mean_i f(x_i with x_ij := v)` over the training set. The paper
//! reads these plots qualitatively: a monotonic decrease means the counter is
//! *negatively* correlated with execution time over its range (e.g.
//! `shared_replay_overhead` for `reduce1`, Figure 2b), a monotonic increase a
//! positive correlation (e.g. `gst_request` for `reduce6`, Figure 4b).

use crate::forest::RandomForest;
use serde::{Deserialize, Serialize};

/// A computed partial-dependence curve for one feature.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PartialDependence {
    /// Feature index the curve describes.
    pub feature: usize,
    /// Grid of feature values (ascending).
    pub grid: Vec<f64>,
    /// Average forest prediction at each grid value.
    pub response: Vec<f64>,
}

/// Qualitative trend classification of a partial-dependence curve, used by
/// the bottleneck analyser to decide whether a counter helps or hurts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Trend {
    /// Response increases with the feature over (almost) the whole range.
    Increasing,
    /// Response decreases with the feature over (almost) the whole range.
    Decreasing,
    /// No dominant monotone direction.
    Mixed,
    /// Response is essentially flat.
    Flat,
}

impl PartialDependence {
    /// Computes the curve for `feature` on an evenly spaced grid of
    /// `grid_size` points spanning the feature's training range.
    pub fn compute(forest: &RandomForest, feature: usize, grid_size: usize) -> PartialDependence {
        let col = &forest.training_columns()[feature];
        let lo = col.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = col.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let grid: Vec<f64> = if grid_size <= 1 || lo == hi {
            vec![lo]
        } else {
            (0..grid_size)
                .map(|k| lo + (hi - lo) * k as f64 / (grid_size - 1) as f64)
                .collect()
        };
        let response = grid
            .iter()
            .map(|&v| Self::average_prediction(forest, feature, v))
            .collect();
        PartialDependence {
            feature,
            grid,
            response,
        }
    }

    /// Computes the curve on the feature's observed unique values (closer to
    /// R's `partialPlot` when training points are sparse).
    pub fn compute_at_observed(forest: &RandomForest, feature: usize) -> PartialDependence {
        let mut grid: Vec<f64> = forest.training_columns()[feature].clone();
        grid.sort_by(|a, b| a.partial_cmp(b).unwrap());
        grid.dedup();
        let response = grid
            .iter()
            .map(|&v| Self::average_prediction(forest, feature, v))
            .collect();
        PartialDependence {
            feature,
            grid,
            response,
        }
    }

    fn average_prediction(forest: &RandomForest, feature: usize, value: f64) -> f64 {
        let n = forest.training_response().len();
        let mut total = 0.0;
        for i in 0..n {
            for tree in &forest.trees {
                total += tree.predict_columns(forest.training_columns(), i, Some((feature, value)));
            }
        }
        total / (n as f64 * forest.trees.len() as f64)
    }

    /// Classifies the curve's qualitative trend.
    ///
    /// The curve is `Flat` when its total span is below 1% of the mean
    /// response magnitude; otherwise the balance of up-steps vs down-steps
    /// decides between `Increasing`, `Decreasing`, and `Mixed`.
    pub fn trend(&self) -> Trend {
        if self.response.len() < 2 {
            return Trend::Flat;
        }
        let max = self
            .response
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let min = self.response.iter().cloned().fold(f64::INFINITY, f64::min);
        let scale = self.response.iter().map(|v| v.abs()).sum::<f64>() / self.response.len() as f64;
        if max - min <= 0.01 * scale.max(1e-300) {
            return Trend::Flat;
        }
        let mut up = 0.0f64;
        let mut down = 0.0f64;
        for w in self.response.windows(2) {
            let d = w[1] - w[0];
            if d > 0.0 {
                up += d;
            } else {
                down -= d;
            }
        }
        let total = up + down;
        if up / total >= 0.85 {
            Trend::Increasing
        } else if down / total >= 0.85 {
            Trend::Decreasing
        } else {
            Trend::Mixed
        }
    }

    /// Pearson correlation between grid and response — a scalar summary of
    /// the direction and strength of the marginal relationship.
    pub fn correlation(&self) -> f64 {
        pearson(&self.grid, &self.response)
    }
}

fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / xs.len() as f64;
    let my = ys.iter().sum::<f64>() / ys.len() as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys.iter()) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        0.0
    } else {
        sxy / (sxx.sqrt() * syy.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ForestParams, RandomForest};

    fn fit_monotone(increasing: bool) -> RandomForest {
        let x: Vec<Vec<f64>> = (0..80)
            .map(|i| vec![i as f64, ((i * 13) % 7) as f64])
            .collect();
        let y: Vec<f64> = (0..80)
            .map(|i| {
                if increasing {
                    3.0 * i as f64
                } else {
                    240.0 - 3.0 * i as f64
                }
            })
            .collect();
        RandomForest::fit(
            &x,
            &y,
            &ForestParams::default().with_trees(60).with_seed(21),
        )
        .unwrap()
    }

    #[test]
    fn increasing_signal_yields_increasing_trend() {
        let f = fit_monotone(true);
        let pd = PartialDependence::compute(&f, 0, 20);
        assert_eq!(pd.trend(), Trend::Increasing);
        assert!(pd.correlation() > 0.95);
    }

    #[test]
    fn decreasing_signal_yields_decreasing_trend() {
        let f = fit_monotone(false);
        let pd = PartialDependence::compute(&f, 0, 20);
        assert_eq!(pd.trend(), Trend::Decreasing);
        assert!(pd.correlation() < -0.95);
    }

    #[test]
    fn irrelevant_feature_is_flat_or_weak() {
        let f = fit_monotone(true);
        let pd = PartialDependence::compute(&f, 1, 10);
        // Feature 1 carries no signal; the curve's span should be tiny
        // compared to the response range (0..237).
        let span = pd
            .response
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
            - pd.response.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(span < 30.0, "span {span}");
    }

    #[test]
    fn grid_spans_training_range() {
        let f = fit_monotone(true);
        let pd = PartialDependence::compute(&f, 0, 11);
        assert_eq!(pd.grid.len(), 11);
        assert!((pd.grid[0] - 0.0).abs() < 1e-12);
        assert!((pd.grid[10] - 79.0).abs() < 1e-12);
    }

    #[test]
    fn observed_grid_dedups_and_sorts() {
        let x = vec![
            vec![3.0],
            vec![1.0],
            vec![3.0],
            vec![2.0],
            vec![1.0],
            vec![2.0],
            vec![3.0],
            vec![1.0],
            vec![2.0],
            vec![1.0],
            vec![3.0],
            vec![2.0],
        ];
        let y = vec![3.0, 1.0, 3.0, 2.0, 1.0, 2.0, 3.0, 1.0, 2.0, 1.0, 3.0, 2.0];
        let f = RandomForest::fit(
            &x,
            &y,
            &ForestParams::default()
                .with_trees(30)
                .with_seed(22)
                .with_mtry(1),
        )
        .unwrap();
        let pd = PartialDependence::compute_at_observed(&f, 0);
        assert_eq!(pd.grid, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn constant_feature_gives_single_point_flat() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 7.0]).collect();
        let y: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let f = RandomForest::fit(
            &x,
            &y,
            &ForestParams::default().with_trees(20).with_seed(23),
        )
        .unwrap();
        let pd = PartialDependence::compute(&f, 1, 10);
        assert_eq!(pd.grid.len(), 1);
        assert_eq!(pd.trend(), Trend::Flat);
    }

    #[test]
    fn response_stays_within_training_bounds() {
        let f = fit_monotone(true);
        let pd = PartialDependence::compute(&f, 0, 25);
        for &r in &pd.response {
            assert!((0.0..=237.0 + 1e-9).contains(&r));
        }
    }
}
