//! CART regression trees.
//!
//! Trees are grown exactly as §4.1.1 of the paper describes: greedy recursive
//! binary splitting on the sum-of-squares criterion, stopping at a minimum
//! node size (default 5), **unpruned** — the forest's averaging supplies the
//! variance reduction that pruning would otherwise have to.
//!
//! Storage is a flat arena of nodes (no boxes, no recursion on drop), which
//! keeps trees compact and prediction cache-friendly.

use crate::split::{best_split_on_feature, partition_indices, SplitScratch};
use rand::prelude::*;
use serde::{Deserialize, Serialize};

/// One node in the flat tree arena.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// Internal node: route to `left` if `x[feature] <= threshold`, else to
    /// `left + 1`'s sibling stored in `right`.
    Internal {
        /// Splitting variable.
        feature: u32,
        /// Split point.
        threshold: f64,
        /// Arena index of the left child.
        left: u32,
        /// Arena index of the right child.
        right: u32,
    },
    /// Terminal node carrying the constant prediction (mean of its region).
    Leaf {
        /// Region mean — the `c_m` of the paper's Eq. (1).
        value: f64,
        /// Number of training samples in the region.
        count: u32,
    },
}

/// A fitted regression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    n_features: usize,
    /// Per-feature total sum-of-squares improvement contributed by splits on
    /// that feature (impurity importance).
    pub(crate) impurity_importance: Vec<f64>,
}

/// Tree-growing parameters (shared with the forest).
#[derive(Debug, Clone, Copy)]
pub struct TreeParams {
    /// Minimum number of samples in a terminal node (paper: 5).
    pub min_node_size: usize,
    /// Number of candidate features drawn (without replacement) at each node.
    pub mtry: usize,
    /// Optional depth cap; `usize::MAX` grows full trees as RF requires.
    pub max_depth: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            min_node_size: 5,
            mtry: usize::MAX, // "all features" until the forest overrides it
            max_depth: usize::MAX,
        }
    }
}

/// Work item for the explicit-stack tree builder.
struct BuildItem {
    /// Range into the shared index buffer owned by this node.
    start: usize,
    end: usize,
    depth: usize,
    /// Arena slot to fill in with this node.
    slot: usize,
}

impl RegressionTree {
    /// Assembles a tree from a finished node arena (used by the histogram
    /// builder in [`crate::binned`], which shares this storage format).
    pub(crate) fn from_parts(
        nodes: Vec<Node>,
        n_features: usize,
        impurity_importance: Vec<f64>,
    ) -> RegressionTree {
        RegressionTree {
            nodes,
            n_features,
            impurity_importance,
        }
    }

    /// Fits a tree on the samples selected by `idx` (indices into the
    /// column-major training data `columns` / response `y`).
    ///
    /// `columns[j][i]` is feature `j` of sample `i`. The index buffer is the
    /// bootstrap sample, so repeated indices are expected.
    pub fn fit_on_indices(
        columns: &[Vec<f64>],
        y: &[f64],
        idx: &[u32],
        params: &TreeParams,
        rng: &mut impl Rng,
    ) -> RegressionTree {
        let n_features = columns.len();
        let mtry = params.mtry.min(n_features).max(1);
        let mut nodes: Vec<Node> = Vec::new();
        let mut impurity = vec![0.0; n_features];
        let mut indices: Vec<u32> = idx.to_vec();
        let mut scratch = SplitScratch::default();
        let mut feature_pool: Vec<usize> = (0..n_features).collect();

        nodes.push(Node::Leaf {
            value: 0.0,
            count: 0,
        }); // placeholder root
        let mut stack = vec![BuildItem {
            start: 0,
            end: indices.len(),
            depth: 0,
            slot: 0,
        }];

        while let Some(item) = stack.pop() {
            let node_idx = &indices[item.start..item.end];
            let n = node_idx.len();
            let mean = if n == 0 {
                0.0
            } else {
                node_idx.iter().map(|&i| y[i as usize]).sum::<f64>() / n as f64
            };

            let can_split = n >= 2 * params.min_node_size && item.depth < params.max_depth;
            let mut chosen = None;
            if can_split {
                // Draw `mtry` candidate features without replacement via a
                // partial Fisher-Yates over the reusable pool.
                for k in 0..mtry {
                    let pick = rng.random_range(k..n_features);
                    feature_pool.swap(k, pick);
                }
                for &f in &feature_pool[..mtry] {
                    if let Some(s) = best_split_on_feature(
                        f,
                        &columns[f],
                        y,
                        node_idx,
                        params.min_node_size,
                        &mut scratch,
                    ) {
                        if chosen.is_none_or(|c: crate::split::Split| s.improvement > c.improvement)
                        {
                            chosen = Some(s);
                        }
                    }
                }
            }

            match chosen {
                None => {
                    nodes[item.slot] = Node::Leaf {
                        value: mean,
                        count: n as u32,
                    };
                }
                Some(split) => {
                    impurity[split.feature] += split.improvement;
                    let boundary = item.start
                        + partition_indices(
                            &columns[split.feature],
                            split.threshold,
                            &mut indices[item.start..item.end],
                        );
                    debug_assert!(boundary > item.start && boundary < item.end);
                    let left_slot = nodes.len();
                    let right_slot = nodes.len() + 1;
                    nodes.push(Node::Leaf {
                        value: 0.0,
                        count: 0,
                    });
                    nodes.push(Node::Leaf {
                        value: 0.0,
                        count: 0,
                    });
                    nodes[item.slot] = Node::Internal {
                        feature: split.feature as u32,
                        threshold: split.threshold,
                        left: left_slot as u32,
                        right: right_slot as u32,
                    };
                    stack.push(BuildItem {
                        start: item.start,
                        end: boundary,
                        depth: item.depth + 1,
                        slot: left_slot,
                    });
                    stack.push(BuildItem {
                        start: boundary,
                        end: item.end,
                        depth: item.depth + 1,
                        slot: right_slot,
                    });
                }
            }
        }

        RegressionTree {
            nodes,
            n_features,
            impurity_importance: impurity,
        }
    }

    /// Convenience fit over the full training set (row-major input).
    pub fn fit(x: &[Vec<f64>], y: &[f64], params: &TreeParams, rng: &mut impl Rng) -> Self {
        let columns = rows_to_columns(x);
        let idx: Vec<u32> = (0..y.len() as u32).collect();
        Self::fit_on_indices(&columns, y, &idx, params, rng)
    }

    /// Predicts the response for a single feature row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        debug_assert_eq!(row.len(), self.n_features);
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf { value, .. } => return *value,
                Node::Internal {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if row[*feature as usize] <= *threshold {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }

    /// Predicts for sample `i` of column-major data, optionally overriding
    /// one feature's value (used by permutation importance without copying
    /// whole rows).
    pub(crate) fn predict_columns(
        &self,
        columns: &[Vec<f64>],
        i: usize,
        override_feature: Option<(usize, f64)>,
    ) -> f64 {
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf { value, .. } => return *value,
                Node::Internal {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let f = *feature as usize;
                    let v = match override_feature {
                        Some((of, ov)) if of == f => ov,
                        _ => columns[f][i],
                    };
                    at = if v <= *threshold {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }

    /// Borrow the node arena (used by the level-order batch layout in
    /// [`crate::flat`]).
    pub(crate) fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Maximum depth of the tree (root = 0).
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], at: usize, d: usize) -> usize {
            match &nodes[at] {
                Node::Leaf { .. } => d,
                Node::Internal { left, right, .. } => {
                    walk(nodes, *left as usize, d + 1).max(walk(nodes, *right as usize, d + 1))
                }
            }
        }
        walk(&self.nodes, 0, 0)
    }

    /// Number of features the tree was trained with.
    pub fn n_features(&self) -> usize {
        self.n_features
    }
}

/// Transposes row-major observations into column-major storage, the layout
/// the split search wants.
pub fn rows_to_columns(x: &[Vec<f64>]) -> Vec<Vec<f64>> {
    if x.is_empty() {
        return Vec::new();
    }
    let p = x[0].len();
    let mut cols = vec![Vec::with_capacity(x.len()); p];
    for row in x {
        for (c, &v) in cols.iter_mut().zip(row.iter()) {
            c.push(v);
        }
    }
    cols
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    fn step_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..40).map(|i| if i < 20 { 1.0 } else { 9.0 }).collect();
        (x, y)
    }

    #[test]
    fn learns_step_function() {
        let (x, y) = step_data();
        let mut rng = StdRng::seed_from_u64(1);
        let t = RegressionTree::fit(&x, &y, &TreeParams::default(), &mut rng);
        assert!((t.predict_row(&[3.0]) - 1.0).abs() < 1e-9);
        assert!((t.predict_row(&[33.0]) - 9.0).abs() < 1e-9);
    }

    #[test]
    fn prediction_is_in_training_range() {
        let (x, y) = step_data();
        let mut rng = StdRng::seed_from_u64(2);
        let t = RegressionTree::fit(&x, &y, &TreeParams::default(), &mut rng);
        for q in [-100.0, 0.0, 19.5, 100.0] {
            let p = t.predict_row(&[q]);
            assert!((1.0..=9.0).contains(&p));
        }
    }

    #[test]
    fn constant_response_yields_single_leaf() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y = vec![4.0; 20];
        let mut rng = StdRng::seed_from_u64(3);
        let t = RegressionTree::fit(&x, &y, &TreeParams::default(), &mut rng);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.leaf_count(), 1);
        assert!((t.predict_row(&[5.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn min_node_size_bounds_leaf_population() {
        let x: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..64).map(|i| (i * i) as f64).collect();
        let mut rng = StdRng::seed_from_u64(4);
        let params = TreeParams {
            min_node_size: 8,
            ..TreeParams::default()
        };
        let t = RegressionTree::fit(&x, &y, &params, &mut rng);
        // With min size 8 on 64 points we can have at most 8 leaves.
        assert!(t.leaf_count() <= 8);
    }

    #[test]
    fn max_depth_caps_tree() {
        let x: Vec<Vec<f64>> = (0..128).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..128).map(|i| i as f64).collect();
        let mut rng = StdRng::seed_from_u64(5);
        let params = TreeParams {
            min_node_size: 1,
            max_depth: 3,
            ..TreeParams::default()
        };
        let t = RegressionTree::fit(&x, &y, &params, &mut rng);
        assert!(t.depth() <= 3);
    }

    #[test]
    fn impurity_importance_credits_informative_feature() {
        // Feature 0 drives y; feature 1 is noise.
        let x: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![i as f64, ((i * 37) % 11) as f64])
            .collect();
        let y: Vec<f64> = (0..60).map(|i| (i / 10) as f64).collect();
        let mut rng = StdRng::seed_from_u64(6);
        let t = RegressionTree::fit(&x, &y, &TreeParams::default(), &mut rng);
        assert!(t.impurity_importance[0] > t.impurity_importance[1]);
    }

    #[test]
    fn two_feature_interaction_is_partitioned() {
        // y = 10 when both features above their midpoints.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for a in 0..8 {
            for b in 0..8 {
                x.push(vec![a as f64, b as f64]);
                y.push(if a >= 4 && b >= 4 { 10.0 } else { 0.0 });
            }
        }
        let mut rng = StdRng::seed_from_u64(7);
        let params = TreeParams {
            min_node_size: 2,
            ..TreeParams::default()
        };
        let t = RegressionTree::fit(&x, &y, &params, &mut rng);
        assert!(t.predict_row(&[6.0, 6.0]) > 7.0);
        assert!(t.predict_row(&[1.0, 6.0]) < 3.0);
        assert!(t.predict_row(&[6.0, 1.0]) < 3.0);
    }

    #[test]
    fn bootstrap_indices_with_repeats_work() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| i as f64 * 2.0).collect();
        let columns = rows_to_columns(&x);
        let idx = vec![0u32, 0, 1, 1, 5, 5, 9, 9, 9, 9];
        let mut rng = StdRng::seed_from_u64(8);
        let t = RegressionTree::fit_on_indices(
            &columns,
            &y,
            &idx,
            &TreeParams {
                min_node_size: 2,
                ..TreeParams::default()
            },
            &mut rng,
        );
        // Prediction near 18 for the repeated high point.
        assert!(t.predict_row(&[9.0]) > 10.0);
    }

    #[test]
    fn rows_to_columns_transposes() {
        let x = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let cols = rows_to_columns(&x);
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0], vec![1.0, 3.0, 5.0]);
        assert_eq!(cols[1], vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn predict_columns_override_redirects_routing() {
        let (x, y) = step_data();
        let mut rng = StdRng::seed_from_u64(9);
        let t = RegressionTree::fit(&x, &y, &TreeParams::default(), &mut rng);
        let columns = rows_to_columns(&x);
        let lo = t.predict_columns(&columns, 0, None);
        let hi = t.predict_columns(&columns, 0, Some((0, 35.0)));
        assert!((lo - 1.0).abs() < 1e-9);
        assert!((hi - 9.0).abs() < 1e-9);
    }
}
