//! Best-split search for CART regression trees.
//!
//! Implements the greedy criterion of the paper's Eq. (3): over candidate
//! split variables `j` and split points `s`, minimise the within-halves sum of
//! squares. For a fixed `j`, sorting the node's samples by `x_j` and sweeping
//! a prefix sum finds the optimal `s` in one pass.

/// A candidate split of a tree node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Split {
    /// Index of the splitting variable `j`.
    pub feature: usize,
    /// Split point `s`: samples with `x_j <= s` go left.
    pub threshold: f64,
    /// Sum-of-squares improvement over the unsplit node.
    pub improvement: f64,
    /// Number of samples routed left.
    pub left_count: usize,
}

/// Scratch buffers reused across split searches to avoid per-node allocation.
#[derive(Debug, Default)]
pub struct SplitScratch {
    order: Vec<u32>,
}

/// Finds the best split of the given samples on one feature.
///
/// * `values` — the feature column (full training set, indexed by `idx`).
/// * `y` — the response column (full training set, indexed by `idx`).
/// * `idx` — indices of the samples in this node.
/// * `min_leaf` — minimum number of samples that must land on each side.
///
/// Returns `None` when no valid split exists (constant feature or too few
/// samples).
pub fn best_split_on_feature(
    feature: usize,
    values: &[f64],
    y: &[f64],
    idx: &[u32],
    min_leaf: usize,
    scratch: &mut SplitScratch,
) -> Option<Split> {
    let n = idx.len();
    if n < 2 * min_leaf {
        return None;
    }
    scratch.order.clear();
    scratch.order.extend_from_slice(idx);
    scratch
        .order
        .sort_unstable_by(|&a, &b| values[a as usize].partial_cmp(&values[b as usize]).unwrap());
    let order = &scratch.order;

    // Total sum and sum of squares of y in this node.
    let mut total_sum = 0.0f64;
    for &i in order.iter() {
        total_sum += y[i as usize];
    }
    let total_n = n as f64;

    // Sweep: maintain left-side prefix sums. The SSE decomposition
    //   improvement = S_L^2/n_L + S_R^2/n_R - S^2/n
    // avoids needing the individual squared responses.
    let parent_score = total_sum * total_sum / total_n;
    let mut left_sum = 0.0f64;
    let mut best: Option<Split> = None;
    for k in 0..(n - 1) {
        let i = order[k] as usize;
        left_sum += y[i];
        let left_n = (k + 1) as f64;
        // Can't split between equal feature values.
        let here = values[i];
        let next = values[order[k + 1] as usize];
        if here == next {
            continue;
        }
        if k + 1 < min_leaf || n - (k + 1) < min_leaf {
            continue;
        }
        let right_sum = total_sum - left_sum;
        let right_n = total_n - left_n;
        let score = left_sum * left_sum / left_n + right_sum * right_sum / right_n;
        let improvement = score - parent_score;
        if best.is_none_or(|b| improvement > b.improvement) {
            // Midpoint threshold, matching CART convention.
            best = Some(Split {
                feature,
                threshold: 0.5 * (here + next),
                improvement,
                left_count: k + 1,
            });
        }
    }
    // Only return splits that actually improve (guards against FP jitter on
    // constant-response nodes).
    best.filter(|b| b.improvement > 1e-12 * (1.0 + parent_score.abs()))
}

/// Partitions `idx` in place so samples with `x[feature] <= threshold` come
/// first; returns the boundary position.
pub fn partition_indices(values: &[f64], threshold: f64, idx: &mut [u32]) -> usize {
    let mut lo = 0usize;
    let mut hi = idx.len();
    while lo < hi {
        if values[idx[lo] as usize] <= threshold {
            lo += 1;
        } else {
            hi -= 1;
            idx.swap(lo, hi);
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_obvious_split() {
        // y jumps at x = 4.5.
        let values: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = values
            .iter()
            .map(|&v| if v < 4.5 { 0.0 } else { 10.0 })
            .collect();
        let idx: Vec<u32> = (0..10).collect();
        let mut scratch = SplitScratch::default();
        let s = best_split_on_feature(0, &values, &y, &idx, 1, &mut scratch).unwrap();
        assert!((s.threshold - 4.5).abs() < 1e-12);
        assert_eq!(s.left_count, 5);
        assert!(s.improvement > 0.0);
    }

    #[test]
    fn constant_feature_yields_no_split() {
        let values = vec![3.0; 8];
        let y: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let idx: Vec<u32> = (0..8).collect();
        let mut scratch = SplitScratch::default();
        assert!(best_split_on_feature(0, &values, &y, &idx, 1, &mut scratch).is_none());
    }

    #[test]
    fn constant_response_yields_no_split() {
        let values: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let y = vec![5.0; 8];
        let idx: Vec<u32> = (0..8).collect();
        let mut scratch = SplitScratch::default();
        assert!(best_split_on_feature(0, &values, &y, &idx, 1, &mut scratch).is_none());
    }

    #[test]
    fn respects_min_leaf() {
        let values: Vec<f64> = (0..6).map(|i| i as f64).collect();
        // Optimal unrestricted split would put one sample left.
        let y = vec![100.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let idx: Vec<u32> = (0..6).collect();
        let mut scratch = SplitScratch::default();
        let s = best_split_on_feature(0, &values, &y, &idx, 3, &mut scratch).unwrap();
        assert!(s.left_count >= 3);
        assert!(idx.len() - s.left_count >= 3);
    }

    #[test]
    fn too_small_node_yields_none() {
        let values = vec![1.0, 2.0, 3.0];
        let y = vec![1.0, 2.0, 3.0];
        let idx: Vec<u32> = (0..3).collect();
        let mut scratch = SplitScratch::default();
        assert!(best_split_on_feature(0, &values, &y, &idx, 2, &mut scratch).is_none());
    }

    #[test]
    fn never_splits_between_equal_values() {
        let values = vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0];
        let y = vec![0.0, 5.0, 1.0, 9.0, 10.0, 11.0];
        let idx: Vec<u32> = (0..6).collect();
        let mut scratch = SplitScratch::default();
        let s = best_split_on_feature(0, &values, &y, &idx, 1, &mut scratch).unwrap();
        assert!((s.threshold - 1.5).abs() < 1e-12);
    }

    #[test]
    fn improvement_equals_sse_decrease() {
        let values: Vec<f64> = vec![0.0, 1.0, 2.0, 3.0];
        let y = vec![1.0, 2.0, 8.0, 9.0];
        let idx: Vec<u32> = (0..4).collect();
        let mut scratch = SplitScratch::default();
        let s = best_split_on_feature(0, &values, &y, &idx, 1, &mut scratch).unwrap();
        // SSE before: mean 5, SSE = 16+9+9+16 = 50. After split at 1.5:
        // means 1.5/8.5, SSE = 0.25*2 + 0.25*2 = 1. Improvement = 49.
        assert!((s.improvement - 49.0).abs() < 1e-9);
    }

    #[test]
    fn partition_orders_left_then_right() {
        let values = vec![5.0, 1.0, 4.0, 2.0, 3.0];
        let mut idx: Vec<u32> = (0..5).collect();
        let boundary = partition_indices(&values, 2.5, &mut idx);
        assert_eq!(boundary, 2);
        for &i in &idx[..boundary] {
            assert!(values[i as usize] <= 2.5);
        }
        for &i in &idx[boundary..] {
            assert!(values[i as usize] > 2.5);
        }
    }

    #[test]
    fn partition_all_left_or_all_right() {
        let values = vec![1.0, 2.0, 3.0];
        let mut idx: Vec<u32> = (0..3).collect();
        assert_eq!(partition_indices(&values, 10.0, &mut idx), 3);
        assert_eq!(partition_indices(&values, 0.0, &mut idx), 0);
    }
}
