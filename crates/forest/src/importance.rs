//! Permutation variable importance.
//!
//! The paper (§4.1.1): *"Variable importance is estimated by looking at how
//! much the prediction error increases when the values for that variable in
//! the OOB sample are permuted while all others are left unchanged; the
//! necessary calculations are carried out tree by tree as the forest is
//! constructed."*
//!
//! We report both the raw mean increase in OOB MSE (`%IncMSE` before
//! normalisation, what the paper's Figures 2–4 plot on the x-axis) and a
//! z-score-style standardised value, mirroring R's `importance()` output.

use crate::forest::{bf_mse, RandomForest};
use rand::prelude::*;
use rand::rngs::StdRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Permutation-importance scores for every predictor of a fitted forest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VariableImportance {
    /// Mean increase in OOB MSE per feature (can be slightly negative for
    /// pure-noise features; that is expected and diagnostic).
    pub mean_increase_mse: Vec<f64>,
    /// Standard deviation of the per-tree increases.
    pub sd_increase_mse: Vec<f64>,
    /// `mean / (sd / sqrt(n_trees))` — the standardised importance R prints.
    pub standardized: Vec<f64>,
}

impl VariableImportance {
    /// Computes permutation importance for the given forest, tree by tree.
    pub fn compute(forest: &RandomForest) -> VariableImportance {
        let p = forest.n_features();
        let n_trees = forest.trees.len();

        // Per tree: baseline OOB MSE, then the OOB MSE with each variable's
        // OOB values permuted. The permutation is simulated cheaply: we walk
        // the OOB rows pairing each with a shuffled donor row's value for the
        // permuted feature, using `predict_columns`' override hook so no row
        // copies are made.
        let per_tree: Vec<Vec<f64>> = (0..n_trees)
            .into_par_iter()
            .map(|t| {
                let tree = &forest.trees[t];
                let oob = &forest.oob_indices[t];
                let mut incs = vec![0.0; p];
                if oob.len() < 2 {
                    return incs;
                }
                let base_preds: Vec<f64> = oob
                    .iter()
                    .map(|&i| tree.predict_columns(&forest.columns, i as usize, None))
                    .collect();
                let obs: Vec<f64> = oob.iter().map(|&i| forest.y[i as usize]).collect();
                let base_mse = bf_mse(&base_preds, &obs);
                // Deterministic permutation stream per (tree, feature).
                for f in 0..p {
                    let mut rng = StdRng::seed_from_u64(
                        forest.tree_seeds[t] ^ (f as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    let mut perm: Vec<u32> = oob.to_vec();
                    perm.shuffle(&mut rng);
                    let preds: Vec<f64> = oob
                        .iter()
                        .zip(perm.iter())
                        .map(|(&i, &donor)| {
                            let v = forest.columns[f][donor as usize];
                            tree.predict_columns(&forest.columns, i as usize, Some((f, v)))
                        })
                        .collect();
                    incs[f] = bf_mse(&preds, &obs) - base_mse;
                }
                incs
            })
            .collect();

        let mut mean = vec![0.0; p];
        for tree_incs in &per_tree {
            for (m, &v) in mean.iter_mut().zip(tree_incs.iter()) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n_trees as f64;
        }
        let mut sd = vec![0.0; p];
        if n_trees > 1 {
            for tree_incs in &per_tree {
                for ((s, &v), &m) in sd.iter_mut().zip(tree_incs.iter()).zip(mean.iter()) {
                    *s += (v - m) * (v - m);
                }
            }
            for s in &mut sd {
                *s = (*s / (n_trees - 1) as f64).sqrt();
            }
        }
        let standardized = mean
            .iter()
            .zip(sd.iter())
            .map(|(&m, &s)| {
                if s > 0.0 {
                    m / (s / (n_trees as f64).sqrt())
                } else if m == 0.0 {
                    0.0
                } else {
                    f64::INFINITY.copysign(m)
                }
            })
            .collect();
        VariableImportance {
            mean_increase_mse: mean,
            sd_increase_mse: sd,
            standardized,
        }
    }

    /// Indices of features sorted by decreasing mean MSE increase — the
    /// importance ranking the paper's figures display top-to-bottom.
    pub fn ranking(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.mean_increase_mse.len()).collect();
        order.sort_by(|&a, &b| {
            self.mean_increase_mse[b]
                .partial_cmp(&self.mean_increase_mse[a])
                .unwrap()
        });
        order
    }

    /// The top `k` feature indices by importance.
    pub fn top_k(&self, k: usize) -> Vec<usize> {
        self.ranking().into_iter().take(k).collect()
    }

    /// Importance normalised so the maximum is 100 (handy for plotting).
    pub fn relative(&self) -> Vec<f64> {
        let max = self
            .mean_increase_mse
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        if max <= 0.0 {
            return vec![0.0; self.mean_increase_mse.len()];
        }
        self.mean_increase_mse
            .iter()
            .map(|&v| (v / max * 100.0).max(0.0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::{ForestParams, RandomForest};

    /// y depends strongly on x0, weakly on x1, not at all on x2.
    fn graded_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let x: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                vec![
                    i as f64,
                    ((i * 7) % 23) as f64,
                    ((i * 2654435761usize) % 101) as f64,
                ]
            })
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 10.0 * r[0] + 0.5 * r[1]).collect();
        (x, y)
    }

    #[test]
    fn ranks_signal_above_weak_above_noise() {
        let (x, y) = graded_data(120);
        let f = RandomForest::fit(
            &x,
            &y,
            &ForestParams::default().with_trees(150).with_seed(11),
        )
        .unwrap();
        let imp = f.permutation_importance();
        let rank = imp.ranking();
        assert_eq!(rank[0], 0, "importances: {:?}", imp.mean_increase_mse);
        assert!(
            imp.mean_increase_mse[0] > 10.0 * imp.mean_increase_mse[2].abs(),
            "signal should dwarf noise: {:?}",
            imp.mean_increase_mse
        );
    }

    #[test]
    fn noise_feature_importance_is_near_zero() {
        let (x, y) = graded_data(120);
        let f = RandomForest::fit(
            &x,
            &y,
            &ForestParams::default().with_trees(150).with_seed(12),
        )
        .unwrap();
        let imp = f.permutation_importance();
        // Relative to the dominant feature, noise is negligible.
        let rel = imp.relative();
        assert!(rel[2] < 10.0, "relative importances: {rel:?}");
    }

    #[test]
    fn importance_is_deterministic_for_fixed_seed() {
        let (x, y) = graded_data(60);
        let p = ForestParams::default().with_trees(40).with_seed(13);
        let f1 = RandomForest::fit(&x, &y, &p).unwrap();
        let f2 = RandomForest::fit(&x, &y, &p).unwrap();
        assert_eq!(
            f1.permutation_importance().mean_increase_mse,
            f2.permutation_importance().mean_increase_mse
        );
    }

    #[test]
    fn top_k_truncates_ranking() {
        let (x, y) = graded_data(60);
        let f = RandomForest::fit(
            &x,
            &y,
            &ForestParams::default().with_trees(40).with_seed(14),
        )
        .unwrap();
        let imp = f.permutation_importance();
        assert_eq!(imp.top_k(2).len(), 2);
        assert_eq!(imp.top_k(2)[0], imp.ranking()[0]);
        assert_eq!(imp.top_k(99).len(), 3);
    }

    #[test]
    fn relative_scales_max_to_100() {
        let (x, y) = graded_data(60);
        let f = RandomForest::fit(
            &x,
            &y,
            &ForestParams::default().with_trees(40).with_seed(15),
        )
        .unwrap();
        let rel = f.permutation_importance().relative();
        let max = rel.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!((max - 100.0).abs() < 1e-9);
        assert!(rel.iter().all(|&v| (0.0..=100.0).contains(&v)));
    }

    #[test]
    fn agrees_with_impurity_importance_on_dominant_feature() {
        let (x, y) = graded_data(100);
        let f = RandomForest::fit(
            &x,
            &y,
            &ForestParams::default().with_trees(80).with_seed(16),
        )
        .unwrap();
        let perm_rank = f.permutation_importance().ranking()[0];
        let imp = f.impurity_importance();
        let impurity_rank = (0..3)
            .max_by(|&a, &b| imp[a].partial_cmp(&imp[b]).unwrap())
            .unwrap();
        assert_eq!(perm_rank, impurity_rank);
    }
}
