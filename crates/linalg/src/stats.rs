//! Column-wise summary statistics shared by the model crates.
//!
//! These are the standard estimators (sample mean/variance, Pearson
//! correlation, covariance/correlation matrices, R², MSE) used throughout the
//! BlackForest pipeline: PCA standardises columns, the forest reports
//! explained variance, and the counter models report residual deviance.

use crate::{LinalgError, Matrix, Result};

/// Arithmetic mean of a slice; `NaN` for empty input is deliberately avoided
/// by returning 0.0 (callers check emptiness where it matters).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (denominator `n - 1`); 0.0 for fewer than two
/// samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Mean squared error between predictions and observations.
pub fn mse(pred: &[f64], obs: &[f64]) -> f64 {
    debug_assert_eq!(pred.len(), obs.len());
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter()
        .zip(obs.iter())
        .map(|(p, o)| (p - o) * (p - o))
        .sum::<f64>()
        / pred.len() as f64
}

/// Root mean squared error.
pub fn rmse(pred: &[f64], obs: &[f64]) -> f64 {
    mse(pred, obs).sqrt()
}

/// Mean absolute percentage error, skipping observations that are exactly 0.
pub fn mape(pred: &[f64], obs: &[f64]) -> f64 {
    debug_assert_eq!(pred.len(), obs.len());
    let mut total = 0.0;
    let mut n = 0usize;
    for (p, o) in pred.iter().zip(obs.iter()) {
        if *o != 0.0 {
            total += ((p - o) / o).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        100.0 * total / n as f64
    }
}

/// Coefficient of determination R² of predictions against observations.
///
/// 1.0 is perfect; 0.0 means "no better than predicting the mean"; negative
/// values mean worse than the mean predictor. Returns 1.0 for constant
/// observations with zero residual (the degenerate-but-perfect case).
pub fn r_squared(pred: &[f64], obs: &[f64]) -> f64 {
    debug_assert_eq!(pred.len(), obs.len());
    let m = mean(obs);
    let ss_tot: f64 = obs.iter().map(|&y| (y - m) * (y - m)).sum();
    let ss_res: f64 = pred
        .iter()
        .zip(obs.iter())
        .map(|(p, y)| (y - p) * (y - p))
        .sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Pearson correlation coefficient; 0.0 when either side is constant.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    debug_assert_eq!(xs.len(), ys.len());
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys.iter()) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        0.0
    } else {
        sxy / (sxx.sqrt() * syy.sqrt())
    }
}

/// Column means of a data matrix (observations in rows).
pub fn column_means(x: &Matrix) -> Vec<f64> {
    let (n, p) = x.shape();
    let mut means = vec![0.0; p];
    for i in 0..n {
        for (m, &v) in means.iter_mut().zip(x.row(i).iter()) {
            *m += v;
        }
    }
    if n > 0 {
        for m in &mut means {
            *m /= n as f64;
        }
    }
    means
}

/// Column standard deviations (sample, `n - 1`) of a data matrix.
pub fn column_std_devs(x: &Matrix) -> Vec<f64> {
    let (n, p) = x.shape();
    if n < 2 {
        return vec![0.0; p];
    }
    let means = column_means(x);
    let mut vars = vec![0.0; p];
    for i in 0..n {
        for ((v, &m), &val) in vars.iter_mut().zip(means.iter()).zip(x.row(i).iter()) {
            *v += (val - m) * (val - m);
        }
    }
    vars.iter_mut().for_each(|v| *v /= (n - 1) as f64);
    vars.into_iter().map(f64::sqrt).collect()
}

/// Sample covariance matrix of a data matrix (observations in rows).
pub fn covariance_matrix(x: &Matrix) -> Result<Matrix> {
    let (n, p) = x.shape();
    if n < 2 {
        return Err(LinalgError::Empty);
    }
    let means = column_means(x);
    let mut cov = Matrix::zeros(p, p);
    for i in 0..n {
        let row = x.row(i);
        for a in 0..p {
            let da = row[a] - means[a];
            if da == 0.0 {
                continue;
            }
            for b in a..p {
                cov[(a, b)] += da * (row[b] - means[b]);
            }
        }
    }
    let denom = (n - 1) as f64;
    for a in 0..p {
        for b in a..p {
            cov[(a, b)] /= denom;
            cov[(b, a)] = cov[(a, b)];
        }
    }
    Ok(cov)
}

/// Sample correlation matrix. Constant columns get zero off-diagonal
/// correlations and a unit diagonal, mirroring R's `cor` behaviour closely
/// enough for PCA on standardised data.
pub fn correlation_matrix(x: &Matrix) -> Result<Matrix> {
    let cov = covariance_matrix(x)?;
    let p = cov.rows();
    let sd: Vec<f64> = (0..p).map(|i| cov[(i, i)].sqrt()).collect();
    let mut cor = Matrix::zeros(p, p);
    for a in 0..p {
        for b in 0..p {
            cor[(a, b)] = if a == b {
                1.0
            } else if sd[a] == 0.0 || sd[b] == 0.0 {
                0.0
            } else {
                cov[(a, b)] / (sd[a] * sd[b])
            };
        }
    }
    Ok(cor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_known_values() {
        assert!((mean(&[1.0, 2.0, 3.0, 4.0]) - 2.5).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn variance_matches_hand_computation() {
        // var([2,4,4,4,5,5,7,9]) with n-1 denominator = 32/7.
        let v = variance(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((v - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn variance_of_singleton_is_zero() {
        assert_eq!(variance(&[42.0]), 0.0);
    }

    #[test]
    fn mse_and_rmse_consistent() {
        let pred = [1.0, 2.0, 3.0];
        let obs = [1.0, 4.0, 3.0];
        assert!((mse(&pred, &obs) - 4.0 / 3.0).abs() < 1e-12);
        assert!((rmse(&pred, &obs) - (4.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn r_squared_perfect_prediction_is_one() {
        let obs = [1.0, 2.0, 3.0, 4.0];
        assert!((r_squared(&obs, &obs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn r_squared_mean_prediction_is_zero() {
        let obs = [1.0, 2.0, 3.0];
        let pred = [2.0, 2.0, 2.0];
        assert!(r_squared(&pred, &obs).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_linear_relation_is_unit() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|&x| 3.0 * x - 1.0).collect();
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = xs.iter().map(|&x| -2.0 * x).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_constant_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn mape_skips_zero_observations() {
        let pred = [1.0, 110.0];
        let obs = [0.0, 100.0];
        assert!((mape(&pred, &obs) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn column_means_and_stds() {
        let x = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 10.0]]).unwrap();
        let m = column_means(&x);
        assert!((m[0] - 2.0).abs() < 1e-12);
        assert!((m[1] - 10.0).abs() < 1e-12);
        let s = column_std_devs(&x);
        assert!((s[0] - (2.0f64).sqrt()).abs() < 1e-12);
        assert_eq!(s[1], 0.0);
    }

    #[test]
    fn covariance_matrix_is_symmetric_and_matches_variance() {
        let x = Matrix::from_rows(&[
            vec![1.0, 2.0],
            vec![2.0, 1.0],
            vec![3.0, 4.0],
            vec![4.0, 3.0],
        ])
        .unwrap();
        let c = covariance_matrix(&x).unwrap();
        assert!((c[(0, 1)] - c[(1, 0)]).abs() < 1e-12);
        assert!((c[(0, 0)] - variance(&x.col(0))).abs() < 1e-12);
        assert!((c[(1, 1)] - variance(&x.col(1))).abs() < 1e-12);
    }

    #[test]
    fn correlation_matrix_has_unit_diagonal_and_bounded_entries() {
        let x = Matrix::from_rows(&[
            vec![1.0, 2.0, -1.0],
            vec![2.0, 1.5, -2.5],
            vec![3.0, 4.0, -2.0],
            vec![4.0, 3.0, -4.5],
        ])
        .unwrap();
        let c = correlation_matrix(&x).unwrap();
        for i in 0..3 {
            assert!((c[(i, i)] - 1.0).abs() < 1e-12);
            for j in 0..3 {
                assert!(c[(i, j)].abs() <= 1.0 + 1e-12);
            }
        }
    }

    #[test]
    fn correlation_of_constant_column_is_zero() {
        let x = Matrix::from_rows(&[vec![1.0, 5.0], vec![2.0, 5.0], vec![3.0, 5.0]]).unwrap();
        let c = correlation_matrix(&x).unwrap();
        assert_eq!(c[(0, 1)], 0.0);
        assert_eq!(c[(1, 1)], 1.0);
    }

    #[test]
    fn covariance_requires_two_rows() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        assert!(covariance_matrix(&x).is_err());
    }
}
