//! Row-major dense matrix of `f64` values.
//!
//! [`Matrix`] is the shared currency between the statistics crates. It keeps
//! its storage in one contiguous `Vec<f64>` so row access is a cheap slice and
//! matrix products stream through memory in order.

use crate::{LinalgError, Result};
use serde::{Deserialize, Serialize};
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of the given shape filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix of the given shape filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n`-by-`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row-major data. Returns an error if the length of
    /// `data` does not equal `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                op: "from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix from a slice of equally-long rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Err(LinalgError::Empty);
        }
        let cols = rows[0].len();
        if rows.iter().any(|r| r.len() != cols) {
            return Err(LinalgError::ShapeMismatch {
                op: "from_rows",
                lhs: (rows.len(), cols),
                rhs: (rows.len(), rows.iter().map(|r| r.len()).max().unwrap_or(0)),
            });
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a slice of equally-long columns.
    pub fn from_cols(cols: &[Vec<f64>]) -> Result<Self> {
        if cols.is_empty() {
            return Err(LinalgError::Empty);
        }
        let rows = cols[0].len();
        if cols.iter().any(|c| c.len() != rows) {
            return Err(LinalgError::ShapeMismatch {
                op: "from_cols",
                lhs: (rows, cols.len()),
                rhs: (cols.iter().map(|c| c.len()).max().unwrap_or(0), cols.len()),
            });
        }
        let mut m = Matrix::zeros(rows, cols.len());
        for (j, col) in cols.iter().enumerate() {
            for (i, &v) in col.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        Ok(m)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Whether the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Borrows the raw row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the raw row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order keeps the inner loop streaming over contiguous rows.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(rhs_row.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|i| self.row(i).iter().zip(v.iter()).map(|(&a, &b)| a * b).sum())
            .collect())
    }

    /// Element-wise sum `self + rhs`.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "add",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = self.clone();
        for (o, &b) in out.data.iter_mut().zip(rhs.data.iter()) {
            *o += b;
        }
        Ok(out)
    }

    /// Element-wise difference `self - rhs`.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "sub",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = self.clone();
        for (o, &b) in out.data.iter_mut().zip(rhs.data.iter()) {
            *o -= b;
        }
        Ok(out)
    }

    /// Multiplies every element by `s`, in place, returning `self` for chaining.
    pub fn scale(mut self, s: f64) -> Matrix {
        for v in &mut self.data {
            *v *= s;
        }
        self
    }

    /// `A^T * A`, the Gram matrix — the workhorse of normal-equation solvers.
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.rows {
            let row = self.row(i);
            for a in 0..self.cols {
                let ra = row[a];
                if ra == 0.0 {
                    continue;
                }
                for b in a..self.cols {
                    g[(a, b)] += ra * row[b];
                }
            }
        }
        // Mirror the upper triangle.
        for a in 0..self.cols {
            for b in 0..a {
                g[(a, b)] = g[(b, a)];
            }
        }
        g
    }

    /// `A^T * y` for a response vector `y` with `rows()` entries.
    pub fn t_matvec(&self, y: &[f64]) -> Result<Vec<f64>> {
        if y.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "t_matvec",
                lhs: self.shape(),
                rhs: (y.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            let row = self.row(i);
            let yi = y[i];
            for (o, &a) in out.iter_mut().zip(row.iter()) {
                *o += a * yi;
            }
        }
        Ok(out)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute off-diagonal element (square matrices only); used as
    /// the Jacobi convergence measure.
    pub fn max_off_diagonal(&self) -> f64 {
        let mut best = 0.0f64;
        for i in 0..self.rows {
            for j in 0..self.cols {
                if i != j {
                    best = best.max(self[(i, j)].abs());
                }
            }
        }
        best
    }

    /// Whether `self` and `rhs` agree element-wise within `tol`.
    pub fn approx_eq(&self, rhs: &Matrix, tol: f64) -> bool {
        self.shape() == rhs.shape()
            && self
                .data
                .iter()
                .zip(rhs.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_requested_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_is_diagonal_ones() {
        let m = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn from_rows_round_trips() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn from_cols_matches_from_rows_transposed() {
        let cols = [vec![1.0, 3.0], vec![2.0, 4.0]];
        let m = Matrix::from_cols(&cols).unwrap();
        let expect = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m, expect);
    }

    #[test]
    fn matmul_small_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        let expect = Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]).unwrap();
        assert!(c.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn matmul_rejects_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, -2.5, 3.0], vec![0.0, 4.0, 9.0]]).unwrap();
        let c = a.matmul(&Matrix::identity(3)).unwrap();
        assert!(c.approx_eq(&a, 1e-12));
    }

    #[test]
    fn transpose_swaps_indices() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 0)], 3.0);
        assert_eq!(t[(1, 1)], 5.0);
    }

    #[test]
    fn matvec_matches_manual() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
    }

    #[test]
    fn gram_matches_explicit_transpose_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        assert!(g.approx_eq(&explicit, 1e-12));
    }

    #[test]
    fn t_matvec_matches_explicit() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let got = a.t_matvec(&[1.0, 0.5, 2.0]).unwrap();
        let expect = a.transpose().matvec(&[1.0, 0.5, 2.0]).unwrap();
        for (g, e) in got.iter().zip(expect.iter()) {
            assert!((g - e).abs() < 1e-12);
        }
    }

    #[test]
    fn add_sub_round_trip() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![0.5, -1.0], vec![2.0, 0.0]]).unwrap();
        let sum = a.add(&b).unwrap();
        let back = sum.sub(&b).unwrap();
        assert!(back.approx_eq(&a, 1e-12));
    }

    #[test]
    fn scale_multiplies_all_elements() {
        let a = Matrix::filled(2, 2, 2.0).scale(1.5);
        assert!(a.as_slice().iter().all(|&v| (v - 3.0).abs() < 1e-12));
    }

    #[test]
    fn max_off_diagonal_ignores_diagonal() {
        let mut a = Matrix::identity(3).scale(100.0);
        a[(0, 2)] = -7.0;
        assert_eq!(a.max_off_diagonal(), 7.0);
    }

    #[test]
    fn frobenius_norm_of_unit_vector_matrix() {
        let a = Matrix::from_rows(&[vec![3.0, 4.0]]).unwrap();
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn row_and_col_accessors_agree_with_indexing() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(a.col(2), vec![3.0, 6.0]);
    }
}
