//! Cholesky factorisation of symmetric positive-definite matrices.
//!
//! Used by the GLM/MARS solvers to solve normal equations `(X^T X) b = X^T y`
//! quickly. The factorisation stores the lower-triangular factor `L` with
//! `A = L L^T` and offers forward/back substitution solves.

use crate::{LinalgError, Matrix, Result};

/// A lower-triangular Cholesky factor of a symmetric positive-definite matrix.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorises a symmetric positive-definite matrix.
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] if a non-positive pivot is
    /// encountered (within a small relative tolerance), and
    /// [`LinalgError::NotSquare`] for non-square input. Only the lower
    /// triangle of `a` is read, so the caller may pass a matrix whose upper
    /// triangle is stale.
    pub fn decompose(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let mut l = Matrix::zeros(n, n);
        // Scale-aware pivot tolerance: pivots below this relative floor mean
        // the matrix is numerically semi-definite.
        let scale = (0..n).map(|i| a[(i, i)].abs()).fold(0.0f64, f64::max);
        let tol = scale.max(1.0) * 1e-12;
        for j in 0..n {
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= tol {
                return Err(LinalgError::NotPositiveDefinite);
            }
            let dj = d.sqrt();
            l[(j, j)] = dj;
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / dj;
            }
        }
        Ok(Cholesky { l })
    }

    /// Borrows the lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` using the stored factor.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Forward substitution: L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= self.l[(i, k)] * y[k];
            }
            y[i] = s / self.l[(i, i)];
        }
        // Back substitution: L^T x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in (i + 1)..n {
                s -= self.l[(k, i)] * x[k];
            }
            x[i] = s / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Log-determinant of `A` (sum of `2 ln L_ii`); useful for model scoring.
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows()).map(|i| 2.0 * self.l[(i, i)].ln()).sum()
    }
}

/// Solves the ridge-regularised normal equations `(A + lambda I) x = b` where
/// `A` is symmetric positive-semidefinite. A small ridge makes the GLM/MARS
/// solvers robust to collinear performance counters (common: many counters
/// are near-duplicates of each other).
pub fn solve_spd_ridge(a: &Matrix, b: &[f64], lambda: f64) -> Result<Vec<f64>> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    let n = a.rows();
    let mut reg = a.clone();
    for i in 0..n {
        reg[(i, i)] += lambda;
    }
    // Escalate the ridge until the matrix factorises; counters can be exactly
    // collinear (e.g. two identical columns) and then any fixed lambda that is
    // too small fails.
    let mut lam = lambda.max(1e-10);
    for _ in 0..40 {
        match Cholesky::decompose(&reg) {
            Ok(c) => return c.solve(b),
            Err(LinalgError::NotPositiveDefinite) => {
                for i in 0..n {
                    reg[(i, i)] += lam;
                }
                lam *= 10.0;
            }
            Err(e) => return Err(e),
        }
    }
    Err(LinalgError::Singular)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // 3x3 SPD matrix (diagonally dominant).
        Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.2],
            vec![0.5, 0.2, 5.0],
        ])
        .unwrap()
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd3();
        let c = Cholesky::decompose(&a).unwrap();
        let l = c.factor();
        let back = l.matmul(&l.transpose()).unwrap();
        assert!(back.approx_eq(&a, 1e-10));
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd3();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true).unwrap();
        let c = Cholesky::decompose(&a).unwrap();
        let x = c.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(x_true.iter()) {
            assert!((xi - ti).abs() < 1e-10, "{xi} vs {ti}");
        }
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::decompose(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::decompose(&a),
            Err(LinalgError::NotPositiveDefinite)
        ));
    }

    #[test]
    fn rejects_empty() {
        let a = Matrix::zeros(0, 0);
        assert!(matches!(Cholesky::decompose(&a), Err(LinalgError::Empty)));
    }

    #[test]
    fn solve_rejects_wrong_rhs_length() {
        let c = Cholesky::decompose(&spd3()).unwrap();
        assert!(c.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn log_det_matches_known_value() {
        // det(diag(4, 9)) = 36.
        let a = Matrix::from_rows(&[vec![4.0, 0.0], vec![0.0, 9.0]]).unwrap();
        let c = Cholesky::decompose(&a).unwrap();
        assert!((c.log_det() - 36.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn ridge_solver_handles_exactly_singular_gram() {
        // Two identical columns -> Gram matrix is singular; the escalating
        // ridge must still return a finite solution.
        let x = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]).unwrap();
        let g = x.gram();
        let b = x.t_matvec(&[1.0, 2.0, 3.0]).unwrap();
        let sol = solve_spd_ridge(&g, &b, 1e-8).unwrap();
        assert!(sol.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn ridge_solver_matches_plain_solve_when_well_conditioned() {
        let a = spd3();
        let b = vec![1.0, 2.0, 3.0];
        let plain = Cholesky::decompose(&a).unwrap().solve(&b).unwrap();
        let ridged = solve_spd_ridge(&a, &b, 1e-12).unwrap();
        for (p, r) in plain.iter().zip(ridged.iter()) {
            assert!((p - r).abs() < 1e-6);
        }
    }
}
