//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! PCA needs all eigenpairs of a (symmetric, positive-semidefinite)
//! covariance or correlation matrix. For the matrix sizes BlackForest deals
//! with (tens of performance counters), the classic cyclic Jacobi rotation
//! scheme is simple, robust, and more than fast enough, with excellent
//! orthogonality of the computed eigenvectors.

use crate::{LinalgError, Matrix, Result};

/// Eigendecomposition `A = V diag(lambda) V^T` of a symmetric matrix,
/// with eigenvalues sorted in descending order.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Matrix whose *columns* are the corresponding unit eigenvectors.
    pub vectors: Matrix,
}

impl SymmetricEigen {
    /// Computes all eigenpairs of a symmetric matrix.
    ///
    /// Only the symmetric part of the input participates: the routine reads
    /// `(a + a^T)/2` implicitly by averaging mirrored entries, so tiny
    /// asymmetries from floating-point accumulation are harmless.
    pub fn decompose(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        // Work on the symmetrised copy.
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] = 0.5 * (a[(i, j)] + a[(j, i)]);
            }
        }
        let mut v = Matrix::identity(n);
        let scale = m.frobenius_norm().max(1.0);
        let tol = scale * 1e-14;
        const MAX_SWEEPS: usize = 100;
        let mut converged = false;
        for _sweep in 0..MAX_SWEEPS {
            if m.max_off_diagonal() <= tol {
                converged = true;
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = m[(p, q)];
                    if apq.abs() <= tol {
                        continue;
                    }
                    let app = m[(p, p)];
                    let aqq = m[(q, q)];
                    // Jacobi rotation angle.
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = if theta >= 0.0 {
                        1.0 / (theta + (1.0 + theta * theta).sqrt())
                    } else {
                        -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;
                    // Apply the rotation to rows/cols p and q of m.
                    for k in 0..n {
                        let mkp = m[(k, p)];
                        let mkq = m[(k, q)];
                        m[(k, p)] = c * mkp - s * mkq;
                        m[(k, q)] = s * mkp + c * mkq;
                    }
                    for k in 0..n {
                        let mpk = m[(p, k)];
                        let mqk = m[(q, k)];
                        m[(p, k)] = c * mpk - s * mqk;
                        m[(q, k)] = s * mpk + c * mqk;
                    }
                    // Accumulate the rotation into the eigenvector matrix.
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }
        if !converged && m.max_off_diagonal() > tol {
            return Err(LinalgError::NoConvergence {
                algorithm: "jacobi eigendecomposition",
                iterations: MAX_SWEEPS,
            });
        }
        // Extract and sort eigenpairs by descending eigenvalue.
        let mut order: Vec<usize> = (0..n).collect();
        let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
        order.sort_by(|&i, &j| diag[j].partial_cmp(&diag[i]).unwrap());
        let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
        let mut vectors = Matrix::zeros(n, n);
        for (new_col, &old_col) in order.iter().enumerate() {
            // Fix the sign convention: the largest-magnitude component of each
            // eigenvector is positive. This makes results deterministic and
            // comparable between runs (important for factor loadings).
            let column = v.col(old_col);
            let lead = column
                .iter()
                .cloned()
                .max_by(|a, b| a.abs().partial_cmp(&b.abs()).unwrap())
                .unwrap_or(1.0);
            let sign = if lead < 0.0 { -1.0 } else { 1.0 };
            for (row, &val) in column.iter().enumerate() {
                vectors[(row, new_col)] = sign * val;
            }
        }
        Ok(SymmetricEigen { values, vectors })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(e: &SymmetricEigen) -> Matrix {
        let n = e.values.len();
        let mut d = Matrix::zeros(n, n);
        for i in 0..n {
            d[(i, i)] = e.values[i];
        }
        e.vectors
            .matmul(&d)
            .unwrap()
            .matmul(&e.vectors.transpose())
            .unwrap()
    }

    #[test]
    fn diagonal_matrix_eigenvalues_are_its_diagonal_sorted() {
        let a = Matrix::from_rows(&[
            vec![2.0, 0.0, 0.0],
            vec![0.0, 5.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ])
        .unwrap();
        let e = SymmetricEigen::decompose(&a).unwrap();
        assert!((e.values[0] - 5.0).abs() < 1e-12);
        assert!((e.values[1] - 2.0).abs() < 1e-12);
        assert!((e.values[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2_eigenvalues() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let e = SymmetricEigen::decompose(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_matches_input() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, -0.5],
            vec![1.0, 3.0, 0.7],
            vec![-0.5, 0.7, 2.0],
        ])
        .unwrap();
        let e = SymmetricEigen::decompose(&a).unwrap();
        assert!(reconstruct(&e).approx_eq(&a, 1e-9));
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, -0.5],
            vec![1.0, 3.0, 0.7],
            vec![-0.5, 0.7, 2.0],
        ])
        .unwrap();
        let e = SymmetricEigen::decompose(&a).unwrap();
        let vtv = e.vectors.transpose().matmul(&e.vectors).unwrap();
        assert!(vtv.approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn eigenvalue_equation_holds_per_pair() {
        let a = Matrix::from_rows(&[vec![6.0, 2.0], vec![2.0, 3.0]]).unwrap();
        let e = SymmetricEigen::decompose(&a).unwrap();
        for k in 0..2 {
            let v = e.vectors.col(k);
            let av = a.matvec(&v).unwrap();
            for i in 0..2 {
                assert!((av[i] - e.values[k] * v[i]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = Matrix::from_rows(&[
            vec![1.0, 0.3, 0.1],
            vec![0.3, 2.0, -0.2],
            vec![0.1, -0.2, 3.0],
        ])
        .unwrap();
        let e = SymmetricEigen::decompose(&a).unwrap();
        let trace = a[(0, 0)] + a[(1, 1)] + a[(2, 2)];
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-10);
    }

    #[test]
    fn handles_rank_deficient_psd() {
        // Rank-1 outer product: one positive eigenvalue, rest zero.
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        let e = SymmetricEigen::decompose(&a).unwrap();
        assert!((e.values[0] - 5.0).abs() < 1e-12);
        assert!(e.values[1].abs() < 1e-12);
    }

    #[test]
    fn rejects_non_square() {
        assert!(SymmetricEigen::decompose(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(
            SymmetricEigen::decompose(&Matrix::zeros(0, 0)),
            Err(LinalgError::Empty)
        ));
    }

    #[test]
    fn tolerates_slightly_asymmetric_input() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0 + 1e-15], vec![1.0, 2.0]]).unwrap();
        let e = SymmetricEigen::decompose(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
    }
}
