//! Dense linear-algebra substrate for the BlackForest toolchain.
//!
//! BlackForest's statistical layers (PCA, GLM, MARS) need a small amount of
//! classical numerical linear algebra: dense matrices, least-squares solves,
//! and eigendecomposition of symmetric matrices. Rather than pulling a large
//! external stack, this crate implements exactly those pieces from scratch:
//!
//! * [`Matrix`] — a row-major dense matrix of `f64` with the usual algebra.
//! * [`cholesky`] — Cholesky factorisation and SPD solves.
//! * [`qr`] — Householder QR and least-squares solving.
//! * [`eigen`] — the cyclic Jacobi eigendecomposition for symmetric matrices
//!   (what PCA needs for covariance/correlation matrices).
//! * [`stats`] — column-wise summary statistics shared by the model crates.
//!
//! Everything is deterministic and allocation-conscious: factorisations work
//! in place where practical and the API favours borrowing slices over cloning.

// Index-based loops are the clearer idiom throughout this numeric code
// (parallel arrays, in-place matrix updates), so the pedantic lint is off.
#![allow(clippy::needless_range_loop)]

pub mod cholesky;
pub mod eigen;
pub mod matrix;
pub mod qr;
pub mod stats;

pub use cholesky::Cholesky;
pub use eigen::SymmetricEigen;
pub use matrix::Matrix;
pub use qr::QrDecomposition;

/// Errors produced by numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left-hand operand.
        lhs: (usize, usize),
        /// Shape of the right-hand operand.
        rhs: (usize, usize),
    },
    /// The matrix is singular (or numerically so) and cannot be factorised.
    Singular,
    /// The matrix is not positive definite (Cholesky only).
    NotPositiveDefinite,
    /// The matrix is not square but the operation requires one.
    NotSquare {
        /// Actual shape of the offending matrix.
        shape: (usize, usize),
    },
    /// An iterative method failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the algorithm that failed to converge.
        algorithm: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// The input was empty where data is required.
    Empty,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NotPositiveDefinite => write!(f, "matrix is not positive definite"),
            LinalgError::NotSquare { shape } => {
                write!(f, "matrix is {}x{}, expected square", shape.0, shape.1)
            }
            LinalgError::NoConvergence {
                algorithm,
                iterations,
            } => write!(
                f,
                "{algorithm} did not converge after {iterations} iterations"
            ),
            LinalgError::Empty => write!(f, "input is empty"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
