//! Householder QR decomposition and least-squares solving.
//!
//! QR is the numerically robust path for least squares. BlackForest's GLM
//! fitter prefers QR over the normal equations when the design matrix is
//! ill-conditioned, which happens routinely with highly correlated
//! performance counters.

use crate::{LinalgError, Matrix, Result};

/// QR decomposition of an `m x n` matrix with `m >= n`, computed with
/// Householder reflections.
#[derive(Debug, Clone)]
pub struct QrDecomposition {
    /// Packed factorisation: the upper triangle holds `R`, the lower part
    /// holds the essential parts of the Householder vectors.
    qr: Matrix,
    /// Diagonal of `R` (stored separately for clarity and pivot checks).
    r_diag: Vec<f64>,
}

impl QrDecomposition {
    /// Computes the decomposition. Requires `rows >= cols` and a non-empty
    /// matrix.
    pub fn decompose(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(LinalgError::Empty);
        }
        if m < n {
            return Err(LinalgError::ShapeMismatch {
                op: "qr (needs rows >= cols)",
                lhs: (m, n),
                rhs: (n, n),
            });
        }
        let mut qr = a.clone();
        let mut r_diag = vec![0.0; n];
        for k in 0..n {
            // Norm of the k-th column below the diagonal.
            let mut norm = 0.0f64;
            for i in k..m {
                norm = norm.hypot(qr[(i, k)]);
            }
            if norm == 0.0 {
                r_diag[k] = 0.0;
                continue;
            }
            // Flip sign to avoid cancellation.
            if qr[(k, k)] < 0.0 {
                norm = -norm;
            }
            for i in k..m {
                qr[(i, k)] /= norm;
            }
            qr[(k, k)] += 1.0;
            // Apply the reflector to the remaining columns.
            for j in (k + 1)..n {
                let mut s = 0.0;
                for i in k..m {
                    s += qr[(i, k)] * qr[(i, j)];
                }
                s = -s / qr[(k, k)];
                for i in k..m {
                    let vik = qr[(i, k)];
                    qr[(i, j)] += s * vik;
                }
            }
            r_diag[k] = -norm;
        }
        Ok(QrDecomposition { qr, r_diag })
    }

    /// Whether `R` has full rank (no numerically zero diagonal entries).
    pub fn is_full_rank(&self) -> bool {
        let scale = self
            .r_diag
            .iter()
            .fold(0.0f64, |acc, v| acc.max(v.abs()))
            .max(1.0);
        self.r_diag.iter().all(|d| d.abs() > scale * 1e-12)
    }

    /// Solves the least-squares problem `min ||A x - b||_2`.
    ///
    /// Returns [`LinalgError::Singular`] when `A` is rank deficient.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = self.qr.shape();
        if b.len() != m {
            return Err(LinalgError::ShapeMismatch {
                op: "qr solve",
                lhs: (m, n),
                rhs: (b.len(), 1),
            });
        }
        if !self.is_full_rank() {
            return Err(LinalgError::Singular);
        }
        let mut y = b.to_vec();
        // Apply Q^T to b.
        for k in 0..n {
            if self.qr[(k, k)] == 0.0 {
                continue;
            }
            let mut s = 0.0;
            for i in k..m {
                s += self.qr[(i, k)] * y[i];
            }
            s = -s / self.qr[(k, k)];
            for i in k..m {
                y[i] += s * self.qr[(i, k)];
            }
        }
        // Back-substitute R x = y[..n].
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.qr[(i, j)] * x[j];
            }
            x[i] = s / self.r_diag[i];
        }
        Ok(x)
    }
}

/// One-shot least squares: `argmin_x ||A x - b||`, falling back to a
/// ridge-regularised normal-equation solve if `A` is rank deficient.
pub fn least_squares(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    match QrDecomposition::decompose(a)?.solve(b) {
        Ok(x) => Ok(x),
        Err(LinalgError::Singular) => {
            crate::cholesky::solve_spd_ridge(&a.gram(), &a.t_matvec(b)?, 1e-8)
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_square_system_exactly() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let x_true = vec![0.5, -1.5];
        let b = a.matvec(&x_true).unwrap();
        let x = QrDecomposition::decompose(&a).unwrap().solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(x_true.iter()) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn overdetermined_recovers_generating_coefficients() {
        // y = 3 + 2x sampled without noise at 5 points.
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![1.0, x]).collect();
        let a = Matrix::from_rows(&rows).unwrap();
        let b: Vec<f64> = xs.iter().map(|&x| 3.0 + 2.0 * x).collect();
        let x = least_squares(&a, &b).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn least_squares_minimises_residual() {
        // Inconsistent system: the LS solution must beat nearby candidates.
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let b = vec![0.0, 2.0, 1.0];
        let x = least_squares(&a, &b).unwrap();
        let resid = |x: &[f64]| -> f64 {
            a.matvec(x)
                .unwrap()
                .iter()
                .zip(b.iter())
                .map(|(p, t)| (p - t) * (p - t))
                .sum()
        };
        let base = resid(&x);
        for dx in [[0.1, 0.0], [-0.1, 0.0], [0.0, 0.1], [0.0, -0.1]] {
            let cand = [x[0] + dx[0], x[1] + dx[1]];
            assert!(resid(&cand) >= base - 1e-12);
        }
    }

    #[test]
    fn detects_rank_deficiency() {
        // Second column is twice the first.
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
        let qr = QrDecomposition::decompose(&a).unwrap();
        assert!(!qr.is_full_rank());
        assert!(matches!(
            qr.solve(&[1.0, 2.0, 3.0]),
            Err(LinalgError::Singular)
        ));
    }

    #[test]
    fn least_squares_survives_rank_deficiency_via_ridge() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
        let x = least_squares(&a, &[1.0, 2.0, 3.0]).unwrap();
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn rejects_underdetermined() {
        let a = Matrix::zeros(2, 3);
        assert!(QrDecomposition::decompose(&a).is_err());
    }

    #[test]
    fn rejects_empty() {
        let a = Matrix::zeros(0, 0);
        assert!(matches!(
            QrDecomposition::decompose(&a),
            Err(LinalgError::Empty)
        ));
    }

    #[test]
    fn solve_rejects_wrong_rhs_length() {
        let a = Matrix::identity(3);
        let qr = QrDecomposition::decompose(&a).unwrap();
        assert!(qr.solve(&[1.0]).is_err());
    }
}
