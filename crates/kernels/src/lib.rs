//! Workloads for the GPU simulator: the kernels the paper studies.
//!
//! Three applications, re-implemented from their reference CUDA sources so
//! that both the *algorithms* (validated against CPU references) and the
//! *address patterns* (fed to the simulator as traces) are faithful:
//!
//! * [`reduce`] — the seven CUDA SDK parallel-reduction kernels
//!   (`reduce0`..`reduce6`), each embodying one optimisation step of Mark
//!   Harris's classic tutorial. The paper analyses kernels 1, 2 and 6 (§5).
//! * [`matmul`] — naive and shared-memory-tiled matrix multiplication
//!   (CUDA SDK `matrixMul`), the paper's first prediction case study (§6.1.1).
//! * [`nw`] — Needleman-Wunsch sequence alignment (Rodinia `needle`),
//!   processed in diagonal strips with 16-thread blocks, the paper's second
//!   case study (§6.1.2).
//! * [`stencil`] — a 2D Jacobi 5-point stencil: an extension workload beyond
//!   the paper's evaluation (§7 lists "more applications" as current work).
//!
//! Every module exposes:
//! 1. a **functional implementation** that computes the same result as the
//!    CUDA kernel in the same evaluation order (tested against a sequential
//!    reference), and
//! 2. one or more [`gpu_sim::KernelTrace`] implementations generating the
//!    kernel's exact per-warp address streams, plus
//! 3. a **host driver** assembling the multi-launch application the paper
//!    profiles (multi-pass reduction; per-diagonal NW launches).

// Index-based loops are the clearer idiom throughout this numeric code
// (parallel arrays, in-place matrix updates), so the pedantic lint is off.
#![allow(clippy::needless_range_loop)]

pub mod matmul;
pub mod nw;
pub mod reduce;
pub mod stencil;

use gpu_sim::{profile_application, GpuConfig, KernelTrace, ProfiledRun};

/// Version of this crate's trace generators, folded into every
/// [`KernelTrace::content_tag`] digest. Bump it whenever ANY generator's
/// emitted instruction streams change (addresses, masks, folding, ordering)
/// — stale memoized results keyed on the old tag then stop matching, both
/// in memory and in the persistent disk cache.
pub const TRACE_GEN_VERSION: u64 = 1;

/// Builds the [`KernelTrace::content_tag`] digest used by every kernel in
/// this crate: one [`gpu_sim::Bf128Hasher`] pass over
/// (generator version, per-type tag, the kernel's complete field set).
pub(crate) fn content_tag128<F: std::hash::Hash>(type_tag: u64, fields: &F) -> u128 {
    use std::hash::Hash;
    let mut h = gpu_sim::Bf128Hasher::new();
    TRACE_GEN_VERSION.hash(&mut h);
    type_tag.hash(&mut h);
    fields.hash(&mut h);
    h.finish128()
}

/// Base address of the primary input array in the simulated address space.
pub const INPUT_BASE: u64 = 0x1000_0000;
/// Base address of the secondary input array.
pub const INPUT2_BASE: u64 = 0x5000_0000;
/// Base address of the output array.
pub const OUTPUT_BASE: u64 = 0x9000_0000;
/// Base address of scratch/auxiliary arrays.
pub const SCRATCH_BASE: u64 = 0xD000_0000;

/// A complete application run: a named sequence of kernel launches, ready to
/// be profiled as one unit (the way the paper's data collection treats one
/// benchmark execution).
pub struct Application {
    /// Application name (e.g. "reduce1", "matrixMul", "needle").
    pub name: String,
    /// The launches, in issue order.
    pub launches: Vec<Box<dyn KernelTrace>>,
}

impl Application {
    /// Profiles the whole application on a GPU: every launch is simulated,
    /// events are accumulated, and one counter set is derived.
    pub fn profile(&self, gpu: &GpuConfig) -> gpu_sim::Result<ProfiledRun> {
        profile_application(gpu, &self.name, &self.launches)
    }

    /// The distinct kernel names launched by this application, in first-seen
    /// order — e.g. NW yields its two diagonal kernels, a multi-pass
    /// reduction yields one name. Static-analysis reports aggregate by these.
    pub fn kernel_names(&self) -> Vec<String> {
        let mut names: Vec<String> = Vec::new();
        for launch in &self.launches {
            let n = launch.name();
            if !names.contains(&n) {
                names.push(n);
            }
        }
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_names_dedup_in_first_seen_order() {
        let app = crate::nw::nw_application(256, 10);
        let names = app.kernel_names();
        assert!(
            names.len() >= 2,
            "NW launches two diagonal kernels: {names:?}"
        );
        assert!(names.len() < app.launches.len(), "names must be deduped");
        for (i, n) in names.iter().enumerate() {
            assert!(!names[i + 1..].contains(n), "duplicate kernel name {n}");
        }
        // First-seen order: the first name is the first launch's kernel.
        assert_eq!(names[0], app.launches[0].name());
    }

    #[test]
    fn address_regions_do_not_overlap_for_gigabyte_arrays() {
        let gig = 1u64 << 30;
        assert!(INPUT_BASE + gig <= INPUT2_BASE);
        assert!(INPUT2_BASE + gig <= OUTPUT_BASE);
        assert!(OUTPUT_BASE + gig <= SCRATCH_BASE);
    }
}
