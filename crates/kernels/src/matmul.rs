//! Matrix multiplication: the CUDA SDK `matrixMul` kernel (tiled, shared
//! memory) and a naive global-memory baseline.
//!
//! The tiled kernel is the paper's first prediction case study (§6.1.1):
//! `C = A x B` for `n x n` matrices, computed by a grid of `(n/b) x (n/b)`
//! thread blocks, each loading `b x b` tiles of A and B into shared memory
//! and accumulating partial dot products. The kernel performs `O(n^3)`
//! arithmetic against `O(n^2)` unique data, is store-unbalanced (one store
//! per `b` tile-loads, the imbalance behind the paper's observation that
//! *store* throughput counters dominate variable importance), and is
//! bandwidth-limited at large sizes.

use crate::{Application, INPUT2_BASE, INPUT_BASE, OUTPUT_BASE};
use gpu_sim::trace::{BlockTrace, KernelTrace, LaunchConfig, WarpInstruction};
use gpu_sim::GpuConfig;

/// Tile edge (the SDK's BLOCK_SIZE): 16 threads in x and y.
pub const BLOCK_SIZE: usize = 16;

// ---------------------------------------------------------------------------
// Functional implementations
// ---------------------------------------------------------------------------

/// Naive row-major reference multiply (f64 accumulation).
pub fn matmul_reference(a: &[f32], b: &[f32], n: usize) -> Vec<f32> {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n * n);
    let mut c = vec![0.0f32; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0f64;
            for k in 0..n {
                acc += a[i * n + k] as f64 * b[k * n + j] as f64;
            }
            c[i * n + j] = acc as f32;
        }
    }
    c
}

/// Tiled multiply in the exact accumulation order of the CUDA kernel
/// (per-thread f32 accumulator, tiles consumed in k order), with the
/// SDK-default 16x16 tiles.
pub fn matmul_tiled(a: &[f32], b: &[f32], n: usize) -> Vec<f32> {
    matmul_tiled_with(a, b, n, BLOCK_SIZE)
}

/// Tiled multiply with an explicit tile edge `t` (must divide `n`).
pub fn matmul_tiled_with(a: &[f32], b: &[f32], n: usize, t: usize) -> Vec<f32> {
    assert!(
        t >= 1 && n.is_multiple_of(t),
        "n must be a multiple of the tile edge"
    );
    let nb = n / t;
    let mut c = vec![0.0f32; n * n];
    let mut a_s = vec![0.0f32; t * t];
    let mut b_s = vec![0.0f32; t * t];
    let mut acc = vec![0.0f32; t * t];
    for by in 0..nb {
        for bx in 0..nb {
            acc.iter_mut().for_each(|v| *v = 0.0);
            for m in 0..nb {
                // Cooperative tile loads.
                for ty in 0..t {
                    for tx in 0..t {
                        a_s[ty * t + tx] = a[(by * t + ty) * n + m * t + tx];
                        b_s[ty * t + tx] = b[(m * t + ty) * n + bx * t + tx];
                    }
                }
                // Partial dot products.
                for ty in 0..t {
                    for tx in 0..t {
                        let mut sum = acc[ty * t + tx];
                        for k in 0..t {
                            sum += a_s[ty * t + k] * b_s[k * t + tx];
                        }
                        acc[ty * t + tx] = sum;
                    }
                }
            }
            for ty in 0..t {
                for tx in 0..t {
                    c[(by * t + ty) * n + bx * t + tx] = acc[ty * t + tx];
                }
            }
        }
    }
    c
}

// ---------------------------------------------------------------------------
// Trace generation
// ---------------------------------------------------------------------------

/// The tiled `matrixMul` kernel as a simulator trace.
#[derive(Debug, Clone)]
pub struct MatmulTiled {
    /// Matrix edge; must be a multiple of `tile`.
    pub n: usize,
    /// Tile edge (the CUDA BLOCK_SIZE): 8, 16, or 32. The SDK ships 16 and
    /// 32; `tile` is a tunable problem characteristic for block-size
    /// studies.
    pub tile: usize,
}

impl MatmulTiled {
    /// The SDK-default 16x16 tiling.
    pub fn new(n: usize) -> MatmulTiled {
        MatmulTiled {
            n,
            tile: BLOCK_SIZE,
        }
    }

    fn check(&self) {
        assert!(matches!(self.tile, 8 | 16 | 32), "tile must be 8, 16 or 32");
        assert!(
            self.n.is_multiple_of(self.tile),
            "n must be a multiple of tile"
        );
    }
}

/// The naive one-thread-per-element kernel (baseline; every k-iteration
/// reads A and B from global memory).
#[derive(Debug, Clone)]
pub struct MatmulNaive {
    /// Matrix edge; must be a multiple of [`BLOCK_SIZE`].
    pub n: usize,
}

/// Row-major element address of matrix at `base`.
fn elem(base: u64, n: usize, row: usize, col: usize) -> u64 {
    base + ((row * n + col) as u64) * 4
}

/// Per-warp thread coordinates for a `t x t` block: thread id
/// `tid = w*32 + lane` maps to `tx = tid % t`, `ty = tid / t` (row-major
/// thread layout, CUDA's convention).
fn warp_coords(w: usize, t: usize) -> impl Iterator<Item = (usize, usize, usize)> {
    (0..32).map(move |lane| {
        let tid = w * 32 + lane;
        (lane, tid % t, tid / t)
    })
}

impl KernelTrace for MatmulTiled {
    fn name(&self) -> String {
        "matrixMul".into()
    }

    fn launch_config(&self) -> LaunchConfig {
        self.check();
        let t = self.tile;
        let nb = self.n / t;
        LaunchConfig {
            grid_blocks: nb * nb,
            threads_per_block: t * t,
            regs_per_thread: 21,
            shared_mem_per_block: 2 * t * t * 4,
        }
    }

    fn content_tag(&self) -> Option<u128> {
        // `block_trace` below reads only (n, tile), block_id, and
        // gpu.warp_size (covered by the memo key's GPU fingerprint).
        Some(crate::content_tag128(0x6D74, &(self.n, self.tile))) // "mt"
    }

    fn block_trace(&self, block_id: usize, gpu: &GpuConfig) -> BlockTrace {
        self.check();
        let n = self.n;
        let t = self.tile;
        let nb = n / t;
        let (bx, by) = (block_id % nb, block_id / nb);
        let warps = (t * t).div_ceil(gpu.warp_size);
        let mut trace = BlockTrace::with_warps(warps);
        let bs_base = (t * t * 4) as u32; // Bs after As

        for m in 0..nb {
            for w in 0..warps {
                let stream = &mut trace.warps[w];
                // Index arithmetic for the tile loads.
                stream.push(WarpInstruction::Alu {
                    count: 4,
                    mask: u32::MAX,
                });
                // Load A[by*t+ty][m*t+tx] -> As[ty][tx].
                let mut a_addrs = vec![0u64; 32];
                let mut as_off = vec![0u32; 32];
                let mut b_addrs = vec![0u64; 32];
                let mut bs_off = vec![0u32; 32];
                for (lane, tx, ty) in warp_coords(w, t) {
                    a_addrs[lane] = elem(INPUT_BASE, n, by * t + ty, m * t + tx);
                    as_off[lane] = ((ty * t + tx) * 4) as u32;
                    b_addrs[lane] = elem(INPUT2_BASE, n, m * t + ty, bx * t + tx);
                    bs_off[lane] = bs_base + ((ty * t + tx) * 4) as u32;
                }
                stream.push(WarpInstruction::LoadGlobal {
                    addrs: a_addrs,
                    width: 4,
                    mask: u32::MAX,
                });
                stream.push(WarpInstruction::StoreShared {
                    offsets: as_off,
                    width: 4,
                    mask: u32::MAX,
                });
                stream.push(WarpInstruction::LoadGlobal {
                    addrs: b_addrs,
                    width: 4,
                    mask: u32::MAX,
                });
                stream.push(WarpInstruction::StoreShared {
                    offsets: bs_off,
                    width: 4,
                    mask: u32::MAX,
                });
                stream.push(WarpInstruction::Barrier);
                // t multiply-accumulate steps.
                for k in 0..t {
                    let mut as_k = vec![0u32; 32];
                    let mut bs_k = vec![0u32; 32];
                    for (lane, tx, ty) in warp_coords(w, t) {
                        as_k[lane] = ((ty * t + k) * 4) as u32;
                        bs_k[lane] = bs_base + ((k * t + tx) * 4) as u32;
                    }
                    stream.push(WarpInstruction::LoadShared {
                        offsets: as_k,
                        width: 4,
                        mask: u32::MAX,
                    });
                    stream.push(WarpInstruction::LoadShared {
                        offsets: bs_k,
                        width: 4,
                        mask: u32::MAX,
                    });
                    stream.push(WarpInstruction::Alu {
                        count: 1,
                        mask: u32::MAX,
                    });
                }
                stream.push(WarpInstruction::Barrier);
            }
        }
        // Store C[by*t+ty][bx*t+tx].
        for w in 0..warps {
            let stream = &mut trace.warps[w];
            stream.push(WarpInstruction::Alu {
                count: 3,
                mask: u32::MAX,
            });
            let mut c_addrs = vec![0u64; 32];
            for (lane, tx, ty) in warp_coords(w, t) {
                c_addrs[lane] = elem(OUTPUT_BASE, n, by * t + ty, bx * t + tx);
            }
            stream.push(WarpInstruction::StoreGlobal {
                addrs: c_addrs,
                width: 4,
                mask: u32::MAX,
            });
        }
        trace
    }
}

impl KernelTrace for MatmulNaive {
    fn name(&self) -> String {
        "matrixMulNaive".into()
    }

    fn launch_config(&self) -> LaunchConfig {
        let nb = self.n / BLOCK_SIZE;
        LaunchConfig {
            grid_blocks: nb * nb,
            threads_per_block: BLOCK_SIZE * BLOCK_SIZE,
            regs_per_thread: 14,
            shared_mem_per_block: 0,
        }
    }

    fn content_tag(&self) -> Option<u128> {
        // `block_trace` below reads only `n`, block_id, and gpu.warp_size
        // (covered by the memo key's GPU fingerprint).
        Some(crate::content_tag128(0x6D6E, &(self.n,))) // "mn"
    }

    fn block_trace(&self, block_id: usize, gpu: &GpuConfig) -> BlockTrace {
        let n = self.n;
        let nb = n / BLOCK_SIZE;
        let (bx, by) = (block_id % nb, block_id / nb);
        let warps = (BLOCK_SIZE * BLOCK_SIZE).div_ceil(gpu.warp_size);
        let mut trace = BlockTrace::with_warps(warps);
        for w in 0..warps {
            let stream = &mut trace.warps[w];
            stream.push(WarpInstruction::Alu {
                count: 4,
                mask: u32::MAX,
            });
            for k in 0..n {
                let mut a_addrs = vec![0u64; 32];
                let mut b_addrs = vec![0u64; 32];
                for (lane, tx, ty) in warp_coords(w, BLOCK_SIZE) {
                    // A[row][k] is a per-row broadcast; B[k][col] is coalesced.
                    a_addrs[lane] = elem(INPUT_BASE, n, by * BLOCK_SIZE + ty, k);
                    b_addrs[lane] = elem(INPUT2_BASE, n, k, bx * BLOCK_SIZE + tx);
                }
                stream.push(WarpInstruction::LoadGlobal {
                    addrs: a_addrs,
                    width: 4,
                    mask: u32::MAX,
                });
                stream.push(WarpInstruction::LoadGlobal {
                    addrs: b_addrs,
                    width: 4,
                    mask: u32::MAX,
                });
                stream.push(WarpInstruction::Alu {
                    count: 1,
                    mask: u32::MAX,
                });
            }
            let mut c_addrs = vec![0u64; 32];
            for (lane, tx, ty) in warp_coords(w, BLOCK_SIZE) {
                c_addrs[lane] = elem(OUTPUT_BASE, n, by * BLOCK_SIZE + ty, bx * BLOCK_SIZE + tx);
            }
            stream.push(WarpInstruction::StoreGlobal {
                addrs: c_addrs,
                width: 4,
                mask: u32::MAX,
            });
        }
        trace
    }
}

/// The single-launch `matrixMul` application for an `n x n` problem
/// (SDK-default 16x16 tiles).
pub fn matmul_application(n: usize) -> Application {
    Application {
        name: "matrixMul".into(),
        launches: vec![Box::new(MatmulTiled::new(n))],
    }
}

/// `matrixMul` with an explicit tile size (8, 16 or 32).
pub fn matmul_application_tiled(n: usize, tile: usize) -> Application {
    Application {
        name: "matrixMul".into(),
        launches: vec![Box::new(MatmulTiled { n, tile })],
    }
}

/// The naive baseline as an application.
pub fn matmul_naive_application(n: usize) -> Application {
    Application {
        name: "matrixMulNaive".into(),
        launches: vec![Box::new(MatmulNaive { n })],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(n: usize) -> (Vec<f32>, Vec<f32>) {
        let a = (0..n * n).map(|i| ((i * 37) % 19) as f32 / 19.0).collect();
        let b = (0..n * n).map(|i| ((i * 53) % 23) as f32 / 23.0).collect();
        (a, b)
    }

    #[test]
    fn tiled_matches_reference() {
        let n = 48;
        let (a, b) = inputs(n);
        let want = matmul_reference(&a, &b, n);
        let got = matmul_tiled(&a, &b, n);
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g - w).abs() < 1e-2, "{g} vs {w}");
        }
    }

    #[test]
    fn identity_times_matrix_is_matrix() {
        let n = 32;
        let mut a = vec![0.0f32; n * n];
        for i in 0..n {
            a[i * n + i] = 1.0;
        }
        let (_, b) = inputs(n);
        let got = matmul_tiled(&a, &b, n);
        for (g, w) in got.iter().zip(b.iter()) {
            assert!((g - w).abs() < 1e-6);
        }
    }

    #[test]
    fn trace_is_valid_and_sized_correctly() {
        let gpu = GpuConfig::gtx580();
        let k = MatmulTiled::new(128);
        assert_eq!(k.launch_config().grid_blocks, 64);
        let t = k.block_trace(0, &gpu);
        t.validate().unwrap();
        assert_eq!(t.warps.len(), 8);
        // Phases = 8 tiles; each warp has 2 barriers per phase.
        let barriers = t.warps[0]
            .iter()
            .filter(|i| matches!(i, WarpInstruction::Barrier))
            .count();
        assert_eq!(barriers, 16);
    }

    #[test]
    fn tile_loads_are_two_transactions_per_warp() {
        // Each warp covers 2 rows of 16 consecutive floats: 64 bytes per row,
        // rows n*4 bytes apart -> 2 L1 transactions for n >= 32.
        let gpu = GpuConfig::gtx580();
        let k = MatmulTiled::new(256);
        let t = k.block_trace(3, &gpu);
        for instr in &t.warps[0] {
            if let WarpInstruction::LoadGlobal { addrs, width, mask } = instr {
                let trans = gpu_sim::coalesce::coalesce(addrs, *width, *mask, 128);
                assert!(trans.len() <= 2, "expected <=2 lines, got {}", trans.len());
            }
        }
    }

    #[test]
    fn shared_accesses_are_conflict_free() {
        let gpu = GpuConfig::gtx580();
        let k = MatmulTiled::new(128);
        let t = k.block_trace(0, &gpu);
        for stream in &t.warps {
            for instr in stream {
                if let WarpInstruction::LoadShared {
                    offsets,
                    width,
                    mask,
                }
                | WarpInstruction::StoreShared {
                    offsets,
                    width,
                    mask,
                } = instr
                {
                    assert_eq!(gpu_sim::banks::replays(offsets, *width, *mask, 32, 4), 0);
                }
            }
        }
    }

    #[test]
    fn profile_scales_superlinearly_with_n() {
        let gpu = GpuConfig::gtx580();
        let t64 = matmul_application(64).profile(&gpu).unwrap().time_ms;
        let t256 = matmul_application(256).profile(&gpu).unwrap().time_ms;
        // 4x the size -> 64x the flops; with overheads expect >> 8x time.
        assert!(t256 > t64 * 8.0, "t64={t64} t256={t256}");
    }

    #[test]
    fn loads_dwarf_stores() {
        let gpu = GpuConfig::gtx580();
        let run = matmul_application(256).profile(&gpu).unwrap();
        let gld = run.counters.get("gld_request").unwrap();
        let gst = run.counters.get("gst_request").unwrap();
        // 2 loads per thread per phase (16 phases at n=256) vs 1 store.
        assert!(gld > 20.0 * gst, "gld={gld} gst={gst}");
    }

    #[test]
    fn naive_is_slower_than_tiled() {
        let gpu = GpuConfig::gtx580();
        let tiled = matmul_application(256).profile(&gpu).unwrap().time_ms;
        let naive = matmul_naive_application(256).profile(&gpu).unwrap().time_ms;
        assert!(naive > tiled, "naive {naive} vs tiled {tiled}");
    }

    #[test]
    fn all_tile_sizes_compute_the_same_product() {
        let n = 64;
        let (a, b) = inputs(n);
        let want = matmul_reference(&a, &b, n);
        for t in [8usize, 16, 32] {
            let got = matmul_tiled_with(&a, &b, n, t);
            for (g, w) in got.iter().zip(want.iter()) {
                assert!((g - w).abs() < 1e-2, "tile {t}: {g} vs {w}");
            }
        }
    }

    #[test]
    fn tile_size_changes_launch_geometry_and_traces_validate() {
        let gpu = GpuConfig::gtx580();
        for t in [8usize, 16, 32] {
            let k = MatmulTiled { n: 128, tile: t };
            let lc = k.launch_config();
            assert_eq!(lc.threads_per_block, t * t);
            assert_eq!(lc.grid_blocks, (128 / t) * (128 / t));
            k.block_trace(0, &gpu).validate().unwrap();
        }
    }

    #[test]
    fn tile32_reduces_global_traffic_per_flop() {
        // Bigger tiles reuse each loaded element more: fewer load requests
        // for the same n.
        let gpu = GpuConfig::gtx580();
        let r16 = matmul_application_tiled(256, 16).profile(&gpu).unwrap();
        let r32 = matmul_application_tiled(256, 32).profile(&gpu).unwrap();
        assert!(
            r32.counters.get("gld_request").unwrap() < r16.counters.get("gld_request").unwrap()
        );
    }

    #[test]
    fn occupancy_is_warp_limited_for_tiled_mm() {
        let gpu = GpuConfig::gtx580();
        let run = matmul_application(512).profile(&gpu).unwrap();
        let occ = run.counters.get("achieved_occupancy").unwrap();
        assert!(occ > 0.5, "occupancy {occ}");
    }
}
