//! The CUDA SDK parallel-reduction kernels, `reduce0` .. `reduce6`.
//!
//! Each variant reproduces one step of Mark Harris's "Optimizing Parallel
//! Reduction in CUDA" tutorial, which is exactly the benchmark the paper's
//! §5 dissects:
//!
//! | # | technique | characteristic bottleneck |
//! |---|-----------|---------------------------|
//! | 0 | interleaved addressing, modulo branch | warp divergence |
//! | 1 | interleaved addressing, strided index | **shared-memory bank conflicts** (paper §5.2) |
//! | 2 | sequential addressing | idle threads, memory-subsystem bound (§5.3) |
//! | 3 | first add during global load | halved block count |
//! | 4 | unroll last warp | sync overhead removed in final steps |
//! | 5 | completely unrolled | loop overhead removed |
//! | 6 | multiple elements per thread (grid-stride) | bandwidth-bound steady state (§5.4) |
//!
//! The functional implementations execute the *same floating-point operations
//! in the same order* as the CUDA code (SIMD lockstep semantics for the
//! warp-synchronous tail), and the trace generators reproduce the same
//! shared/global address patterns, including the bank-conflict-inducing
//! `index = 2*s*tid` of `reduce1`.

use crate::{Application, INPUT_BASE, OUTPUT_BASE};
use gpu_sim::trace::{BlockTrace, KernelTrace, LaunchConfig, WarpInstruction};
use gpu_sim::GpuConfig;
use serde::{Deserialize, Serialize};

/// Which reduction kernel variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReduceVariant {
    /// Interleaved addressing with divergent modulo branching.
    Reduce0,
    /// Interleaved addressing with strided indexing (bank conflicts).
    Reduce1,
    /// Sequential addressing.
    Reduce2,
    /// First add during global load.
    Reduce3,
    /// Unrolled last warp.
    Reduce4,
    /// Completely unrolled.
    Reduce5,
    /// Multiple elements per thread (grid-stride loop).
    Reduce6,
}

impl ReduceVariant {
    /// All seven variants in tutorial order.
    pub const ALL: [ReduceVariant; 7] = [
        ReduceVariant::Reduce0,
        ReduceVariant::Reduce1,
        ReduceVariant::Reduce2,
        ReduceVariant::Reduce3,
        ReduceVariant::Reduce4,
        ReduceVariant::Reduce5,
        ReduceVariant::Reduce6,
    ];

    /// Kernel name, e.g. `"reduce1"`.
    pub fn name(&self) -> &'static str {
        match self {
            ReduceVariant::Reduce0 => "reduce0",
            ReduceVariant::Reduce1 => "reduce1",
            ReduceVariant::Reduce2 => "reduce2",
            ReduceVariant::Reduce3 => "reduce3",
            ReduceVariant::Reduce4 => "reduce4",
            ReduceVariant::Reduce5 => "reduce5",
            ReduceVariant::Reduce6 => "reduce6",
        }
    }

    /// Elements consumed per thread block in one pass.
    pub fn elems_per_block(&self, threads: usize) -> usize {
        match self {
            ReduceVariant::Reduce0 | ReduceVariant::Reduce1 | ReduceVariant::Reduce2 => threads,
            _ => threads * 2,
        }
    }

    /// Grid size for a pass over `n` elements (reduce6 uses a capped grid
    /// with a grid-stride loop, like the SDK benchmark).
    pub fn grid_for(&self, n: usize, threads: usize) -> usize {
        let per_block = self.elems_per_block(threads);
        let blocks = n.div_ceil(per_block).max(1);
        match self {
            ReduceVariant::Reduce6 => blocks.min(64),
            _ => blocks,
        }
    }
}

// ---------------------------------------------------------------------------
// Functional implementations (value-accurate, same op order as the CUDA code)
// ---------------------------------------------------------------------------

/// Runs one block of the given variant over shared memory, in the exact
/// evaluation order of the CUDA kernel. `sdata` has `threads` elements,
/// preloaded by the caller. Returns `sdata[0]`.
fn block_reduce(variant: ReduceVariant, sdata: &mut [f32]) -> f32 {
    let t = sdata.len();
    match variant {
        ReduceVariant::Reduce0 => {
            let mut s = 1;
            while s < t {
                step_snapshot(sdata, |tid| {
                    if tid % (2 * s) == 0 && tid + s < t {
                        Some((tid, tid + s))
                    } else {
                        None
                    }
                });
                s *= 2;
            }
        }
        ReduceVariant::Reduce1 => {
            let mut s = 1;
            while s < t {
                step_snapshot(sdata, |tid| {
                    let index = 2 * s * tid;
                    if index + s < t {
                        Some((index, index + s))
                    } else {
                        None
                    }
                });
                s *= 2;
            }
        }
        ReduceVariant::Reduce2 => {
            let mut s = t / 2;
            while s > 0 {
                step_snapshot(
                    sdata,
                    |tid| if tid < s { Some((tid, tid + s)) } else { None },
                );
                s /= 2;
            }
        }
        // Variants 3..6 share the sequential loop; 4..6 run the last warp
        // without barriers (warp-synchronous), which in lockstep SIMD
        // semantics is the same read-all-then-write-all step.
        ReduceVariant::Reduce3 => {
            let mut s = t / 2;
            while s > 0 {
                step_snapshot(
                    sdata,
                    |tid| if tid < s { Some((tid, tid + s)) } else { None },
                );
                s /= 2;
            }
        }
        ReduceVariant::Reduce4 | ReduceVariant::Reduce5 | ReduceVariant::Reduce6 => {
            let mut s = t / 2;
            while s > 32 {
                step_snapshot(
                    sdata,
                    |tid| if tid < s { Some((tid, tid + s)) } else { None },
                );
                s /= 2;
            }
            // Warp-synchronous tail: all 32 lanes execute each step.
            let mut s = 32.min(t / 2);
            while s > 0 {
                step_snapshot(sdata, |tid| {
                    if tid < 32 && tid + s < t {
                        Some((tid, tid + s))
                    } else {
                        None
                    }
                });
                s /= 2;
            }
        }
    }
    sdata[0]
}

/// One reduction step with SIMD lockstep semantics: all participating lanes
/// read the old values, then all write.
fn step_snapshot(sdata: &mut [f32], pick: impl Fn(usize) -> Option<(usize, usize)>) {
    let snapshot: Vec<(usize, f32)> = (0..sdata.len())
        .filter_map(|tid| pick(tid).map(|(dst, src)| (dst, sdata[src])))
        .collect();
    for (dst, add) in snapshot {
        sdata[dst] += add;
    }
}

/// Runs one full pass of a variant over `input`, producing one partial sum
/// per block (exact CUDA semantics including grid-stride for reduce6).
pub fn reduce_pass(variant: ReduceVariant, input: &[f32], threads: usize) -> Vec<f32> {
    assert!(
        threads >= 64 && threads.is_power_of_two(),
        "threads must be a power of two >= 64"
    );
    let n = input.len();
    let grid = variant.grid_for(n, threads);
    let mut out = Vec::with_capacity(grid);
    for b in 0..grid {
        let mut sdata = vec![0.0f32; threads];
        match variant {
            ReduceVariant::Reduce0 | ReduceVariant::Reduce1 | ReduceVariant::Reduce2 => {
                for tid in 0..threads {
                    let i = b * threads + tid;
                    sdata[tid] = if i < n { input[i] } else { 0.0 };
                }
            }
            ReduceVariant::Reduce3 | ReduceVariant::Reduce4 | ReduceVariant::Reduce5 => {
                for tid in 0..threads {
                    let i = b * threads * 2 + tid;
                    let mut v = if i < n { input[i] } else { 0.0 };
                    if i + threads < n {
                        v += input[i + threads];
                    }
                    sdata[tid] = v;
                }
            }
            ReduceVariant::Reduce6 => {
                let grid_size = threads * 2 * grid;
                for tid in 0..threads {
                    let mut i = b * threads * 2 + tid;
                    let mut sum = 0.0f32;
                    while i < n {
                        sum += input[i];
                        if i + threads < n {
                            sum += input[i + threads];
                        }
                        i += grid_size;
                    }
                    sdata[tid] = sum;
                }
            }
        }
        out.push(block_reduce(variant, &mut sdata));
    }
    out
}

/// Reduces `input` to a single value with repeated passes, exactly as the
/// SDK benchmark's host loop does.
pub fn reduce_full(variant: ReduceVariant, input: &[f32], threads: usize) -> f32 {
    let mut data = input.to_vec();
    while data.len() > 1 {
        data = reduce_pass(variant, &data, threads);
    }
    data.first().copied().unwrap_or(0.0)
}

// ---------------------------------------------------------------------------
// Trace generation
// ---------------------------------------------------------------------------

/// One reduction kernel launch (one pass) as a simulator trace.
#[derive(Debug, Clone)]
pub struct ReduceKernel {
    /// Variant to trace.
    pub variant: ReduceVariant,
    /// Elements in this pass.
    pub n: usize,
    /// Threads per block.
    pub threads: usize,
    /// Base address of the pass input.
    pub input_base: u64,
    /// Base address of the pass output (per-block partials).
    pub output_base: u64,
}

impl ReduceKernel {
    /// Lane mask of warp `w` selecting threads for which `pred(tid)` holds.
    fn mask_where(&self, w: usize, pred: impl Fn(usize) -> bool) -> u32 {
        let mut mask = 0u32;
        for lane in 0..32 {
            let tid = w * 32 + lane;
            if tid < self.threads && pred(tid) {
                mask |= 1 << lane;
            }
        }
        mask
    }

    /// Emits the `sdata[dst(tid)] += sdata[src(tid)]` step for one warp:
    /// two shared loads, the add, and the shared store.
    fn emit_step(
        stream: &mut Vec<WarpInstruction>,
        w: usize,
        mask: u32,
        dst: impl Fn(usize) -> usize,
        src: impl Fn(usize) -> usize,
    ) {
        if mask == 0 {
            return;
        }
        let offsets_src: Vec<u32> = (0..32)
            .map(|lane| {
                let tid = w * 32 + lane;
                if mask & (1 << lane) != 0 {
                    (src(tid) * 4) as u32
                } else {
                    0
                }
            })
            .collect();
        let offsets_dst: Vec<u32> = (0..32)
            .map(|lane| {
                let tid = w * 32 + lane;
                if mask & (1 << lane) != 0 {
                    (dst(tid) * 4) as u32
                } else {
                    0
                }
            })
            .collect();
        stream.push(WarpInstruction::LoadShared {
            offsets: offsets_src,
            width: 4,
            mask,
        });
        stream.push(WarpInstruction::LoadShared {
            offsets: offsets_dst.clone(),
            width: 4,
            mask,
        });
        stream.push(WarpInstruction::Alu { count: 1, mask });
        stream.push(WarpInstruction::StoreShared {
            offsets: offsets_dst,
            width: 4,
            mask,
        });
    }

    /// Global load of `input[idx(tid)]` for active threads of warp `w`.
    fn emit_global_load(
        &self,
        stream: &mut Vec<WarpInstruction>,
        w: usize,
        mask: u32,
        idx: impl Fn(usize) -> usize,
    ) {
        if mask == 0 {
            return;
        }
        let addrs: Vec<u64> = (0..32)
            .map(|lane| {
                let tid = w * 32 + lane;
                if mask & (1 << lane) != 0 {
                    self.input_base + (idx(tid) as u64) * 4
                } else {
                    0
                }
            })
            .collect();
        stream.push(WarpInstruction::LoadGlobal {
            addrs,
            width: 4,
            mask,
        });
    }
}

impl KernelTrace for ReduceKernel {
    fn name(&self) -> String {
        self.variant.name().to_string()
    }

    fn launch_config(&self) -> LaunchConfig {
        let regs = match self.variant {
            ReduceVariant::Reduce0 | ReduceVariant::Reduce1 | ReduceVariant::Reduce2 => 12,
            ReduceVariant::Reduce3 | ReduceVariant::Reduce4 | ReduceVariant::Reduce5 => 14,
            ReduceVariant::Reduce6 => 18,
        };
        LaunchConfig {
            grid_blocks: self.variant.grid_for(self.n, self.threads),
            threads_per_block: self.threads,
            regs_per_thread: regs,
            shared_mem_per_block: self.threads * 4,
        }
    }

    fn content_tag(&self) -> Option<u128> {
        // `block_trace` below reads only these fields, block_id, and
        // gpu.warp_size (covered by the memo key's GPU fingerprint).
        Some(crate::content_tag128(
            0x7264, // "rd"
            &(
                self.variant,
                self.n,
                self.threads,
                self.input_base,
                self.output_base,
            ),
        ))
    }

    fn block_trace(&self, block_id: usize, gpu: &GpuConfig) -> BlockTrace {
        let t = self.threads;
        let warps = t.div_ceil(gpu.warp_size);
        let grid = self.variant.grid_for(self.n, t);
        let mut trace = BlockTrace::with_warps(warps);
        let v = self.variant;
        let n = self.n;

        // --- Load phase ---
        for w in 0..warps {
            let stream = &mut trace.warps[w];
            match v {
                ReduceVariant::Reduce0 | ReduceVariant::Reduce1 | ReduceVariant::Reduce2 => {
                    let mask = self.mask_where(w, |tid| block_id * t + tid < n);
                    stream.push(WarpInstruction::Alu {
                        count: 2,
                        mask: self.mask_where(w, |_| true),
                    });
                    self.emit_global_load(stream, w, mask, |tid| block_id * t + tid);
                }
                ReduceVariant::Reduce3 | ReduceVariant::Reduce4 | ReduceVariant::Reduce5 => {
                    let full = self.mask_where(w, |_| true);
                    stream.push(WarpInstruction::Alu {
                        count: 3,
                        mask: full,
                    });
                    let m1 = self.mask_where(w, |tid| block_id * t * 2 + tid < n);
                    self.emit_global_load(stream, w, m1, |tid| block_id * t * 2 + tid);
                    let m2 = self.mask_where(w, |tid| block_id * t * 2 + tid + t < n);
                    self.emit_global_load(stream, w, m2, |tid| block_id * t * 2 + tid + t);
                    stream.push(WarpInstruction::Alu { count: 1, mask: m1 });
                }
                ReduceVariant::Reduce6 => {
                    let full = self.mask_where(w, |_| true);
                    let grid_size = t * 2 * grid;
                    stream.push(WarpInstruction::Alu {
                        count: 3,
                        mask: full,
                    });
                    let mut i0 = block_id * t * 2;
                    while i0 < n {
                        let base = i0;
                        let m1 = self.mask_where(w, |tid| base + tid < n);
                        self.emit_global_load(stream, w, m1, |tid| base + tid);
                        let m2 = self.mask_where(w, |tid| base + tid + t < n);
                        self.emit_global_load(stream, w, m2, |tid| base + tid + t);
                        stream.push(WarpInstruction::Alu { count: 2, mask: m1 });
                        i0 += grid_size;
                    }
                }
            }
            // Store the thread's value to shared memory (conflict-free).
            let full = self.mask_where(w, |_| true);
            let offsets: Vec<u32> = (0..32).map(|lane| ((w * 32 + lane) * 4) as u32).collect();
            stream.push(WarpInstruction::StoreShared {
                offsets,
                width: 4,
                mask: full,
            });
            stream.push(WarpInstruction::Barrier);
        }

        // --- In-block reduction phase ---
        match v {
            ReduceVariant::Reduce0 => {
                let mut s = 1;
                while s < t {
                    for w in 0..warps {
                        let mask = self.mask_where(w, |tid| tid % (2 * s) == 0 && tid + s < t);
                        let active = self.mask_where(w, |_| true);
                        let stream = &mut trace.warps[w];
                        // Modulo test: scattered participants -> divergence
                        // whenever the warp splits.
                        stream.push(WarpInstruction::Branch {
                            divergent: mask != 0 && mask != active,
                            mask: active,
                        });
                        Self::emit_step(stream, w, mask, |tid| tid, |tid| tid + s);
                        stream.push(WarpInstruction::Barrier);
                    }
                    s *= 2;
                }
            }
            ReduceVariant::Reduce1 => {
                let mut s = 1;
                while s < t {
                    for w in 0..warps {
                        let mask = self.mask_where(w, |tid| 2 * s * tid + s < t);
                        let active = self.mask_where(w, |_| true);
                        let stream = &mut trace.warps[w];
                        stream.push(WarpInstruction::Branch {
                            divergent: mask != 0 && mask != active,
                            mask: active,
                        });
                        // index = 2*s*tid: the strided pattern that produces
                        // the bank conflicts of paper Figure 2.
                        Self::emit_step(stream, w, mask, |tid| 2 * s * tid, |tid| 2 * s * tid + s);
                        stream.push(WarpInstruction::Barrier);
                    }
                    s *= 2;
                }
            }
            ReduceVariant::Reduce2 | ReduceVariant::Reduce3 => {
                let mut s = t / 2;
                while s > 0 {
                    for w in 0..warps {
                        let mask = self.mask_where(w, |tid| tid < s);
                        let active = self.mask_where(w, |_| true);
                        let stream = &mut trace.warps[w];
                        stream.push(WarpInstruction::Branch {
                            divergent: mask != 0 && mask != active,
                            mask: active,
                        });
                        Self::emit_step(stream, w, mask, |tid| tid, |tid| tid + s);
                        stream.push(WarpInstruction::Barrier);
                    }
                    s /= 2;
                }
            }
            ReduceVariant::Reduce4 | ReduceVariant::Reduce5 | ReduceVariant::Reduce6 => {
                let mut s = t / 2;
                while s > 32 {
                    for w in 0..warps {
                        let mask = self.mask_where(w, |tid| tid < s);
                        let active = self.mask_where(w, |_| true);
                        let stream = &mut trace.warps[w];
                        if v == ReduceVariant::Reduce4 {
                            // reduce5/6 are fully unrolled: no loop branch.
                            stream.push(WarpInstruction::Branch {
                                divergent: mask != 0 && mask != active,
                                mask: active,
                            });
                        }
                        Self::emit_step(stream, w, mask, |tid| tid, |tid| tid + s);
                        stream.push(WarpInstruction::Barrier);
                    }
                    s /= 2;
                }
                // Warp-synchronous tail on warp 0: all 32 lanes execute, no
                // barriers.
                let mut s = 32.min(t / 2);
                while s > 0 {
                    let mask = self.mask_where(0, |tid| tid + s < t);
                    Self::emit_step(&mut trace.warps[0], 0, mask, |tid| tid, |tid| tid + s);
                    s /= 2;
                }
            }
        }

        // --- Write-out: thread 0 stores the block result ---
        let stream = &mut trace.warps[0];
        stream.push(WarpInstruction::Branch {
            divergent: true,
            mask: self.mask_where(0, |_| true),
        });
        let mut addrs = vec![0u64; 32];
        addrs[0] = self.output_base + block_id as u64 * 4;
        stream.push(WarpInstruction::StoreGlobal {
            addrs,
            width: 4,
            mask: 1,
        });
        trace
    }
}

/// Builds the full multi-pass reduction application for `n` elements.
pub fn reduce_application(variant: ReduceVariant, n: usize, threads: usize) -> Application {
    let mut launches: Vec<Box<dyn KernelTrace>> = Vec::new();
    let mut remaining = n;
    let mut input_base = INPUT_BASE;
    let mut output_base = OUTPUT_BASE;
    while remaining > 1 {
        let k = ReduceKernel {
            variant,
            n: remaining,
            threads,
            input_base,
            output_base,
        };
        let grid = variant.grid_for(remaining, threads);
        launches.push(Box::new(k));
        remaining = grid;
        std::mem::swap(&mut input_base, &mut output_base);
    }
    Application {
        name: variant.name().to_string(),
        launches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| ((i * 2654435761usize) % 1000) as f32 / 100.0)
            .collect()
    }

    #[test]
    fn all_variants_compute_the_sum() {
        let data = input(1 << 14);
        let expect: f64 = data.iter().map(|&v| v as f64).sum();
        for v in ReduceVariant::ALL {
            let got = reduce_full(v, &data, 256) as f64;
            let rel = (got - expect).abs() / expect;
            assert!(rel < 1e-3, "{}: {got} vs {expect}", v.name());
        }
    }

    #[test]
    fn variants_agree_with_each_other_bitwise_for_powers_of_two() {
        // reduce2 and reduce3 have identical in-block op order; check both
        // give identical results for clean sizes.
        let data = input(1 << 12);
        let a = reduce_full(ReduceVariant::Reduce2, &data, 128);
        let b = reduce_full(ReduceVariant::Reduce3, &data, 128);
        assert!((a - b).abs() / a.abs() < 1e-5);
    }

    #[test]
    fn non_power_of_two_sizes_handled_by_masking() {
        let data = input(1000);
        let expect: f64 = data.iter().map(|&v| v as f64).sum();
        for v in [
            ReduceVariant::Reduce1,
            ReduceVariant::Reduce2,
            ReduceVariant::Reduce6,
        ] {
            let got = reduce_full(v, &data, 64) as f64;
            assert!((got - expect).abs() / expect < 1e-3, "{}", v.name());
        }
    }

    #[test]
    fn single_element_is_identity() {
        for v in ReduceVariant::ALL {
            assert_eq!(reduce_full(v, &[42.0], 64), 42.0);
        }
    }

    #[test]
    fn grid_sizes_follow_variant_rules() {
        assert_eq!(ReduceVariant::Reduce1.grid_for(1 << 16, 256), 256);
        assert_eq!(ReduceVariant::Reduce3.grid_for(1 << 16, 256), 128);
        assert_eq!(ReduceVariant::Reduce6.grid_for(1 << 20, 256), 64);
        assert_eq!(ReduceVariant::Reduce6.grid_for(256, 128), 1);
    }

    #[test]
    fn traces_are_structurally_valid() {
        let gpu = GpuConfig::gtx580();
        for v in ReduceVariant::ALL {
            let k = ReduceKernel {
                variant: v,
                n: 1 << 14,
                threads: 256,
                input_base: INPUT_BASE,
                output_base: OUTPUT_BASE,
            };
            let t = k.block_trace(0, &gpu);
            t.validate().unwrap_or_else(|e| panic!("{}: {e}", v.name()));
            assert_eq!(t.warps.len(), 8);
        }
    }

    #[test]
    fn reduce1_trace_has_bank_conflicts_reduce2_does_not() {
        let gpu = GpuConfig::gtx580();
        let mk = |v| ReduceKernel {
            variant: v,
            n: 1 << 14,
            threads: 256,
            input_base: INPUT_BASE,
            output_base: OUTPUT_BASE,
        };
        let conflicts = |v: ReduceVariant| -> u32 {
            let t = mk(v).block_trace(0, &gpu);
            t.warps
                .iter()
                .flatten()
                .map(|i| match i {
                    WarpInstruction::LoadShared {
                        offsets,
                        width,
                        mask,
                    }
                    | WarpInstruction::StoreShared {
                        offsets,
                        width,
                        mask,
                    } => gpu_sim::banks::replays(offsets, *width, *mask, 32, 4),
                    _ => 0,
                })
                .sum()
        };
        assert!(conflicts(ReduceVariant::Reduce1) > 0);
        assert_eq!(conflicts(ReduceVariant::Reduce2), 0);
    }

    #[test]
    fn reduce0_trace_is_divergent_reduce2_mostly_not() {
        let gpu = GpuConfig::gtx580();
        let mk = |v| ReduceKernel {
            variant: v,
            n: 1 << 14,
            threads: 256,
            input_base: INPUT_BASE,
            output_base: OUTPUT_BASE,
        };
        let divergent = |v: ReduceVariant| -> usize {
            mk(v)
                .block_trace(0, &gpu)
                .warps
                .iter()
                .flatten()
                .filter(|i| {
                    matches!(
                        i,
                        WarpInstruction::Branch {
                            divergent: true,
                            ..
                        }
                    )
                })
                .count()
        };
        assert!(divergent(ReduceVariant::Reduce0) > 3 * divergent(ReduceVariant::Reduce2));
    }

    #[test]
    fn application_reduces_to_single_value_in_passes() {
        let app = reduce_application(ReduceVariant::Reduce1, 1 << 16, 256);
        // 65536 -> 256 -> 1: two passes.
        assert_eq!(app.launches.len(), 2);
        let app6 = reduce_application(ReduceVariant::Reduce6, 1 << 20, 256);
        // 1M -> 64 -> 1: two passes.
        assert_eq!(app6.launches.len(), 2);
    }

    #[test]
    fn application_profiles_on_both_gpus() {
        for gpu in [GpuConfig::gtx580(), GpuConfig::k20m()] {
            let app = reduce_application(ReduceVariant::Reduce1, 1 << 14, 128);
            let run = app.profile(&gpu).unwrap();
            assert!(run.time_ms > 0.0);
            assert!(run.counters.get("gld_request").unwrap() > 0.0);
            assert!(run.counters.get("shared_replay_overhead").unwrap() > 0.0);
        }
    }

    #[test]
    fn reduce2_profile_shows_no_shared_replays() {
        let gpu = GpuConfig::gtx580();
        let app = reduce_application(ReduceVariant::Reduce2, 1 << 14, 128);
        let run = app.profile(&gpu).unwrap();
        assert_eq!(run.counters.get("shared_replay_overhead"), Some(0.0));
    }

    #[test]
    fn reduce6_is_faster_than_reduce1_at_scale() {
        let gpu = GpuConfig::gtx580();
        let t1 = reduce_application(ReduceVariant::Reduce1, 1 << 20, 256)
            .profile(&gpu)
            .unwrap()
            .time_ms;
        let t6 = reduce_application(ReduceVariant::Reduce6, 1 << 20, 256)
            .profile(&gpu)
            .unwrap()
            .time_ms;
        assert!(t6 < t1, "reduce6 {t6} ms should beat reduce1 {t1} ms");
    }

    #[test]
    fn loads_are_coalesced_for_sequential_variants() {
        let gpu = GpuConfig::gtx580();
        let app = reduce_application(ReduceVariant::Reduce2, 1 << 16, 256);
        let run = app.profile(&gpu).unwrap();
        // Coalesced 4-byte loads: ~1 transaction per request.
        let req = run.counters.get("gld_request").unwrap();
        let trans = run.counters.get("global_load_transaction").unwrap();
        assert!(trans <= req * 1.1, "req {req} trans {trans}");
    }
}
