//! Needleman-Wunsch global sequence alignment — the Rodinia `needle`
//! benchmark, the paper's second prediction case study (§6.1.2).
//!
//! The score matrix is filled with the classic recurrence
//! `S[i][j] = max(S[i-1][j-1] + ref[i][j], S[i][j-1] - p, S[i-1][j] - p)`.
//! The Rodinia GPU implementation processes the `(n+1) x (n+1)` matrix in
//! 16x16 tiles along anti-diagonals: kernel 1 sweeps the top-left triangle
//! (one launch per diagonal, with as many 16-thread blocks as tiles on the
//! diagonal), kernel 2 the bottom-right. Inside a tile, 16 threads walk the
//! 31 intra-tile diagonals through shared memory.
//!
//! Performance characteristics preserved here, all load-bearing for the
//! paper's Figures 6 and 8:
//! * 16-thread blocks cap occupancy at the block-slot limit (8 blocks/SM on
//!   Fermi -> 8 of 48 warps resident), making `achieved_occupancy` and the
//!   problem `size` the dominant predictors;
//! * the west-column boundary load is strided by the matrix row size
//!   (uncoalesced), and tile locality is poor, loading L1/L2 (Fermi) —
//!   the `l1_global_load_miss` / `l2_read_transactions` importance;
//! * intra-tile diagonal accesses stride shared memory by 16 words, a
//!   2-way-per-pair pattern that produces real bank conflicts
//!   (`l1_shared_bank_conflict` on Fermi).

use crate::{Application, INPUT2_BASE, INPUT_BASE};
use gpu_sim::trace::{first_lanes, BlockTrace, KernelTrace, LaunchConfig, WarpInstruction};
use gpu_sim::GpuConfig;

/// Tile edge / threads per block (Rodinia's BLOCK_SIZE).
pub const BLOCK_SIZE: usize = 16;

// ---------------------------------------------------------------------------
// Functional implementations
// ---------------------------------------------------------------------------

/// Deterministic "substitution matrix" value for cell `(i, j)`, standing in
/// for `blosum62[seq1[i]][seq2[j]]` with a blosum-like value range [-4, 11].
pub fn reference_score(i: usize, j: usize) -> i32 {
    let h = (i as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((j as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
    ((h >> 33) % 16) as i32 - 4
}

/// Sequential reference DP over an `n x n` alignment problem (score matrix
/// is `(n+1) x (n+1)`). Returns the full matrix, row-major.
pub fn nw_reference(n: usize, penalty: i32) -> Vec<i32> {
    let cols = n + 1;
    let mut s = vec![0i32; cols * cols];
    for i in 1..cols {
        s[i * cols] = -(i as i32) * penalty;
        s[i] = -(i as i32) * penalty;
    }
    for i in 1..cols {
        for j in 1..cols {
            let diag = s[(i - 1) * cols + (j - 1)] + reference_score(i, j);
            let west = s[i * cols + (j - 1)] - penalty;
            let north = s[(i - 1) * cols + j] - penalty;
            s[i * cols + j] = diag.max(west).max(north);
        }
    }
    s
}

/// Tiled evaluation in the exact Rodinia order: top-left diagonals of tiles,
/// then bottom-right, with the intra-tile double diagonal sweep. Returns the
/// full matrix and must equal [`nw_reference`] exactly (integer DP).
pub fn nw_tiled(n: usize, penalty: i32) -> Vec<i32> {
    assert!(
        n.is_multiple_of(BLOCK_SIZE),
        "n must be a multiple of {BLOCK_SIZE}"
    );
    let cols = n + 1;
    let bw = n / BLOCK_SIZE;
    let mut s = vec![0i32; cols * cols];
    for i in 1..cols {
        s[i * cols] = -(i as i32) * penalty;
        s[i] = -(i as i32) * penalty;
    }
    let mut do_tile = |by: usize, bx: usize| {
        // temp[17][17] seeded with the tile's north/west boundaries.
        let mut temp = [[0i32; BLOCK_SIZE + 1]; BLOCK_SIZE + 1];
        let base_r = by * BLOCK_SIZE;
        let base_c = bx * BLOCK_SIZE;
        for t in 0..=BLOCK_SIZE {
            temp[0][t] = s[base_r * cols + base_c + t];
            temp[t][0] = s[(base_r + t) * cols + base_c];
        }
        // Forward then backward intra-tile diagonals (Rodinia's two loops).
        for m in 0..BLOCK_SIZE {
            for tid in 0..=m {
                let tx = tid + 1;
                let ty = m - tid + 1;
                let r = base_r + ty;
                let c = base_c + tx;
                let diag = temp[ty - 1][tx - 1] + reference_score(r, c);
                temp[ty][tx] = diag
                    .max(temp[ty][tx - 1] - penalty)
                    .max(temp[ty - 1][tx] - penalty);
            }
        }
        for m in (0..BLOCK_SIZE - 1).rev() {
            for tid in 0..=m {
                let tx = tid + BLOCK_SIZE - m;
                let ty = BLOCK_SIZE - tid;
                let r = base_r + ty;
                let c = base_c + tx;
                let diag = temp[ty - 1][tx - 1] + reference_score(r, c);
                temp[ty][tx] = diag
                    .max(temp[ty][tx - 1] - penalty)
                    .max(temp[ty - 1][tx] - penalty);
            }
        }
        for ty in 1..=BLOCK_SIZE {
            for tx in 1..=BLOCK_SIZE {
                s[(base_r + ty) * cols + base_c + tx] = temp[ty][tx];
            }
        }
    };
    // Kernel-1 sweep: diagonals of the top-left triangle.
    for i in 1..=bw {
        for bx in 0..i {
            do_tile(i - 1 - bx, bx);
        }
    }
    // Kernel-2 sweep: diagonals of the bottom-right triangle.
    for i in (1..bw).rev() {
        for bx in 0..i {
            do_tile(bw - 1 - bx, bx + bw - i);
        }
    }
    s
}

// ---------------------------------------------------------------------------
// Trace generation
// ---------------------------------------------------------------------------

/// One NW diagonal launch (either kernel) as a simulator trace.
#[derive(Debug, Clone)]
pub struct NwKernel {
    /// Alignment problem size (matrix is `(n+1)^2`).
    pub n: usize,
    /// Which Rodinia kernel: 1 (top-left sweep) or 2 (bottom-right).
    pub kernel: u8,
    /// Diagonal iteration index `i` (grid has `i` blocks).
    pub iteration: usize,
}

impl NwKernel {
    /// Tile coordinates (block-row, block-col) for grid block `bx`.
    fn tile(&self, bx: usize) -> (usize, usize) {
        let bw = self.n / BLOCK_SIZE;
        match self.kernel {
            1 => (self.iteration - 1 - bx, bx),
            _ => (bw - 1 - bx, bx + bw - self.iteration),
        }
    }
}

const T16: u32 = 0xFFFF; // 16 active lanes
/// Shared-memory offset of temp[ty][tx] (17x17 i32 array at offset 0).
fn temp_off(ty: usize, tx: usize) -> u32 {
    ((ty * (BLOCK_SIZE + 1) + tx) * 4) as u32
}
/// Shared-memory offset of ref[ty][tx] (16x16 i32 array after temp).
fn ref_off(ty: usize, tx: usize) -> u32 {
    (((BLOCK_SIZE + 1) * (BLOCK_SIZE + 1) + ty * BLOCK_SIZE + tx) * 4) as u32
}

impl KernelTrace for NwKernel {
    fn name(&self) -> String {
        format!("needle_cuda_shared_{}", self.kernel)
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig {
            grid_blocks: self.iteration,
            threads_per_block: BLOCK_SIZE,
            regs_per_thread: 20,
            shared_mem_per_block: ((BLOCK_SIZE + 1) * (BLOCK_SIZE + 1) + BLOCK_SIZE * BLOCK_SIZE)
                * 4,
        }
    }

    fn content_tag(&self) -> Option<u128> {
        // `block_trace` below reads only (n, kernel, iteration, block_id).
        Some(crate::content_tag128(
            0x6E77, // "nw"
            &(self.n, self.kernel, self.iteration),
        ))
    }

    fn block_trace(&self, block_id: usize, _gpu: &GpuConfig) -> BlockTrace {
        let cols = (self.n + 1) as u64;
        let (by, bx) = self.tile(block_id);
        let base_r = (by * BLOCK_SIZE) as u64;
        let base_c = (bx * BLOCK_SIZE) as u64;
        let items = |r: u64, c: u64| INPUT_BASE + (r * cols + c) * 4;
        let refm = |r: u64, c: u64| INPUT2_BASE + (r * cols + c) * 4;

        let mut trace = BlockTrace::with_warps(1);
        let s = &mut trace.warps[0];

        // Index arithmetic.
        s.push(WarpInstruction::Alu {
            count: 6,
            mask: T16,
        });

        // North boundary row: itemsets[base_r][base_c + tid + 1] — coalesced.
        let north: Vec<u64> = (0..32)
            .map(|l| {
                if l < 16 {
                    items(base_r, base_c + l as u64 + 1)
                } else {
                    0
                }
            })
            .collect();
        s.push(WarpInstruction::LoadGlobal {
            addrs: north,
            width: 4,
            mask: T16,
        });
        s.push(WarpInstruction::StoreShared {
            offsets: (0..32).map(|l| temp_off(0, (l % 16) + 1)).collect(),
            width: 4,
            mask: T16,
        });
        // West boundary column: itemsets[base_r + tid + 1][base_c] — strided
        // by the full matrix row: one transaction per lane.
        let west: Vec<u64> = (0..32)
            .map(|l| {
                if l < 16 {
                    items(base_r + l as u64 + 1, base_c)
                } else {
                    0
                }
            })
            .collect();
        s.push(WarpInstruction::LoadGlobal {
            addrs: west,
            width: 4,
            mask: T16,
        });
        s.push(WarpInstruction::StoreShared {
            offsets: (0..32).map(|l| temp_off((l % 16) + 1, 0)).collect(),
            width: 4,
            mask: T16,
        });
        // NW corner by lane 0.
        let mut corner = vec![0u64; 32];
        corner[0] = items(base_r, base_c);
        s.push(WarpInstruction::LoadGlobal {
            addrs: corner,
            width: 4,
            mask: 1,
        });
        let mut corner_off = vec![0u32; 32];
        corner_off[0] = temp_off(0, 0);
        s.push(WarpInstruction::StoreShared {
            offsets: corner_off,
            width: 4,
            mask: 1,
        });

        // Reference tile: 16 coalesced row loads.
        for ty in 0..BLOCK_SIZE {
            let addrs: Vec<u64> = (0..32)
                .map(|l| {
                    if l < 16 {
                        refm(base_r + ty as u64 + 1, base_c + l as u64 + 1)
                    } else {
                        0
                    }
                })
                .collect();
            s.push(WarpInstruction::LoadGlobal {
                addrs,
                width: 4,
                mask: T16,
            });
            s.push(WarpInstruction::StoreShared {
                offsets: (0..32).map(|l| ref_off(ty, l % 16)).collect(),
                width: 4,
                mask: T16,
            });
        }
        s.push(WarpInstruction::Barrier);

        // Intra-tile diagonals. Shared offsets stride 16 words between lanes,
        // the bank-conflicting pattern described in the module docs.
        let diag_step = |s: &mut Vec<WarpInstruction>, m: usize, forward: bool| {
            let mask = first_lanes(m + 1);
            let coords = |tid: usize| -> (usize, usize) {
                if forward {
                    (m - tid + 1, tid + 1)
                } else {
                    (BLOCK_SIZE - tid, tid + BLOCK_SIZE - m)
                }
            };
            s.push(WarpInstruction::Branch {
                divergent: m + 1 < BLOCK_SIZE,
                mask: T16,
            });
            // Load NW, W, N neighbours and the reference cell.
            for pick in 0..4u8 {
                let offsets: Vec<u32> = (0..32)
                    .map(|l| {
                        if l <= m {
                            let (ty, tx) = coords(l);
                            match pick {
                                0 => temp_off(ty - 1, tx - 1),
                                1 => temp_off(ty, tx - 1),
                                2 => temp_off(ty - 1, tx),
                                _ => ref_off(ty - 1, tx - 1),
                            }
                        } else {
                            0
                        }
                    })
                    .collect();
                s.push(WarpInstruction::LoadShared {
                    offsets,
                    width: 4,
                    mask,
                });
            }
            s.push(WarpInstruction::Alu { count: 3, mask });
            s.push(WarpInstruction::StoreShared {
                offsets: (0..32)
                    .map(|l| {
                        if l <= m {
                            let (ty, tx) = coords(l);
                            temp_off(ty, tx)
                        } else {
                            0
                        }
                    })
                    .collect(),
                width: 4,
                mask,
            });
            s.push(WarpInstruction::Barrier);
        };
        for m in 0..BLOCK_SIZE {
            diag_step(s, m, true);
        }
        for m in (0..BLOCK_SIZE - 1).rev() {
            diag_step(s, m, false);
        }

        // Write the tile back: 16 coalesced row stores.
        for ty in 0..BLOCK_SIZE {
            s.push(WarpInstruction::LoadShared {
                offsets: (0..32).map(|l| temp_off(ty + 1, (l % 16) + 1)).collect(),
                width: 4,
                mask: T16,
            });
            let addrs: Vec<u64> = (0..32)
                .map(|l| {
                    if l < 16 {
                        items(base_r + ty as u64 + 1, base_c + l as u64 + 1)
                    } else {
                        0
                    }
                })
                .collect();
            s.push(WarpInstruction::StoreGlobal {
                addrs,
                width: 4,
                mask: T16,
            });
        }
        trace
    }
}

/// The full NW application for an `n x n` problem: one launch per diagonal,
/// both kernels, exactly Rodinia's host loop.
pub fn nw_application(n: usize, _penalty: i32) -> Application {
    assert!(
        n.is_multiple_of(BLOCK_SIZE),
        "n must be a multiple of {BLOCK_SIZE}"
    );
    let bw = n / BLOCK_SIZE;
    let mut launches: Vec<Box<dyn KernelTrace>> = Vec::new();
    for i in 1..=bw {
        launches.push(Box::new(NwKernel {
            n,
            kernel: 1,
            iteration: i,
        }));
    }
    for i in (1..bw).rev() {
        launches.push(Box::new(NwKernel {
            n,
            kernel: 2,
            iteration: i,
        }));
    }
    Application {
        name: "needle".into(),
        launches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiled_dp_matches_reference_exactly() {
        for n in [16, 32, 64, 128] {
            let a = nw_reference(n, 10);
            let b = nw_tiled(n, 10);
            assert_eq!(a, b, "mismatch at n={n}");
        }
    }

    #[test]
    fn boundary_rows_are_gap_penalties() {
        let n = 32;
        let p = 7;
        let s = nw_reference(n, p);
        let cols = n + 1;
        for i in 1..=n {
            assert_eq!(s[i], -(i as i32) * p);
            assert_eq!(s[i * cols], -(i as i32) * p);
        }
    }

    #[test]
    fn reference_score_is_deterministic_and_blosum_ranged() {
        for i in 0..100 {
            for j in 0..100 {
                let v = reference_score(i, j);
                assert_eq!(v, reference_score(i, j));
                assert!((-4..=11).contains(&v));
            }
        }
    }

    #[test]
    fn tile_coordinates_cover_all_tiles_exactly_once() {
        let n = 128;
        let bw = n / BLOCK_SIZE;
        let mut seen = std::collections::HashSet::new();
        for i in 1..=bw {
            let k = NwKernel {
                n,
                kernel: 1,
                iteration: i,
            };
            for bx in 0..i {
                assert!(seen.insert(k.tile(bx)), "duplicate tile");
            }
        }
        for i in (1..bw).rev() {
            let k = NwKernel {
                n,
                kernel: 2,
                iteration: i,
            };
            for bx in 0..i {
                assert!(seen.insert(k.tile(bx)), "duplicate tile");
            }
        }
        assert_eq!(seen.len(), bw * bw);
        for by in 0..bw {
            for bx in 0..bw {
                assert!(seen.contains(&(by, bx)));
            }
        }
    }

    #[test]
    fn traces_validate_and_use_one_warp() {
        let gpu = GpuConfig::gtx580();
        let k = NwKernel {
            n: 128,
            kernel: 1,
            iteration: 3,
        };
        let t = k.block_trace(1, &gpu);
        t.validate().unwrap();
        assert_eq!(t.warps.len(), 1);
    }

    #[test]
    fn diagonal_accesses_have_bank_conflicts() {
        let gpu = GpuConfig::gtx580();
        let k = NwKernel {
            n: 128,
            kernel: 1,
            iteration: 1,
        };
        let t = k.block_trace(0, &gpu);
        let total: u32 = t.warps[0]
            .iter()
            .map(|i| match i {
                WarpInstruction::LoadShared {
                    offsets,
                    width,
                    mask,
                }
                | WarpInstruction::StoreShared {
                    offsets,
                    width,
                    mask,
                } => gpu_sim::banks::replays(offsets, *width, *mask, 32, 4),
                _ => 0,
            })
            .sum();
        assert!(total > 0, "NW tile should conflict in shared memory");
    }

    #[test]
    fn west_column_load_is_uncoalesced() {
        let gpu = GpuConfig::gtx580();
        let k = NwKernel {
            n: 512,
            kernel: 1,
            iteration: 1,
        };
        let t = k.block_trace(0, &gpu);
        // Find the max transaction count over global loads: the west column
        // must hit 16 distinct lines.
        let worst = t.warps[0]
            .iter()
            .filter_map(|i| match i {
                WarpInstruction::LoadGlobal { addrs, width, mask } => {
                    Some(gpu_sim::coalesce::coalesce(addrs, *width, *mask, 128).len())
                }
                _ => None,
            })
            .max()
            .unwrap();
        assert_eq!(worst, 16);
    }

    #[test]
    fn application_launch_count_matches_rodinia_host_loop() {
        let app = nw_application(128, 10);
        let bw = 128 / BLOCK_SIZE;
        assert_eq!(app.launches.len(), 2 * bw - 1);
    }

    #[test]
    fn profile_runs_and_has_low_occupancy_on_fermi() {
        let gpu = GpuConfig::gtx580();
        let run = nw_application(128, 10).profile(&gpu).unwrap();
        let occ = run.counters.get("achieved_occupancy").unwrap();
        // 16-thread blocks, 8 block slots: <= 8/48 theoretical.
        assert!(occ < 0.2, "occupancy {occ}");
        assert!(run.counters.get("l1_shared_bank_conflict").unwrap() > 0.0);
    }

    #[test]
    fn kepler_occupancy_higher_than_fermi_for_nw() {
        let f = nw_application(128, 10)
            .profile(&GpuConfig::gtx580())
            .unwrap();
        let k = nw_application(128, 10).profile(&GpuConfig::k20m()).unwrap();
        assert!(
            k.counters.get("achieved_occupancy").unwrap()
                > f.counters.get("achieved_occupancy").unwrap()
        );
    }

    #[test]
    fn per_kernel_breakdown_reports_both_nw_kernels() {
        let gpu = GpuConfig::gtx580();
        let app = nw_application(128, 10);
        let per_kernel =
            gpu_sim::profiler::profile_application_by_kernel(&gpu, &app.launches).unwrap();
        assert_eq!(per_kernel.len(), 2);
        assert_eq!(per_kernel[0].kernel, "needle_cuda_shared_1");
        assert_eq!(per_kernel[1].kernel, "needle_cuda_shared_2");
        // Kernel 1 covers one more diagonal than kernel 2.
        assert!(per_kernel[0].time_ms > per_kernel[1].time_ms);
        // The two together match the aggregate application profile.
        let total = app.profile(&gpu).unwrap();
        let sum = per_kernel[0].time_ms + per_kernel[1].time_ms;
        assert!((sum - total.time_ms).abs() / total.time_ms < 1e-9);
    }

    #[test]
    fn bigger_problems_take_longer() {
        let gpu = GpuConfig::gtx580();
        let t64 = nw_application(64, 10).profile(&gpu).unwrap().time_ms;
        let t256 = nw_application(256, 10).profile(&gpu).unwrap().time_ms;
        assert!(t256 > 2.0 * t64, "t64={t64} t256={t256}");
    }
}
