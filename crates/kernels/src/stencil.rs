//! 2D Jacobi 5-point stencil — an *extension workload* beyond the paper's
//! three case studies (§7 lists "more applications" as current work).
//!
//! One Jacobi sweep over an `n x n` grid: every interior cell becomes the
//! weighted average of itself and its four neighbours. The CUDA-style
//! implementation tiles the grid into 16x16 thread blocks that stage a
//! `18x18` halo tile in shared memory: interior loads are coalesced, the
//! halo columns are not, and the kernel is strongly bandwidth-bound with a
//! mild cache-locality component — a profile distinct from all three paper
//! workloads, which is exactly what makes it a good generality check for
//! BlackForest.

use crate::{Application, INPUT_BASE, OUTPUT_BASE};
use gpu_sim::trace::{BlockTrace, KernelTrace, LaunchConfig, WarpInstruction};
use gpu_sim::GpuConfig;

/// Tile edge (threads per block side).
pub const BLOCK_SIZE: usize = 16;

/// Stencil coefficients: centre and the four von-Neumann neighbours.
pub const W_CENTER: f32 = 0.5;
/// Neighbour weight (four neighbours share the remaining mass).
pub const W_NEIGHBOR: f32 = 0.125;

// ---------------------------------------------------------------------------
// Functional implementation
// ---------------------------------------------------------------------------

/// One Jacobi sweep on an `n x n` grid (boundary cells copied unchanged).
/// Reference row-major implementation.
pub fn stencil_reference(input: &[f32], n: usize) -> Vec<f32> {
    assert_eq!(input.len(), n * n);
    let mut out = input.to_vec();
    for i in 1..n - 1 {
        for j in 1..n - 1 {
            out[i * n + j] = W_CENTER * input[i * n + j]
                + W_NEIGHBOR
                    * (input[(i - 1) * n + j]
                        + input[(i + 1) * n + j]
                        + input[i * n + j - 1]
                        + input[i * n + j + 1]);
        }
    }
    out
}

/// The tiled evaluation in CUDA block order; must equal the reference
/// exactly (same FP expression per cell, just a different schedule).
pub fn stencil_tiled(input: &[f32], n: usize) -> Vec<f32> {
    assert!(
        n.is_multiple_of(BLOCK_SIZE),
        "n must be a multiple of {BLOCK_SIZE}"
    );
    let mut out = input.to_vec();
    let nb = n / BLOCK_SIZE;
    let mut tile = [[0.0f32; BLOCK_SIZE + 2]; BLOCK_SIZE + 2];
    for by in 0..nb {
        for bx in 0..nb {
            // Stage the 18x18 halo tile (clamped at grid borders).
            for ty in 0..BLOCK_SIZE + 2 {
                for tx in 0..BLOCK_SIZE + 2 {
                    let gi = (by * BLOCK_SIZE + ty).saturating_sub(1).min(n - 1);
                    let gj = (bx * BLOCK_SIZE + tx).saturating_sub(1).min(n - 1);
                    tile[ty][tx] = input[gi * n + gj];
                }
            }
            for ty in 0..BLOCK_SIZE {
                for tx in 0..BLOCK_SIZE {
                    let i = by * BLOCK_SIZE + ty;
                    let j = bx * BLOCK_SIZE + tx;
                    if i == 0 || j == 0 || i == n - 1 || j == n - 1 {
                        continue;
                    }
                    out[i * n + j] = W_CENTER * tile[ty + 1][tx + 1]
                        + W_NEIGHBOR
                            * (tile[ty][tx + 1]
                                + tile[ty + 2][tx + 1]
                                + tile[ty + 1][tx]
                                + tile[ty + 1][tx + 2]);
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Trace generation
// ---------------------------------------------------------------------------

/// One Jacobi sweep as a simulator trace.
#[derive(Debug, Clone)]
pub struct StencilKernel {
    /// Grid edge; must be a multiple of [`BLOCK_SIZE`].
    pub n: usize,
}

/// Shared tile offset of element (ty, tx) in the 18x18 staging array.
fn tile_off(ty: usize, tx: usize) -> u32 {
    ((ty * (BLOCK_SIZE + 2) + tx) * 4) as u32
}

impl KernelTrace for StencilKernel {
    fn name(&self) -> String {
        "jacobi2d".into()
    }

    fn launch_config(&self) -> LaunchConfig {
        let nb = self.n / BLOCK_SIZE;
        LaunchConfig {
            grid_blocks: nb * nb,
            threads_per_block: BLOCK_SIZE * BLOCK_SIZE,
            regs_per_thread: 18,
            shared_mem_per_block: (BLOCK_SIZE + 2) * (BLOCK_SIZE + 2) * 4,
        }
    }

    fn content_tag(&self) -> Option<u128> {
        // `block_trace` below reads only `n`, block_id, and gpu.warp_size
        // (covered by the memo key's GPU fingerprint).
        Some(crate::content_tag128(0x7374, &(self.n,))) // "st"
    }

    fn block_trace(&self, block_id: usize, gpu: &GpuConfig) -> BlockTrace {
        let n = self.n;
        let nb = n / BLOCK_SIZE;
        let (bx, by) = (block_id % nb, block_id / nb);
        let warps = (BLOCK_SIZE * BLOCK_SIZE).div_ceil(gpu.warp_size);
        let mut trace = BlockTrace::with_warps(warps);
        let gaddr = |i: usize, j: usize| INPUT_BASE + ((i * n + j) as u64) * 4;
        let clamp = |v: isize| -> usize { v.clamp(0, n as isize - 1) as usize };

        for w in 0..warps {
            let stream = &mut trace.warps[w];
            stream.push(WarpInstruction::Alu {
                count: 4,
                mask: u32::MAX,
            });
            // Interior tile load: thread (tx, ty) loads its own cell into
            // tile[ty+1][tx+1] — coalesced (2 rows of 16 floats per warp).
            let mut addrs = vec![0u64; 32];
            let mut offs = vec![0u32; 32];
            for lane in 0..32 {
                let ty = 2 * w + lane / 16;
                let tx = lane % 16;
                addrs[lane] = gaddr(by * BLOCK_SIZE + ty, bx * BLOCK_SIZE + tx);
                offs[lane] = tile_off(ty + 1, tx + 1);
            }
            stream.push(WarpInstruction::LoadGlobal {
                addrs,
                width: 4,
                mask: u32::MAX,
            });
            stream.push(WarpInstruction::StoreShared {
                offsets: offs,
                width: 4,
                mask: u32::MAX,
            });
        }
        // Halo loads, done by warp 0 (like the boundary threads would):
        // north/south rows are coalesced, west/east columns are strided.
        {
            let stream = &mut trace.warps[0];
            let mask16 = 0xFFFFu32;
            // North and south rows (coalesced row segments).
            for (row, tile_row) in [(-1isize, 0usize), (BLOCK_SIZE as isize, BLOCK_SIZE + 1)] {
                let gi = clamp(by as isize * BLOCK_SIZE as isize + row);
                let addrs: Vec<u64> = (0..32)
                    .map(|l| {
                        if l < 16 {
                            gaddr(gi, bx * BLOCK_SIZE + l)
                        } else {
                            0
                        }
                    })
                    .collect();
                stream.push(WarpInstruction::LoadGlobal {
                    addrs,
                    width: 4,
                    mask: mask16,
                });
                stream.push(WarpInstruction::StoreShared {
                    offsets: (0..32).map(|l| tile_off(tile_row, (l % 16) + 1)).collect(),
                    width: 4,
                    mask: mask16,
                });
            }
            // West and east columns (strided by the row size: uncoalesced).
            for (col, tile_col) in [(-1isize, 0usize), (BLOCK_SIZE as isize, BLOCK_SIZE + 1)] {
                let gj = clamp(bx as isize * BLOCK_SIZE as isize + col);
                let addrs: Vec<u64> = (0..32)
                    .map(|l| {
                        if l < 16 {
                            gaddr(by * BLOCK_SIZE + l, gj)
                        } else {
                            0
                        }
                    })
                    .collect();
                stream.push(WarpInstruction::LoadGlobal {
                    addrs,
                    width: 4,
                    mask: mask16,
                });
                stream.push(WarpInstruction::StoreShared {
                    offsets: (0..32).map(|l| tile_off((l % 16) + 1, tile_col)).collect(),
                    width: 4,
                    mask: mask16,
                });
            }
        }
        for w in 0..warps {
            trace.warps[w].push(WarpInstruction::Barrier);
        }
        // Compute phase: 5 shared loads + 1 folded FMA chain, then the
        // coalesced store of the result.
        for w in 0..warps {
            let stream = &mut trace.warps[w];
            for (dy, dx) in [(1usize, 1usize), (0, 1), (2, 1), (1, 0), (1, 2)] {
                let offs: Vec<u32> = (0..32)
                    .map(|lane| {
                        let ty = 2 * w + lane / 16;
                        let tx = lane % 16;
                        tile_off(ty + dy, tx + dx)
                    })
                    .collect();
                stream.push(WarpInstruction::LoadShared {
                    offsets: offs,
                    width: 4,
                    mask: u32::MAX,
                });
            }
            stream.push(WarpInstruction::Alu {
                count: 5,
                mask: u32::MAX,
            });
            let addrs: Vec<u64> = (0..32)
                .map(|lane| {
                    let ty = 2 * w + lane / 16;
                    let tx = lane % 16;
                    OUTPUT_BASE + (((by * BLOCK_SIZE + ty) * n + bx * BLOCK_SIZE + tx) as u64) * 4
                })
                .collect();
            stream.push(WarpInstruction::StoreGlobal {
                addrs,
                width: 4,
                mask: u32::MAX,
            });
        }
        trace
    }
}

/// The stencil application: `sweeps` Jacobi iterations over an `n x n` grid.
pub fn stencil_application(n: usize, sweeps: usize) -> Application {
    let launches: Vec<Box<dyn KernelTrace>> = (0..sweeps.max(1))
        .map(|_| Box::new(StencilKernel { n }) as Box<dyn KernelTrace>)
        .collect();
    Application {
        name: "jacobi2d".into(),
        launches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> Vec<f32> {
        (0..n * n).map(|i| ((i * 31) % 17) as f32 / 17.0).collect()
    }

    #[test]
    fn tiled_matches_reference_exactly() {
        for n in [16, 32, 64] {
            let g = grid(n);
            assert_eq!(stencil_reference(&g, n), stencil_tiled(&g, n), "n={n}");
        }
    }

    #[test]
    fn boundary_cells_unchanged() {
        let n = 32;
        let g = grid(n);
        let out = stencil_reference(&g, n);
        for j in 0..n {
            assert_eq!(out[j], g[j]);
            assert_eq!(out[(n - 1) * n + j], g[(n - 1) * n + j]);
            assert_eq!(out[j * n], g[j * n]);
            assert_eq!(out[j * n + n - 1], g[j * n + n - 1]);
        }
    }

    #[test]
    fn uniform_field_is_fixed_point() {
        let n = 32;
        let g = vec![3.0f32; n * n];
        let out = stencil_reference(&g, n);
        for (&a, &b) in out.iter().zip(g.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn trace_is_valid_and_conflict_free_in_shared() {
        let gpu = GpuConfig::gtx580();
        let k = StencilKernel { n: 128 };
        let t = k.block_trace(5, &gpu);
        t.validate().unwrap();
        for stream in &t.warps {
            for instr in stream {
                if let WarpInstruction::LoadShared {
                    offsets,
                    width,
                    mask,
                } = instr
                {
                    // Row-major 18-wide tile: lanes stride 1 word within a
                    // row; the 18-word row pitch avoids 2-way conflicts for
                    // the two half-warps.
                    let r = gpu_sim::banks::replays(offsets, *width, *mask, 32, 4);
                    assert!(r <= 1, "replays {r}");
                }
            }
        }
    }

    #[test]
    fn halo_columns_are_uncoalesced() {
        let gpu = GpuConfig::gtx580();
        let k = StencilKernel { n: 512 };
        let t = k.block_trace(10, &gpu);
        let worst = t.warps[0]
            .iter()
            .filter_map(|i| match i {
                WarpInstruction::LoadGlobal { addrs, width, mask } => {
                    Some(gpu_sim::coalesce::coalesce(addrs, *width, *mask, 128).len())
                }
                _ => None,
            })
            .max()
            .unwrap();
        assert!(
            worst >= 16,
            "expected a 16-transaction column load, got {worst}"
        );
    }

    #[test]
    fn profile_is_bandwidth_heavy() {
        let gpu = GpuConfig::gtx580();
        let run = stencil_application(512, 1).profile(&gpu).unwrap();
        // One load+store per cell, ~10 arithmetic ops: low arithmetic
        // intensity => DRAM traffic close to 2 floats per cell.
        let bytes = run.counters.get("dram_read_transactions").unwrap() * 32.0
            + run.counters.get("dram_write_transactions").unwrap() * 32.0;
        let ideal = (512.0 * 512.0) * 8.0;
        assert!(bytes > 0.5 * ideal, "bytes {bytes} vs ideal {ideal}");
    }

    #[test]
    fn multiple_sweeps_accumulate_time() {
        let gpu = GpuConfig::gtx580();
        let t1 = stencil_application(256, 1).profile(&gpu).unwrap().time_ms;
        let t4 = stencil_application(256, 4).profile(&gpu).unwrap().time_ms;
        assert!(t4 > 3.0 * t1, "t1={t1} t4={t4}");
    }
}
