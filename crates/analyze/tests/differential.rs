//! The differential oracle as an integration suite: static predictions must
//! match dynamic counters across the paper's workload sweeps, on every
//! architecture generation in the zoo, for every launch of every
//! application.
//!
//! Tolerances (see `DESIGN.md`): occupancy exact; counters within
//! `REL_TOLERANCE` (float noise only). A failure here means the static walk
//! and the cycle engine disagree about the machine's causal structure —
//! i.e. somebody introduced a bug — and the panic names the GPU *and its
//! architecture* so a generation-specific memory-path regression is
//! immediately attributable.

use bf_analyze::oracle::{check_application, compare, OracleReport};
use bf_analyze::walk::analyze_launch;
use bf_kernels::matmul::matmul_application;
use bf_kernels::nw::nw_application;
use bf_kernels::reduce::{reduce_application, ReduceVariant};
use bf_kernels::stencil::stencil_application;
use bf_kernels::Application;
use gpu_sim::{simulate_launch, GpuConfig};

/// One GPU per architecture generation: Fermi, Kepler, Maxwell, Pascal,
/// Volta. Each generation exercises a different global-memory path
/// (line-tagged L1 / L1 bypass / sector-tagged L1), so agreement here
/// means the static walk models all three.
fn gpus() -> Vec<GpuConfig> {
    GpuConfig::arch_representatives()
}

fn assert_agrees(gpu: &GpuConfig, app: &Application) {
    let reports: Vec<OracleReport> = check_application(gpu, app)
        .unwrap_or_else(|e| panic!("{} on {} ({}): {e}", app.name, gpu.name, gpu.arch.name()));
    for r in &reports {
        assert!(
            r.occupancy_ok,
            "{} launch {} ({}): occupancy mismatch on {} ({})",
            app.name,
            r.launch,
            r.kernel,
            gpu.name,
            gpu.arch.name()
        );
        if let Some(c) = r.failures().into_iter().next() {
            panic!(
                "{} launch {} ({}) on {} ({}): {} diverged — static {} vs dynamic {} (rel {:.3e})",
                app.name,
                r.launch,
                r.kernel,
                gpu.name,
                gpu.arch.name(),
                c.counter,
                c.static_value,
                c.dynamic_value,
                c.rel_error
            );
        }
    }
}

#[test]
fn reduce_sweep_agrees_on_every_architecture() {
    // A representative slice of the paper's sweep (§5): every variant at one
    // size, plus the analysed variants (1, 2, 6) across sizes and block
    // sizes.
    for gpu in gpus() {
        for variant in ReduceVariant::ALL {
            assert_agrees(&gpu, &reduce_application(variant, 1 << 14, 128));
        }
        for variant in [
            ReduceVariant::Reduce1,
            ReduceVariant::Reduce2,
            ReduceVariant::Reduce6,
        ] {
            for n in [1 << 16, 1 << 18, 1 << 20] {
                for threads in [64, 128, 256, 512] {
                    assert_agrees(&gpu, &reduce_application(variant, n, threads));
                }
            }
        }
    }
}

#[test]
fn matmul_sweep_agrees_on_every_architecture() {
    for gpu in gpus() {
        for n in [32, 96, 256] {
            assert_agrees(&gpu, &matmul_application(n));
        }
    }
}

#[test]
fn nw_sweep_agrees_on_every_architecture() {
    for gpu in gpus() {
        for n in [64, 256, 1024, 2048] {
            assert_agrees(&gpu, &nw_application(n, 10));
        }
    }
}

#[test]
fn stencil_sweep_agrees_on_every_architecture() {
    for gpu in gpus() {
        for n in [64, 128, 256] {
            for sweeps in [1, 2] {
                assert_agrees(&gpu, &stencil_application(n, sweeps));
            }
        }
    }
}

/// Every zoo preset — not just the per-generation representatives — clears
/// the oracle on one kernel from each workload family. This is the cheap
/// tripwire that a newly added config (however exotic its geometry) is
/// internally consistent between the walk and the engine.
#[test]
fn whole_zoo_agrees_on_a_cross_workload_slice() {
    for gpu in GpuConfig::presets() {
        assert_agrees(
            &gpu,
            &reduce_application(ReduceVariant::Reduce1, 1 << 14, 256),
        );
        assert_agrees(&gpu, &matmul_application(64));
        assert_agrees(&gpu, &nw_application(128, 10));
        assert_agrees(&gpu, &stencil_application(64, 1));
    }
}

/// The oracle must have teeth: perturb genuine dynamic results one counter
/// at a time and check it flags exactly the counter that was broken.
#[test]
fn oracle_flags_each_injected_counter_bug() {
    let gpu = GpuConfig::gtx580();
    let app = reduce_application(ReduceVariant::Reduce1, 1 << 16, 256);
    let kernel = app.launches[0].as_ref();
    let a = analyze_launch(&gpu, kernel).unwrap();
    let clean = simulate_launch(&gpu, kernel).unwrap();
    assert!(
        !compare(&a, &clean, 0).divergent(),
        "baseline must be clean"
    );

    // (mutator, counter the oracle must blame)
    type Mutator = fn(&mut gpu_sim::RawEvents);
    let cases: Vec<(Mutator, &str)> = vec![
        (
            |ev| ev.global_load_transactions *= 0.9,
            "global_load_transactions",
        ),
        (|ev| ev.shared_load_replay += 1.0, "shared_load_replay"),
        (|ev| ev.inst_issued *= 1.01, "inst_issued"),
        (|ev| ev.gst_requested_bytes += 32.0, "gst_requested_bytes"),
        (
            |ev| ev.dram_write_transactions = 0.0,
            "dram_write_transactions",
        ),
    ];
    for (mutate, counter) in cases {
        let mut broken = clean.clone();
        mutate(&mut broken.events);
        let report = compare(&a, &broken, 0);
        assert!(report.divergent(), "oracle missed a broken {counter}");
        let blamed: Vec<&str> = report.failures().iter().map(|c| c.counter).collect();
        assert_eq!(blamed, vec![counter], "wrong counter blamed");
    }
}

/// An injected occupancy bug (wrong limiter or block count) is also caught.
#[test]
fn oracle_flags_injected_occupancy_bug() {
    let gpu = GpuConfig::gtx580();
    let app = nw_application(256, 10);
    let kernel = app.launches[0].as_ref();
    let a = analyze_launch(&gpu, kernel).unwrap();
    let mut d = simulate_launch(&gpu, kernel).unwrap();
    d.occupancy.blocks_per_sm += 1;
    let report = compare(&a, &d, 0);
    assert!(!report.occupancy_ok);
    assert!(report.divergent());
}
