//! The differential oracle as an integration suite: static predictions must
//! match dynamic counters across the paper's workload sweeps, on both GPU
//! generations, for every launch of every application.
//!
//! Tolerances (see `DESIGN.md`): occupancy exact; counters within
//! `REL_TOLERANCE` (float noise only). A failure here means the static walk
//! and the cycle engine disagree about the machine's causal structure —
//! i.e. somebody introduced a bug.

use bf_analyze::oracle::{check_application, compare, OracleReport};
use bf_analyze::walk::analyze_launch;
use bf_kernels::nw::nw_application;
use bf_kernels::reduce::{reduce_application, ReduceVariant};
use bf_kernels::stencil::stencil_application;
use bf_kernels::Application;
use gpu_sim::{simulate_launch, GpuConfig};

fn gpus() -> Vec<GpuConfig> {
    vec![GpuConfig::gtx580(), GpuConfig::k20m()]
}

fn assert_agrees(gpu: &GpuConfig, app: &Application) {
    let reports: Vec<OracleReport> =
        check_application(gpu, app).unwrap_or_else(|e| panic!("{}: {e}", app.name));
    for r in &reports {
        assert!(
            r.occupancy_ok,
            "{} launch {} ({}): occupancy mismatch on {}",
            app.name, r.launch, r.kernel, gpu.name
        );
        if let Some(c) = r.failures().into_iter().next() {
            panic!(
                "{} launch {} ({}) on {}: {} diverged — static {} vs dynamic {} (rel {:.3e})",
                app.name,
                r.launch,
                r.kernel,
                gpu.name,
                c.counter,
                c.static_value,
                c.dynamic_value,
                c.rel_error
            );
        }
    }
}

#[test]
fn reduce_sweep_agrees_on_both_gpus() {
    // A representative slice of the paper's sweep (§5): every variant at one
    // size, plus the analysed variants (1, 2, 6) across sizes and block
    // sizes.
    for gpu in gpus() {
        for variant in ReduceVariant::ALL {
            assert_agrees(&gpu, &reduce_application(variant, 1 << 14, 128));
        }
        for variant in [
            ReduceVariant::Reduce1,
            ReduceVariant::Reduce2,
            ReduceVariant::Reduce6,
        ] {
            for n in [1 << 16, 1 << 18, 1 << 20] {
                for threads in [64, 128, 256, 512] {
                    assert_agrees(&gpu, &reduce_application(variant, n, threads));
                }
            }
        }
    }
}

#[test]
fn nw_sweep_agrees_on_both_gpus() {
    for gpu in gpus() {
        for n in [64, 256, 1024, 2048] {
            assert_agrees(&gpu, &nw_application(n, 10));
        }
    }
}

#[test]
fn stencil_sweep_agrees_on_both_gpus() {
    for gpu in gpus() {
        for n in [64, 128, 256] {
            for sweeps in [1, 2] {
                assert_agrees(&gpu, &stencil_application(n, sweeps));
            }
        }
    }
}

/// The oracle must have teeth: perturb genuine dynamic results one counter
/// at a time and check it flags exactly the counter that was broken.
#[test]
fn oracle_flags_each_injected_counter_bug() {
    let gpu = GpuConfig::gtx580();
    let app = reduce_application(ReduceVariant::Reduce1, 1 << 16, 256);
    let kernel = app.launches[0].as_ref();
    let a = analyze_launch(&gpu, kernel).unwrap();
    let clean = simulate_launch(&gpu, kernel).unwrap();
    assert!(
        !compare(&a, &clean, 0).divergent(),
        "baseline must be clean"
    );

    // (mutator, counter the oracle must blame)
    type Mutator = fn(&mut gpu_sim::RawEvents);
    let cases: Vec<(Mutator, &str)> = vec![
        (
            |ev| ev.global_load_transactions *= 0.9,
            "global_load_transactions",
        ),
        (|ev| ev.shared_load_replay += 1.0, "shared_load_replay"),
        (|ev| ev.inst_issued *= 1.01, "inst_issued"),
        (|ev| ev.gst_requested_bytes += 32.0, "gst_requested_bytes"),
        (
            |ev| ev.dram_write_transactions = 0.0,
            "dram_write_transactions",
        ),
    ];
    for (mutate, counter) in cases {
        let mut broken = clean.clone();
        mutate(&mut broken.events);
        let report = compare(&a, &broken, 0);
        assert!(report.divergent(), "oracle missed a broken {counter}");
        let blamed: Vec<&str> = report.failures().iter().map(|c| c.counter).collect();
        assert_eq!(blamed, vec![counter], "wrong counter blamed");
    }
}

/// An injected occupancy bug (wrong limiter or block count) is also caught.
#[test]
fn oracle_flags_injected_occupancy_bug() {
    let gpu = GpuConfig::gtx580();
    let app = nw_application(256, 10);
    let kernel = app.launches[0].as_ref();
    let a = analyze_launch(&gpu, kernel).unwrap();
    let mut d = simulate_launch(&gpu, kernel).unwrap();
    d.occupancy.blocks_per_sm += 1;
    let report = compare(&a, &d, 0);
    assert!(!report.occupancy_ok);
    assert!(report.divergent());
}
