//! Conservation property suite for basic-block attribution.
//!
//! [`bf_analyze::attribute_launch`] splits the static walk's counters by
//! basic block; the hard invariant is that nothing is lost or double
//! counted — per-block sums must equal the launch totals **bit for bit**
//! for every counter, over *arbitrary* valid traces, not just the shipped
//! kernels. Proptest generates those traces here; a seeded-bug test shows
//! that a deliberately mis-attributed counter is caught; and an acceptance
//! sweep pins the invariant across the paper's workloads on both GPU
//! generations.

use bf_analyze::{analyze_launch, attribute_launch, check_conservation, workload_sweep};
use gpu_sim::trace::{BlockTrace, KernelTrace, LaunchConfig, WarpInstruction};
use gpu_sim::GpuConfig;
use proptest::prelude::*;

/// A synthetic kernel replaying one generated block trace for every grid
/// block — the minimal [`KernelTrace`] needed to drive the analyzer over
/// proptest-generated streams.
struct SyntheticKernel {
    trace: BlockTrace,
    grid_blocks: usize,
}

impl KernelTrace for SyntheticKernel {
    fn name(&self) -> String {
        "synthetic_proptest_kernel".to_string()
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig {
            grid_blocks: self.grid_blocks,
            threads_per_block: self.trace.warps.len().max(1) * 32,
            regs_per_thread: 16,
            shared_mem_per_block: 4096,
        }
    }

    fn block_trace(&self, _block_id: usize, _gpu: &GpuConfig) -> BlockTrace {
        self.trace.clone()
    }
}

/// Any zoo preset — all five architecture generations, both memory-path
/// variants — with randomly perturbed geometry on top: SM count,
/// scheduler/dispatch width, bank count, and the full L1 mode matrix
/// (line-tagged, bypassed, sectored). Conservation must hold on the whole
/// configuration space, not just the shipped points.
fn arb_gpu() -> impl Strategy<Value = GpuConfig> {
    (
        0usize..GpuConfig::presets().len(),
        1usize..=32,                                                  // num_sms
        1usize..=4,                                                   // warp_schedulers
        1usize..=2,                                                   // dispatch_per_scheduler
        prop_oneof![Just(16usize), Just(32)],                         // shared_banks
        any::<bool>(),                                                // l1_caches_globals
        any::<bool>(),                                                // l1_sectored
        prop_oneof![Just(524288usize), Just(1572864), Just(6291456)], // l2_size
    )
        .prop_map(
            |(preset, num_sms, warp_schedulers, dispatch, banks, l1_globals, l1_sectored, l2)| {
                GpuConfig {
                    num_sms,
                    warp_schedulers,
                    dispatch_per_scheduler: dispatch,
                    shared_banks: banks,
                    l1_caches_globals: l1_globals,
                    l1_sectored,
                    l2_size: l2,
                    ..GpuConfig::presets().swap_remove(preset)
                }
            },
        )
}

fn arb_addrs() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..(1 << 20), 32)
}

fn arb_offsets() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..4096, 32)
}

fn arb_width() -> impl Strategy<Value = u8> {
    prop_oneof![Just(4u8), Just(8u8)]
}

/// Any non-barrier warp instruction — arbitrary masks (full, partial,
/// empty) and full 32-slot address vectors, the documented convention.
fn arb_instruction() -> impl Strategy<Value = WarpInstruction> {
    prop_oneof![
        (1u32..8, any::<u32>()).prop_map(|(count, mask)| WarpInstruction::Alu { count, mask }),
        any::<u32>().prop_map(|mask| WarpInstruction::Sfu { mask }),
        (arb_addrs(), arb_width(), any::<u32>())
            .prop_map(|(addrs, width, mask)| WarpInstruction::LoadGlobal { addrs, width, mask }),
        (arb_addrs(), arb_width(), any::<u32>())
            .prop_map(|(addrs, width, mask)| WarpInstruction::StoreGlobal { addrs, width, mask }),
        (arb_offsets(), arb_width(), any::<u32>()).prop_map(|(offsets, width, mask)| {
            WarpInstruction::LoadShared {
                offsets,
                width,
                mask,
            }
        }),
        (arb_offsets(), arb_width(), any::<u32>()).prop_map(|(offsets, width, mask)| {
            WarpInstruction::StoreShared {
                offsets,
                width,
                mask,
            }
        }),
        (any::<bool>(), any::<u32>())
            .prop_map(|(divergent, mask)| WarpInstruction::Branch { divergent, mask }),
    ]
}

/// A structurally valid block: every warp has the same number of barriers
/// (the deadlock-freedom invariant `BlockTrace::validate` enforces), with
/// arbitrary barrier-separated segments around them.
fn arb_block() -> impl Strategy<Value = BlockTrace> {
    (1usize..=4, 0usize..=2).prop_flat_map(|(warps, barriers)| {
        proptest::collection::vec(
            proptest::collection::vec(
                proptest::collection::vec(arb_instruction(), 0..5),
                barriers + 1,
            ),
            warps,
        )
        .prop_map(|warp_segments| {
            let mut t = BlockTrace::with_warps(warp_segments.len());
            for (w, segments) in warp_segments.into_iter().enumerate() {
                for (i, segment) in segments.into_iter().enumerate() {
                    if i > 0 {
                        t.warps[w].push(WarpInstruction::Barrier);
                    }
                    t.warps[w].extend(segment);
                }
            }
            t
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Over arbitrary valid traces on both GPU generations, every one of
    /// the 25 statically exact counters attributed across basic blocks
    /// sums back to the launch total bit for bit.
    #[test]
    fn attribution_conserves_all_counters_over_arbitrary_traces(
        gpu in arb_gpu(),
        trace in arb_block(),
        grid_blocks in 1usize..64,
    ) {
        let kernel = SyntheticKernel { trace, grid_blocks };
        let launch = analyze_launch(&gpu, &kernel).unwrap();
        let blocks = attribute_launch(&gpu, &kernel).unwrap();
        for c in check_conservation(&blocks, &launch) {
            prop_assert!(
                c.ok,
                "counter {} not conserved: attributed {} vs launch {} (rel {:.3e})",
                c.counter, c.attributed, c.launch_total, c.rel_error
            );
            prop_assert!(
                c.exact,
                "counter {} conserved only approximately: attributed {} vs launch {}",
                c.counter, c.attributed, c.launch_total
            );
        }
        // Sanity: the attribution actually partitioned the stream (any
        // non-empty warp stream yields at least one block).
        if blocks.blocks.is_empty() {
            prop_assert_eq!(launch.counts.inst_issued, 0.0);
        }
    }
}

/// The check has teeth: seeding a deliberate mis-attribution (one extra
/// issue slot credited to the hottest block) is flagged on exactly the
/// perturbed counter.
#[test]
fn seeded_misattribution_is_caught() {
    use bf_kernels::reduce::{reduce_application, ReduceVariant};

    let gpu = GpuConfig::gtx580();
    let app = reduce_application(ReduceVariant::Reduce1, 1 << 14, 128);
    let kernel = app.launches[0].as_ref();
    let launch = analyze_launch(&gpu, kernel).unwrap();
    let mut blocks = attribute_launch(&gpu, kernel).unwrap();

    // Green before the bug is seeded.
    assert!(check_conservation(&blocks, &launch).iter().all(|c| c.ok));

    blocks.blocks[0].counts.inst_issued += 1.0;
    let checks = check_conservation(&blocks, &launch);
    let bad: Vec<_> = checks.iter().filter(|c| !c.ok).collect();
    assert_eq!(bad.len(), 1, "exactly the perturbed counter fails: {bad:?}");
    assert_eq!(bad[0].counter, "inst_issued");
    assert!(bad[0].rel_error > bf_analyze::REL_TOLERANCE);
}

/// Acceptance: conservation is green (and bit-for-bit) across the paper's
/// workload sweeps — all seven reduce variants, Needleman-Wunsch, and the
/// stencil — on one representative of every architecture generation.
#[test]
fn conservation_holds_across_paper_workloads_on_every_architecture() {
    for gpu in GpuConfig::arch_representatives() {
        for workload in [
            "reduce0", "reduce1", "reduce2", "reduce3", "reduce4", "reduce5", "reduce6", "nw",
            "stencil",
        ] {
            let apps = workload_sweep(workload, true).unwrap();
            for app in &apps {
                for (i, kernel) in app.launches.iter().enumerate() {
                    let launch = analyze_launch(&gpu, kernel.as_ref()).unwrap();
                    let blocks = attribute_launch(&gpu, kernel.as_ref()).unwrap();
                    for c in check_conservation(&blocks, &launch) {
                        assert!(
                            c.ok && c.exact,
                            "{} launch {i} on {} ({}): counter {} drifted \
                             (attributed {} vs launch {}, rel {:.3e})",
                            app.name,
                            gpu.name,
                            gpu.arch.name(),
                            c.counter,
                            c.attributed,
                            c.launch_total,
                            c.rel_error
                        );
                    }
                }
            }
        }
    }
}
