//! Loop-extrapolation accuracy, gated by the differential oracle.
//!
//! Steady-state extrapolation ([`gpu_sim::steady`]) replaces the tail of
//! highly periodic warp streams with a closed-form scale-up. The static
//! walk knows nothing about that shortcut — it derives every counter from
//! the full trace — so running the oracle against an *extrapolating*
//! simulation proves the shortcut is counter-exact on the real workloads:
//! every statically checkable counter within `REL_TOLERANCE` (1e-9),
//! occupancy exact, over reduce0..6, NW, and the stencil, on both GPU
//! generations.
//!
//! Both engine modes are pinned explicitly (options passed directly, no
//! environment racing), so a regression in either the extrapolation rule
//! or its stabilisation guard fails here regardless of `BF_SIM_LOOP_EXTRAP`.

use bf_analyze::oracle::compare;
use bf_analyze::walk::analyze_launch;
use bf_kernels::nw::nw_application;
use bf_kernels::reduce::{reduce_application, ReduceVariant};
use bf_kernels::stencil::stencil_application;
use bf_kernels::Application;
use gpu_sim::occupancy::occupancy;
use gpu_sim::{
    sample_block_ids, simulate_sampled_launch_with, BlockTrace, EngineOptions, GpuConfig,
    LaunchResult,
};

fn gpus() -> Vec<GpuConfig> {
    vec![GpuConfig::gtx580(), GpuConfig::k20m()]
}

/// Simulates one launch with explicit engine options (mirrors
/// `simulate_launch` but does not consult the environment).
fn simulate_with(
    gpu: &GpuConfig,
    kernel: &dyn gpu_sim::KernelTrace,
    loop_extrapolation: bool,
) -> LaunchResult {
    let lc = kernel.launch_config();
    let occ = occupancy(gpu, &lc).unwrap();
    let ids = sample_block_ids(lc.grid_blocks, occ.blocks_per_sm);
    let traces: Vec<BlockTrace> = ids.iter().map(|&b| kernel.block_trace(b, gpu)).collect();
    simulate_sampled_launch_with(
        gpu,
        &lc,
        occ,
        &traces,
        &EngineOptions { loop_extrapolation },
    )
    .unwrap()
}

fn assert_oracle_green(gpu: &GpuConfig, app: &Application, loop_extrapolation: bool) {
    for (i, kernel) in app.launches.iter().enumerate() {
        let a = analyze_launch(gpu, kernel.as_ref()).unwrap();
        let d = simulate_with(gpu, kernel.as_ref(), loop_extrapolation);
        let report = compare(&a, &d, i);
        assert!(
            report.occupancy_ok,
            "{} launch {i} ({}) on {}: occupancy mismatch (extrapolation={loop_extrapolation})",
            app.name, report.kernel, gpu.name
        );
        if let Some(c) = report.failures().into_iter().next() {
            panic!(
                "{} launch {i} ({}) on {} with extrapolation={loop_extrapolation}: \
                 {} diverged — static {} vs dynamic {} (rel {:.3e})",
                app.name,
                report.kernel,
                gpu.name,
                c.counter,
                c.static_value,
                c.dynamic_value,
                c.rel_error
            );
        }
    }
}

fn apps() -> Vec<Application> {
    let mut apps: Vec<Application> = ReduceVariant::ALL
        .iter()
        .map(|&v| reduce_application(v, 1 << 16, 256))
        .collect();
    apps.push(nw_application(256, 10));
    apps.push(stencil_application(128, 2));
    apps
}

#[test]
fn extrapolating_engine_stays_oracle_exact_on_all_workloads() {
    for gpu in gpus() {
        for app in apps() {
            assert_oracle_green(&gpu, &app, true);
        }
    }
}

#[test]
fn full_simulation_stays_oracle_exact_on_all_workloads() {
    for gpu in gpus() {
        for app in apps() {
            assert_oracle_green(&gpu, &app, false);
        }
    }
}

/// The two modes must also agree with *each other* on the statically exact
/// counters — extrapolation changes how much is simulated, never what is
/// counted.
#[test]
fn extrapolated_and_full_counters_agree_directly() {
    for gpu in gpus() {
        for app in apps() {
            for kernel in &app.launches {
                let full = simulate_with(&gpu, kernel.as_ref(), false);
                let extr = simulate_with(&gpu, kernel.as_ref(), true);
                let a = analyze_launch(&gpu, kernel.as_ref()).unwrap();
                // Reuse the oracle's counter list by comparing both dynamic
                // runs against the same static analysis: if both are green,
                // they agree pairwise within 2e-9.
                assert!(!compare(&a, &full, 0).divergent());
                assert!(!compare(&a, &extr, 0).divergent());
                assert_eq!(full.waves, extr.waves, "{}", kernel.name());
                assert_eq!(full.sampled_blocks, extr.sampled_blocks);
            }
        }
    }
}
