//! Per-basic-block counter attribution with a hard conservation invariant.
//!
//! [`crate::walk::analyze_launch`] blames whole launches; this module splits
//! the same walk by basic block. Each warp stream is segmented at
//! `Branch`/`Barrier` boundaries ([`gpu_sim::blocks`]), every instruction's
//! contribution is routed to its block's accumulator using the *identical*
//! counting rules (`walk_instruction` is shared, not re-implemented), and
//! occurrences of the same code region — identified by the content-derived
//! block id — merge across warps and sampled thread blocks.
//!
//! **Conservation invariant.** For every one of the 25 static counters, the
//! per-block attributions summed over all blocks and scaled by the grid
//! factor must equal the launch-level total — bit-for-bit in practice, and
//! never worse than the oracle's 1e-9 relative tolerance. Bit-exactness
//! holds because all unscaled counts are integer-valued f64 well below 2^53
//! (exact in any summation order) and both paths apply the same single
//! scaling multiply at the end. [`check_conservation`] is the executable
//! form; the lint driver raises `BF-E003` on any violation.
//!
//! Launch-structural counters (`warps_launched`, `blocks_launched`) have no
//! owning instruction; they are attributed to each warp's *entry block* (the
//! first basic block of the stream, or a synthetic empty-content block for
//! an empty stream) so they conserve like everything else.

use crate::oracle::REL_TOLERANCE;
use crate::walk::{
    walk_instruction, CoalescingSummary, DivergenceSummary, Location, SharedConflictSummary,
    StaticCounts, StaticLaunchAnalysis,
};
use bf_kernels::Application;
use gpu_sim::blocks::{block_content_id, segment_stream};
use gpu_sim::occupancy::occupancy;
use gpu_sim::trace::{BlockTrace, KernelTrace};
use gpu_sim::{sample_block_ids, GpuConfig, Result};
use serde::Serialize;

/// A block qualifies as "hot" at application level when it carries at least
/// this share of the attributed issue-slot cost (feeds the
/// `static_hot_block_count` dataset column).
pub const APP_HOT_BLOCK_SHARE: f64 = 0.10;

/// Everything attributed to one basic block (merged over all occurrences of
/// the code region across warps and sampled thread blocks).
#[derive(Debug, Clone, Serialize)]
pub struct BlockAttribution {
    /// Stable content-derived block id ([`gpu_sim::blocks::block_content_id`]).
    pub id: u64,
    /// Where the block was first seen (instruction index = span start).
    pub first_seen: Location,
    /// Instructions in the block body (first occurrence's span length).
    pub instructions: usize,
    /// How many spans (warp x occurrence) merged into this attribution.
    pub occurrences: u64,
    /// Event counts, **unscaled** (per sampled set; multiply by the launch
    /// scale for full-grid numbers).
    pub counts: StaticCounts,
    /// Bank-conflict profile of this block's shared accesses.
    pub shared: SharedConflictSummary,
    /// Load-coalescing profile of this block's global loads.
    pub loads: CoalescingSummary,
    /// Store-coalescing profile of this block's global stores.
    pub stores: CoalescingSummary,
    /// Divergence profile of this block's branches.
    pub divergence: DivergenceSummary,
}

impl BlockAttribution {
    /// The block's attributed cost: issue slots consumed (replays and
    /// per-transaction issues included), unscaled. Issue slots are the
    /// scheduler's unit of work, so they are the ranking currency for
    /// block-level diagnostics.
    pub fn cost(&self) -> f64 {
        self.counts.inst_issued
    }

    /// The block id rendered the way reports print it.
    pub fn id_hex(&self) -> String {
        format!("{:016x}", self.id)
    }
}

/// Per-basic-block decomposition of one launch's static analysis.
#[derive(Debug, Clone, Serialize)]
pub struct BlockLevelAnalysis {
    /// Kernel name.
    pub kernel: String,
    /// Grid scaling factor (same as the launch-level analysis).
    pub scale: f64,
    /// Attributions, sorted by attributed cost (descending), then id.
    pub blocks: Vec<BlockAttribution>,
}

impl BlockLevelAnalysis {
    /// Total attributed cost (unscaled issue slots over all blocks).
    pub fn total_cost(&self) -> f64 {
        self.blocks.iter().map(BlockAttribution::cost).sum()
    }

    /// Fraction of the total attributed cost carried by `b` (0 when the
    /// launch has no cost at all).
    pub fn cost_share(&self, b: &BlockAttribution) -> f64 {
        let total = self.total_cost();
        if total > 0.0 {
            b.cost() / total
        } else {
            0.0
        }
    }

    /// Cost share of the most expensive block.
    pub fn top_share(&self) -> f64 {
        self.blocks
            .first()
            .map(|b| self.cost_share(b))
            .unwrap_or(0.0)
    }

    /// Sums the per-block counters and applies the grid scale — by
    /// construction this must equal the launch-level totals (see
    /// [`check_conservation`]).
    pub fn scaled_totals(&self) -> StaticCounts {
        let mut sum = StaticCounts::default();
        for b in &self.blocks {
            sum.add(&b.counts);
        }
        sum.scaled(self.scale)
    }
}

/// One counter's conservation verdict: per-block sum vs launch total.
#[derive(Debug, Clone, Serialize)]
pub struct ConservationCheck {
    /// Counter name ([`StaticCounts`] field).
    pub counter: &'static str,
    /// Scaled sum of the per-block attributions.
    pub attributed: f64,
    /// Launch-level total from [`analyze_launch`].
    pub launch_total: f64,
    /// `|attributed - launch_total| / max(|launch_total|, 1)`.
    pub rel_error: f64,
    /// Within the oracle tolerance (1e-9).
    pub ok: bool,
    /// Bit-for-bit identical (the expected case).
    pub exact: bool,
}

/// Checks the conservation invariant for every static counter: per-block
/// attributions, summed and scaled, must reproduce the launch totals.
pub fn check_conservation(
    blocks: &BlockLevelAnalysis,
    launch: &StaticLaunchAnalysis,
) -> Vec<ConservationCheck> {
    let attributed = blocks.scaled_totals();
    attributed
        .fields()
        .iter()
        .zip(launch.counts.fields())
        .map(|(&(counter, a), (_, t))| {
            let rel_error = (a - t).abs() / t.abs().max(1.0);
            ConservationCheck {
                counter,
                attributed: a,
                launch_total: t,
                rel_error,
                ok: rel_error <= REL_TOLERANCE,
                exact: a.to_bits() == t.to_bits(),
            }
        })
        .collect()
}

/// Attributes one launch's static counters to basic blocks.
///
/// Walks exactly the blocks [`analyze_launch`] samples, in the same order,
/// applying the same counting rules — only the destination accumulator
/// differs (the instruction's enclosing basic block instead of the launch).
pub fn attribute_launch(gpu: &GpuConfig, kernel: &dyn KernelTrace) -> Result<BlockLevelAnalysis> {
    let lc = kernel.launch_config();
    let occ = occupancy(gpu, &lc)?;
    let ids = sample_block_ids(lc.grid_blocks, occ.blocks_per_sm);
    let traces: Vec<BlockTrace> = ids.iter().map(|&b| kernel.block_trace(b, gpu)).collect();
    for t in &traces {
        t.validate()?;
    }

    let mut blocks: Vec<BlockAttribution> = Vec::new();
    // id -> index into `blocks`; linear scan is fine at trace block counts
    // (tens of distinct blocks), and it keeps first-seen order deterministic.
    let find = |blocks: &mut Vec<BlockAttribution>, id: u64, first_seen: Location, len: usize| {
        match blocks.iter().position(|b| b.id == id) {
            Some(i) => i,
            None => {
                let mut b = BlockAttribution {
                    id,
                    first_seen,
                    instructions: len,
                    occurrences: 0,
                    counts: StaticCounts::default(),
                    shared: SharedConflictSummary::default(),
                    loads: CoalescingSummary::default(),
                    stores: CoalescingSummary::default(),
                    divergence: DivergenceSummary::default(),
                };
                b.loads.worst_efficiency = 1.0;
                b.stores.worst_efficiency = 1.0;
                blocks.push(b);
                blocks.len() - 1
            }
        }
    };
    // Id of the synthetic entry block used when a warp stream is empty:
    // launch-structural counters still need an owner.
    let empty_id = block_content_id(&[]);

    for (trace, &grid_block) in traces.iter().zip(&ids) {
        if trace.warps.is_empty() {
            // A degenerate warpless trace still counts as a launched block.
            let loc = Location {
                block: grid_block,
                warp: 0,
                instruction: 0,
            };
            let entry = find(&mut blocks, empty_id, loc, 0);
            blocks[entry].counts.blocks_launched += 1.0;
            continue;
        }
        for (warp, stream) in trace.warps.iter().enumerate() {
            let spans = segment_stream(stream);
            let entry_loc = Location {
                block: grid_block,
                warp,
                instruction: 0,
            };
            // Launch-structural attribution: this warp to its entry block,
            // and (for warp 0) the thread block itself.
            let entry = match spans.first() {
                Some(s) => find(&mut blocks, s.id, entry_loc, s.len()),
                None => find(&mut blocks, empty_id, entry_loc, 0),
            };
            blocks[entry].counts.warps_launched += 1.0;
            if warp == 0 {
                blocks[entry].counts.blocks_launched += 1.0;
            }
            for span in &spans {
                let idx = find(
                    &mut blocks,
                    span.id,
                    Location {
                        block: grid_block,
                        warp,
                        instruction: span.start,
                    },
                    span.len(),
                );
                let b = &mut blocks[idx];
                b.occurrences += 1;
                for (i, instr) in stream[span.start..span.end].iter().enumerate() {
                    let loc = Location {
                        block: grid_block,
                        warp,
                        instruction: span.start + i,
                    };
                    walk_instruction(
                        gpu,
                        instr,
                        loc,
                        &mut b.counts,
                        &mut b.shared,
                        &mut b.loads,
                        &mut b.stores,
                        &mut b.divergence,
                    );
                }
            }
        }
    }

    blocks.sort_by(|a, b| {
        b.cost()
            .partial_cmp(&a.cost())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.id.cmp(&b.id))
    });
    let scale = lc.grid_blocks as f64 / traces.len() as f64;
    Ok(BlockLevelAnalysis {
        kernel: kernel.name(),
        scale,
        blocks,
    })
}

/// Application-level rollup of block attributions: the aggregates fed into
/// `collect --static-features`.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct AppBlockProfile {
    /// Distinct basic blocks across all launches.
    pub distinct_blocks: usize,
    /// Cost share of the most expensive block (scaled issue slots, summed
    /// per block id across launches, over the application total).
    pub top_block_cost_share: f64,
    /// Blocks carrying at least [`APP_HOT_BLOCK_SHARE`] of the cost.
    pub hot_block_count: usize,
}

/// Rolls per-launch block analyses up to one application profile. Costs are
/// scaled to the full grid before merging so launches of different grid
/// sizes weigh in proportionally.
pub fn block_profile(analyses: &[BlockLevelAnalysis]) -> AppBlockProfile {
    let mut per_block: Vec<(u64, f64)> = Vec::new();
    for a in analyses {
        for b in &a.blocks {
            let cost = b.cost() * a.scale;
            match per_block.iter_mut().find(|(id, _)| *id == b.id) {
                Some((_, c)) => *c += cost,
                None => per_block.push((b.id, cost)),
            }
        }
    }
    let total: f64 = per_block.iter().map(|(_, c)| c).sum();
    if total <= 0.0 {
        return AppBlockProfile {
            distinct_blocks: per_block.len(),
            top_block_cost_share: 0.0,
            hot_block_count: 0,
        };
    }
    let top = per_block.iter().map(|(_, c)| *c).fold(0.0, f64::max);
    AppBlockProfile {
        distinct_blocks: per_block.len(),
        top_block_cost_share: top / total,
        hot_block_count: per_block
            .iter()
            .filter(|(_, c)| c / total >= APP_HOT_BLOCK_SHARE)
            .count(),
    }
}

/// Attributes every launch of an application and rolls up the profile.
pub fn application_block_profile(gpu: &GpuConfig, app: &Application) -> Result<AppBlockProfile> {
    let analyses: Vec<BlockLevelAnalysis> = app
        .launches
        .iter()
        .enumerate()
        .map(|(i, k)| attribute_launch(gpu, k.as_ref()).map_err(|e| e.in_kernel(&k.name(), i)))
        .collect::<Result<_>>()?;
    Ok(block_profile(&analyses))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::analyze_launch;
    use bf_kernels::reduce::{reduce_application, ReduceVariant};

    #[test]
    fn attribution_conserves_every_counter_bit_for_bit() {
        let gpu = GpuConfig::gtx580();
        let app = reduce_application(ReduceVariant::Reduce1, 1 << 14, 128);
        for (i, k) in app.launches.iter().enumerate() {
            let a = analyze_launch(&gpu, k.as_ref()).unwrap();
            let b = attribute_launch(&gpu, k.as_ref()).unwrap();
            for c in check_conservation(&b, &a) {
                assert!(
                    c.ok,
                    "launch {i} counter {} not conserved: {} vs {}",
                    c.counter, c.attributed, c.launch_total
                );
                assert!(c.exact, "launch {i} counter {} inexact", c.counter);
            }
        }
    }

    #[test]
    fn blocks_are_ranked_by_cost_and_shares_sum_to_one() {
        let gpu = GpuConfig::gtx580();
        let app = reduce_application(ReduceVariant::Reduce1, 1 << 14, 128);
        let b = attribute_launch(&gpu, app.launches[0].as_ref()).unwrap();
        assert!(b.blocks.len() >= 2, "reduce1 should have multiple blocks");
        for w in b.blocks.windows(2) {
            assert!(w[0].cost() >= w[1].cost());
        }
        let share_sum: f64 = b.blocks.iter().map(|blk| b.cost_share(blk)).sum();
        assert!((share_sum - 1.0).abs() < 1e-12);
        assert!(b.top_share() > 0.0);
    }

    #[test]
    fn app_profile_reports_hot_blocks() {
        let gpu = GpuConfig::gtx580();
        let app = reduce_application(ReduceVariant::Reduce1, 1 << 14, 128);
        let p = application_block_profile(&gpu, &app).unwrap();
        assert!(p.distinct_blocks >= 2);
        assert!(p.top_block_cost_share > 0.0 && p.top_block_cost_share <= 1.0);
        assert!(p.hot_block_count >= 1);
        assert!(p.hot_block_count <= p.distinct_blocks);
    }
}
