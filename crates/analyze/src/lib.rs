//! Static kernel-launch analysis for the BlackForest toolchain.
//!
//! The paper's bottleneck analysis is *dynamic*: it infers bank conflicts,
//! uncoalesced access, and occupancy limits from hardware-performance-counter
//! values after running the kernel. Much of that signal, however, is already
//! present in the program structure — the launch configuration fixes
//! occupancy, and the per-lane address streams fix coalescing and
//! bank-conflict behaviour. This crate extracts it without running the cycle
//! engine, three ways:
//!
//! * **Static walk** ([`walk`]) — [`analyze_launch`] visits the same sampled
//!   block traces the simulator would and applies the same counting rules,
//!   producing full-grid event counts, coalescing/bank-conflict/divergence
//!   profiles, theoretical occupancy with its limiter, arithmetic intensity,
//!   and a roofline compute-vs-memory classification — in microseconds
//!   instead of a full simulation.
//! * **Diagnostics** ([`diag`]) — clippy-style findings with stable codes
//!   (`BF-W001` bank conflicts, `BF-W002` uncoalesced access, `BF-W003` low
//!   occupancy, `BF-W004` divergence, `BF-I101` roofline note, `BF-E00x`
//!   errors), severities, spans, and fix suggestions; driven over whole
//!   workload sweeps by [`lint`] (the engine behind the `bf lint`
//!   subcommand, with a stable JSON schema).
//! * **Differential oracle** ([`oracle`]) — every statically derivable
//!   counter is diffed against the dynamic simulator across the paper's
//!   sweeps; divergence beyond float noise means one side has a bug. This is
//!   the sanitizer that keeps the simulator's causal structure honest as it
//!   grows.

pub mod diag;
pub mod lint;
pub mod oracle;
pub mod walk;

pub use diag::{diagnose, Diagnostic, Severity, Span};
pub use lint::{lint_applications, lint_workload, render_text, LintOptions, LintReport, WORKLOADS};
pub use oracle::{check_application, check_launch, compare, OracleReport, REL_TOLERANCE};
pub use walk::{analyze_launch, BoundKind, Roofline, StaticCounts, StaticLaunchAnalysis};
