//! Static kernel-launch analysis for the BlackForest toolchain.
//!
//! The paper's bottleneck analysis is *dynamic*: it infers bank conflicts,
//! uncoalesced access, and occupancy limits from hardware-performance-counter
//! values after running the kernel. Much of that signal, however, is already
//! present in the program structure — the launch configuration fixes
//! occupancy, and the per-lane address streams fix coalescing and
//! bank-conflict behaviour. This crate extracts it without running the cycle
//! engine, three ways:
//!
//! * **Static walk** ([`walk`]) — [`analyze_launch`] visits the same sampled
//!   block traces the simulator would and applies the same counting rules,
//!   producing full-grid event counts, coalescing/bank-conflict/divergence
//!   profiles, theoretical occupancy with its limiter, arithmetic intensity,
//!   and a roofline compute-vs-memory classification — in microseconds
//!   instead of a full simulation.
//! * **Diagnostics** ([`diag`]) — clippy-style findings with stable codes
//!   (`BF-W001` bank conflicts, `BF-W002` uncoalesced access, `BF-W003` low
//!   occupancy, `BF-W004` divergence, `BF-I101` roofline note, `BF-E00x`
//!   errors), severities, spans, and fix suggestions; driven over whole
//!   workload sweeps by [`lint`] (the engine behind the `bf lint`
//!   subcommand, with a stable JSON schema).
//! * **Differential oracle** ([`oracle`]) — every statically derivable
//!   counter is diffed against the dynamic simulator across the paper's
//!   sweeps; divergence beyond float noise means one side has a bug. This is
//!   the sanitizer that keeps the simulator's causal structure honest as it
//!   grows.
//! * **Basic-block attribution** ([`attr`]) — the same walk split by basic
//!   block (segmented at branch/barrier boundaries with stable
//!   content-derived ids), under a hard conservation invariant: per-block
//!   counters sum back to the launch totals bit-for-bit. Block-level
//!   diagnostics rank findings by attributed cost ([`diag::diagnose_blocks`],
//!   `BF-W005` hot-block, `BF-E003` conservation violation).
//! * **What-if estimation** ([`whatif`]) — each warning's hypothetical fix
//!   (conflict-free shared offsets, coalesced global addresses, converged
//!   branches) is applied to the traces, counters are re-derived statically,
//!   and both vectors go through a trained model ([`WhatIfModel`]) to price
//!   the fix in predicted milliseconds.

pub mod attr;
pub mod diag;
pub mod lint;
pub mod oracle;
pub mod walk;
pub mod whatif;

pub use attr::{
    application_block_profile, attribute_launch, block_profile, check_conservation,
    AppBlockProfile, BlockAttribution, BlockLevelAnalysis, ConservationCheck, APP_HOT_BLOCK_SHARE,
};
pub use diag::{diagnose, diagnose_blocks, Diagnostic, Severity, Span};
pub use lint::{
    lint_applications, lint_applications_with, lint_workload, lint_workload_with, render_text,
    workload_sweep, workload_sweep_with_chars, LintConfig, LintOptions, LintReport, WORKLOADS,
};
pub use oracle::{check_application, check_launch, compare, OracleReport, REL_TOLERANCE};
pub use walk::{analyze_launch, BoundKind, Roofline, StaticCounts, StaticLaunchAnalysis};
pub use whatif::{static_counter_values, whatif_scenarios, Fix, FixedKernel, WhatIfModel};
