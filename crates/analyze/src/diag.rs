//! Clippy-style diagnostics derived from a static launch analysis.
//!
//! Each diagnostic carries a stable code (the BF-Wxxx catalogue in
//! `DESIGN.md`), a severity, a span pointing into the kernel, a message, and
//! a suggestion. Codes:
//!
//! | code    | severity | fires when |
//! |---------|----------|------------|
//! | BF-W001 | warning  | shared-memory access with bank-conflict degree >= 2 |
//! | BF-W002 | warning  | global load or store coalescing efficiency < 50%   |
//! | BF-W003 | warning  | theoretical occupancy < 50%                        |
//! | BF-W004 | warning  | >= 20% of branches diverge                         |
//! | BF-W005 | warning  | one basic block carries >= 50% of attributed cost  |
//! | BF-I101 | info     | roofline classification (always, one per launch)   |
//! | BF-E001 | error    | malformed trace or impossible launch               |
//! | BF-E002 | error    | differential-oracle divergence                     |
//! | BF-E003 | error    | per-block attribution violates conservation        |
//!
//! With `--blocks`, the mechanism warnings (W001/W002/W004) are emitted per
//! basic block instead of per launch ([`diagnose_blocks`]), each carrying
//! the block's attributed cost so reports rank findings by how much of the
//! launch they actually touch.

use crate::attr::{BlockAttribution, BlockLevelAnalysis};
use crate::walk::StaticLaunchAnalysis;
use gpu_sim::occupancy::OccupancyLimiter;
use gpu_sim::{GpuConfig, SimError};
use serde::{Deserialize, Serialize, Value};

/// Bank-conflict warning.
pub const BANK_CONFLICT: &str = "BF-W001";
/// Uncoalesced-access warning.
pub const UNCOALESCED: &str = "BF-W002";
/// Low-occupancy warning.
pub const LOW_OCCUPANCY: &str = "BF-W003";
/// Branch-divergence warning.
pub const DIVERGENCE: &str = "BF-W004";
/// Hot-block warning: a single basic block dominates the attributed cost.
pub const HOT_BLOCK: &str = "BF-W005";
/// Roofline classification note.
pub const ROOFLINE: &str = "BF-I101";
/// Malformed trace / impossible launch.
pub const MALFORMED: &str = "BF-E001";
/// Static-vs-dynamic oracle divergence.
pub const ORACLE_DIVERGENCE: &str = "BF-E002";
/// Per-block attribution fails to conserve a launch-level counter.
pub const CONSERVATION: &str = "BF-E003";

/// Coalescing efficiency below this fraction raises [`UNCOALESCED`].
pub const COALESCING_THRESHOLD: f64 = 0.5;
/// Theoretical occupancy below this fraction raises [`LOW_OCCUPANCY`].
pub const OCCUPANCY_THRESHOLD: f64 = 0.5;
/// Divergent-branch fraction at or above this raises [`DIVERGENCE`].
pub const DIVERGENCE_THRESHOLD: f64 = 0.2;
/// A block's attributed cost share at or above this raises [`HOT_BLOCK`]
/// (only meaningful when the launch has more than one block).
pub const HOT_BLOCK_THRESHOLD: f64 = 0.5;

/// How bad a diagnostic is; orders `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational note.
    Info,
    /// A likely performance problem.
    Warning,
    /// A correctness problem (malformed input, oracle divergence).
    Error,
}

impl Severity {
    /// Lower-case label used in reports and the JSON schema.
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// Parses the lower-case label.
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "info" => Some(Severity::Info),
            "warning" => Some(Severity::Warning),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl Serialize for Severity {
    fn serialize_value(&self) -> Value {
        Value::Str(self.as_str().to_string())
    }
}

impl Deserialize for Severity {
    fn deserialize_value(v: &Value) -> Result<Self, serde::Error> {
        match v {
            Value::Str(s) => {
                Severity::parse(s).ok_or_else(|| serde::Error(format!("unknown severity `{s}`")))
            }
            other => Err(serde::Error(format!(
                "expected severity string, found {other:?}"
            ))),
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where a diagnostic points: kernel, launch position, and (when the finding
/// is tied to a concrete instruction) block/warp/instruction indices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// Kernel name.
    pub kernel: String,
    /// Launch index within the application.
    pub launch: usize,
    /// Block id of the offending access, if instruction-level.
    pub block: Option<usize>,
    /// Warp index, if instruction-level.
    pub warp: Option<usize>,
    /// Instruction index within the warp stream, if instruction-level.
    pub instruction: Option<usize>,
}

impl Span {
    /// A launch-level span (no instruction attached).
    pub fn launch(kernel: &str, launch: usize) -> Span {
        Span {
            kernel: kernel.to_string(),
            launch,
            block: None,
            warp: None,
            instruction: None,
        }
    }

    /// Attaches an instruction location.
    pub fn at(mut self, loc: crate::walk::Location) -> Span {
        self.block = Some(loc.block);
        self.warp = Some(loc.warp);
        self.instruction = Some(loc.instruction);
        self
    }

    /// Renders `kernel[launch]` or `kernel[launch] b/w/i` for display.
    pub fn render(&self) -> String {
        match (self.block, self.warp, self.instruction) {
            (Some(b), Some(w), Some(i)) => {
                format!(
                    "{}[{}] block {} warp {} instr {}",
                    self.kernel, self.launch, b, w, i
                )
            }
            _ => format!("{}[{}]", self.kernel, self.launch),
        }
    }
}

/// One finding: a stable code, a severity, where it is, what it means, and
/// what to do about it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable code (BF-Wxxx catalogue).
    pub code: String,
    /// Severity.
    pub severity: Severity,
    /// Where the finding points.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
    /// Suggested fix.
    pub suggestion: String,
    /// Attributed cost of the finding (full-grid-scaled issue slots of the
    /// owning basic block); `None` for launch-level findings. Block-level
    /// lints sort on this, so the most expensive problems surface first.
    pub cost: Option<f64>,
}

impl Diagnostic {
    /// Renders the diagnostic in the clippy-like single-finding format.
    pub fn render(&self) -> String {
        format!(
            "{}[{}]: {}\n  --> {}\n  = help: {}",
            self.severity,
            self.code,
            self.message,
            self.span.render(),
            self.suggestion
        )
    }
}

/// Builds a [`MALFORMED`] error diagnostic from a simulator error.
pub fn malformed(kernel: &str, launch: usize, err: &SimError) -> Diagnostic {
    Diagnostic {
        code: MALFORMED.to_string(),
        severity: Severity::Error,
        span: Span::launch(kernel, launch),
        message: format!("launch cannot be analyzed: {err}"),
        suggestion: "fix the kernel trace or launch configuration; see the error detail".into(),
        cost: None,
    }
}

const BANK_CONFLICT_HINT: &str = "use sequential addressing or pad the shared array so \
                                  consecutive lanes hit distinct banks";
const LOAD_HINT: &str =
    "make consecutive lanes read consecutive addresses (structure-of-arrays layout)";
const STORE_HINT: &str =
    "write full warps to contiguous addresses, or stage results through shared memory";
const DIVERGENCE_HINT: &str = "restructure thread->work mapping so whole warps take the same \
                               path (e.g. strided reduction indexing)";

/// The occupancy check — shared by launch-level and block-level diagnosis
/// (occupancy is a property of the launch configuration, not of any block).
fn occupancy_check(gpu: &GpuConfig, a: &StaticLaunchAnalysis, launch: usize) -> Option<Diagnostic> {
    if a.occupancy.theoretical >= OCCUPANCY_THRESHOLD {
        return None;
    }
    let limiter = a.occupancy.limiter;
    let hint = match limiter {
        OccupancyLimiter::BlockSlots => {
            "increase the block size so fewer, larger blocks fill the warp slots"
        }
        OccupancyLimiter::WarpSlots => "reduce the block size or rebalance warps per block",
        OccupancyLimiter::Registers => {
            "reduce per-thread register use (or cap it with launch bounds)"
        }
        OccupancyLimiter::SharedMemory => "reduce per-block shared-memory allocation",
        OccupancyLimiter::GridSize => "launch more blocks to fill the machine",
    };
    Some(Diagnostic {
        code: LOW_OCCUPANCY.to_string(),
        severity: Severity::Warning,
        span: Span::launch(&a.kernel, launch),
        message: format!(
            "theoretical occupancy limited to {:.1}% by {} ({} blocks/SM, {} warps of {})",
            a.occupancy.theoretical * 100.0,
            limiter.name(),
            a.occupancy.blocks_per_sm,
            a.occupancy.warps_per_sm,
            gpu.max_warps_per_sm
        ),
        suggestion: hint.into(),
        cost: None,
    })
}

/// The always-emitted roofline note (launch-level by nature).
fn roofline_note(gpu: &GpuConfig, a: &StaticLaunchAnalysis, launch: usize) -> Diagnostic {
    let roofline = a.roofline(gpu);
    Diagnostic {
        code: ROOFLINE.to_string(),
        severity: Severity::Info,
        span: Span::launch(&a.kernel, launch),
        message: format!(
            "{} (arithmetic intensity {:.2} ops/byte; est. compute {:.2}us vs memory {:.2}us)",
            roofline.bound.label(),
            roofline.arithmetic_intensity,
            roofline.compute_seconds * 1e6,
            roofline.memory_seconds * 1e6
        ),
        suggestion: "informational; optimise the dominating side first".into(),
        cost: None,
    }
}

/// Runs every launch-level check over one static analysis.
pub fn diagnose(gpu: &GpuConfig, a: &StaticLaunchAnalysis, launch: usize) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let span = || Span::launch(&a.kernel, launch);

    if a.shared.max_degree >= 2 {
        let worst = a.shared.worst.expect("conflicted access has a location");
        out.push(Diagnostic {
            code: BANK_CONFLICT.to_string(),
            severity: Severity::Warning,
            span: span().at(worst),
            message: format!(
                "{}-way shared-memory bank conflict ({} of {} shared accesses conflicted)",
                a.shared.max_degree, a.shared.conflicted, a.shared.accesses
            ),
            suggestion: BANK_CONFLICT_HINT.into(),
            cost: None,
        });
    }

    for (what, summary, hint) in [
        ("load", &a.loads, LOAD_HINT),
        ("store", &a.stores, STORE_HINT),
    ] {
        if summary.requests > 0 && summary.efficiency() < COALESCING_THRESHOLD {
            let worst = summary.worst.expect("accesses recorded imply a worst span");
            out.push(Diagnostic {
                code: UNCOALESCED.to_string(),
                severity: Severity::Warning,
                span: span().at(worst),
                message: format!(
                    "uncoalesced global {}s: {:.1}% efficiency ({} transactions for {} requests)",
                    what,
                    summary.efficiency() * 100.0,
                    summary.transactions,
                    summary.requests
                ),
                suggestion: hint.into(),
                cost: None,
            });
        }
    }

    if let Some(d) = occupancy_check(gpu, a, launch) {
        out.push(d);
    }

    if a.divergence.branches > 0 {
        let frac = a.divergence.divergent as f64 / a.divergence.branches as f64;
        if frac >= DIVERGENCE_THRESHOLD {
            let first = a.divergence.first.expect("divergent branch has a location");
            out.push(Diagnostic {
                code: DIVERGENCE.to_string(),
                severity: Severity::Warning,
                span: span().at(first),
                message: format!(
                    "{:.0}% of branches diverge ({} of {}); diverged paths serialise",
                    frac * 100.0,
                    a.divergence.divergent,
                    a.divergence.branches
                ),
                suggestion: DIVERGENCE_HINT.into(),
                cost: None,
            });
        }
    }

    out.push(roofline_note(gpu, a, launch));
    out
}

/// Block-level diagnosis: the mechanism warnings (W001/W002/W004) are
/// emitted once per offending *basic block* with the block's attributed
/// cost share in the message and its full-grid-scaled issue-slot cost in
/// [`Diagnostic::cost`], plus the hot-block check (W005) and the
/// launch-level occupancy and roofline checks that have no block scope.
pub fn diagnose_blocks(
    gpu: &GpuConfig,
    a: &StaticLaunchAnalysis,
    blocks: &BlockLevelAnalysis,
    launch: usize,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let block_span = |b: &BlockAttribution| Span::launch(&blocks.kernel, launch).at(b.first_seen);
    let tag = |b: &BlockAttribution, share: f64| {
        format!(
            "[block {} ~{:.0}% of attributed cost]",
            b.id_hex(),
            share * 100.0
        )
    };

    for b in &blocks.blocks {
        let share = blocks.cost_share(b);
        let cost = Some(b.cost() * blocks.scale);

        if b.shared.max_degree >= 2 {
            out.push(Diagnostic {
                code: BANK_CONFLICT.to_string(),
                severity: Severity::Warning,
                span: block_span(b),
                message: format!(
                    "{}-way shared-memory bank conflict in basic block ({} of {} shared \
                     accesses conflicted) {}",
                    b.shared.max_degree,
                    b.shared.conflicted,
                    b.shared.accesses,
                    tag(b, share)
                ),
                suggestion: BANK_CONFLICT_HINT.into(),
                cost,
            });
        }

        for (what, summary, hint) in [
            ("load", &b.loads, LOAD_HINT),
            ("store", &b.stores, STORE_HINT),
        ] {
            if summary.requests > 0 && summary.efficiency() < COALESCING_THRESHOLD {
                out.push(Diagnostic {
                    code: UNCOALESCED.to_string(),
                    severity: Severity::Warning,
                    span: block_span(b),
                    message: format!(
                        "uncoalesced global {}s in basic block: {:.1}% efficiency \
                         ({} transactions for {} requests) {}",
                        what,
                        summary.efficiency() * 100.0,
                        summary.transactions,
                        summary.requests,
                        tag(b, share)
                    ),
                    suggestion: hint.into(),
                    cost,
                });
            }
        }

        if b.divergence.branches > 0 {
            let frac = b.divergence.divergent as f64 / b.divergence.branches as f64;
            if frac >= DIVERGENCE_THRESHOLD {
                out.push(Diagnostic {
                    code: DIVERGENCE.to_string(),
                    severity: Severity::Warning,
                    span: block_span(b),
                    message: format!(
                        "{:.0}% of branches in basic block diverge ({} of {}); diverged \
                         paths serialise {}",
                        frac * 100.0,
                        b.divergence.divergent,
                        b.divergence.branches,
                        tag(b, share)
                    ),
                    suggestion: DIVERGENCE_HINT.into(),
                    cost,
                });
            }
        }
    }

    if blocks.blocks.len() >= 2 {
        let top = &blocks.blocks[0];
        let share = blocks.top_share();
        if share >= HOT_BLOCK_THRESHOLD {
            out.push(Diagnostic {
                code: HOT_BLOCK.to_string(),
                severity: Severity::Warning,
                span: block_span(top),
                message: format!(
                    "basic block {} dominates the launch: {:.0}% of attributed issue-slot \
                     cost across {} blocks ({} instructions, {} occurrences)",
                    top.id_hex(),
                    share * 100.0,
                    blocks.blocks.len(),
                    top.instructions,
                    top.occurrences
                ),
                suggestion: "optimisation effort concentrates here; fix this block's \
                             warnings first, or restructure to spread its work"
                    .into(),
                cost: Some(top.cost() * blocks.scale),
            });
        }
    }

    if let Some(d) = occupancy_check(gpu, a, launch) {
        out.push(d);
    }
    out.push(roofline_note(gpu, a, launch));
    out
}

/// Builds a [`CONSERVATION`] error from failing conservation checks.
pub fn conservation_violation(
    kernel: &str,
    launch: usize,
    failures: &[crate::attr::ConservationCheck],
) -> Diagnostic {
    let detail: Vec<String> = failures
        .iter()
        .map(|c| {
            format!(
                "{}: attributed {} vs launch total {} (rel {:.2e})",
                c.counter, c.attributed, c.launch_total, c.rel_error
            )
        })
        .collect();
    Diagnostic {
        code: CONSERVATION.to_string(),
        severity: Severity::Error,
        span: Span::launch(kernel, launch),
        message: format!(
            "per-block attribution does not conserve launch totals: {}",
            detail.join("; ")
        ),
        suggestion: "the attribution walk and the launch walk disagree — one of them has a \
                     bug; bisect against the shared counting rules in bf-analyze::walk"
            .into(),
        cost: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_and_roundtrips() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        for s in [Severity::Info, Severity::Warning, Severity::Error] {
            assert_eq!(Severity::parse(s.as_str()), Some(s));
        }
        assert_eq!(Severity::parse("fatal"), None);
    }

    #[test]
    fn severity_serializes_lowercase() {
        let v = serde_json::to_string(&Severity::Warning).unwrap();
        assert_eq!(v, "\"warning\"");
        let back: Severity = serde_json::from_str(&v).unwrap();
        assert_eq!(back, Severity::Warning);
    }

    #[test]
    fn span_renders_with_and_without_instruction() {
        let s = Span::launch("reduce1", 2);
        assert_eq!(s.render(), "reduce1[2]");
        let s = s.at(crate::walk::Location {
            block: 5,
            warp: 1,
            instruction: 7,
        });
        assert_eq!(s.render(), "reduce1[2] block 5 warp 1 instr 7");
    }
}
