//! The differential oracle: static predictions vs dynamic counters.
//!
//! The static walk ([`crate::walk`]) and the cycle engine count the same
//! events from the same sampled traces, so for every counter with a static
//! counterpart the two must agree to floating-point noise. This module turns
//! that invariant into an executable check: [`compare`] diffs one launch,
//! [`check_application`] sweeps a whole application, and any divergence is a
//! simulator (or analyzer) bug — surfaced as a [`crate::diag::ORACLE_DIVERGENCE`]
//! error diagnostic by the lint driver.
//!
//! Tolerances (documented in `DESIGN.md`): occupancy is compared **exactly**;
//! every counter pair uses relative tolerance [`REL_TOLERANCE`], which only
//! absorbs the float accumulation order (counts are integers in f64, exact up
//! to 2^53, but scaling multiplies in different orders on the two paths).
//! Counters with no static counterpart (cache hits, DRAM reads, cycles,
//! seconds) are out of scope by design.

use crate::walk::{analyze_launch, StaticLaunchAnalysis};
use bf_kernels::Application;
use gpu_sim::{simulate_launch, GpuConfig, KernelTrace, LaunchResult, RawEvents, Result};
use serde::Serialize;

/// Relative tolerance for counter comparison: floating-point noise only.
pub const REL_TOLERANCE: f64 = 1e-9;

/// One static-vs-dynamic counter comparison.
#[derive(Debug, Clone, Serialize)]
pub struct CounterCheck {
    /// Counter name (matches `RawEvents` field).
    pub counter: &'static str,
    /// Statically predicted value (full-grid scaled).
    pub static_value: f64,
    /// Dynamically simulated value.
    pub dynamic_value: f64,
    /// `|static - dynamic| / max(|dynamic|, 1)`.
    pub rel_error: f64,
    /// Whether the pair is within [`REL_TOLERANCE`].
    pub ok: bool,
}

/// Oracle verdict for one launch.
#[derive(Debug, Clone, Serialize)]
pub struct OracleReport {
    /// Kernel name.
    pub kernel: String,
    /// Launch index within the application.
    pub launch: usize,
    /// Whether static and dynamic occupancy agree exactly.
    pub occupancy_ok: bool,
    /// Per-counter comparisons.
    pub checks: Vec<CounterCheck>,
}

impl OracleReport {
    /// True if any check (occupancy or counter) failed.
    pub fn divergent(&self) -> bool {
        !self.occupancy_ok || self.checks.iter().any(|c| !c.ok)
    }

    /// The failing checks.
    pub fn failures(&self) -> Vec<&CounterCheck> {
        self.checks.iter().filter(|c| !c.ok).collect()
    }

    /// Largest relative error across all counter checks.
    pub fn max_rel_error(&self) -> f64 {
        self.checks.iter().map(|c| c.rel_error).fold(0.0, f64::max)
    }
}

fn check(counter: &'static str, static_value: f64, dynamic_value: f64) -> CounterCheck {
    let rel_error = (static_value - dynamic_value).abs() / dynamic_value.abs().max(1.0);
    CounterCheck {
        counter,
        static_value,
        dynamic_value,
        rel_error,
        ok: rel_error <= REL_TOLERANCE,
    }
}

/// Diffs a static analysis against a dynamic launch result.
///
/// Separable from the simulation on purpose: the seeded-regression test
/// perturbs a genuine `LaunchResult` and asserts the oracle notices, proving
/// the harness has teeth.
pub fn compare(a: &StaticLaunchAnalysis, dynamic: &LaunchResult, launch: usize) -> OracleReport {
    let ev: &RawEvents = &dynamic.events;
    let s = &a.counts;
    let occupancy_ok = a.occupancy.blocks_per_sm == dynamic.occupancy.blocks_per_sm
        && a.occupancy.warps_per_sm == dynamic.occupancy.warps_per_sm
        && a.occupancy.limiter == dynamic.occupancy.limiter
        && a.occupancy.theoretical == dynamic.occupancy.theoretical;
    let checks = vec![
        check("inst_executed", s.inst_executed, ev.inst_executed),
        check("inst_issued", s.inst_issued, ev.inst_issued),
        check(
            "thread_inst_executed",
            s.thread_inst_executed,
            ev.thread_inst_executed,
        ),
        check("branch", s.branch, ev.branch),
        check("divergent_branch", s.divergent_branch, ev.divergent_branch),
        check("shared_load", s.shared_load, ev.shared_load),
        check("shared_store", s.shared_store, ev.shared_store),
        check(
            "shared_load_replay",
            s.shared_load_replay,
            ev.shared_load_replay,
        ),
        check(
            "shared_store_replay",
            s.shared_store_replay,
            ev.shared_store_replay,
        ),
        check("gld_request", s.gld_request, ev.gld_request),
        check("gst_request", s.gst_request, ev.gst_request),
        check(
            "gld_requested_bytes",
            s.gld_requested_bytes,
            ev.gld_requested_bytes,
        ),
        check(
            "gst_requested_bytes",
            s.gst_requested_bytes,
            ev.gst_requested_bytes,
        ),
        check(
            "global_load_transactions",
            s.global_load_transactions,
            ev.global_load_transactions,
        ),
        check(
            "global_store_transactions",
            s.global_store_transactions,
            ev.global_store_transactions,
        ),
        check(
            "l2_write_transactions",
            s.l2_write_transactions,
            ev.l2_write_transactions,
        ),
        check(
            "dram_write_transactions",
            s.dram_write_transactions,
            ev.dram_write_transactions,
        ),
        check("warps_launched", s.warps_launched, ev.warps_launched),
        check("blocks_launched", s.blocks_launched, ev.blocks_launched),
    ];
    OracleReport {
        kernel: a.kernel.clone(),
        launch,
        occupancy_ok,
        checks,
    }
}

/// Analyzes and simulates one launch, then diffs the two.
pub fn check_launch(
    gpu: &GpuConfig,
    kernel: &dyn KernelTrace,
    launch: usize,
) -> Result<OracleReport> {
    let a = analyze_launch(gpu, kernel)?;
    let d = simulate_launch(gpu, kernel)?;
    Ok(compare(&a, &d, launch))
}

/// Runs the oracle over every launch of an application.
pub fn check_application(gpu: &GpuConfig, app: &Application) -> Result<Vec<OracleReport>> {
    app.launches
        .iter()
        .enumerate()
        .map(|(i, k)| check_launch(gpu, k.as_ref(), i).map_err(|e| e.in_kernel(&k.name(), i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bf_kernels::reduce::{reduce_application, ReduceVariant};

    #[test]
    fn oracle_agrees_on_a_reduce_launch() {
        let gpu = GpuConfig::gtx580();
        let app = reduce_application(ReduceVariant::Reduce1, 1 << 14, 128);
        for r in check_application(&gpu, &app).unwrap() {
            assert!(
                !r.divergent(),
                "launch {} of {} diverged: {:?}",
                r.launch,
                r.kernel,
                r.failures()
            );
        }
    }

    #[test]
    fn oracle_catches_an_injected_counter_bug() {
        let gpu = GpuConfig::gtx580();
        let app = reduce_application(ReduceVariant::Reduce1, 1 << 14, 128);
        let k = app.launches[0].as_ref();
        let a = analyze_launch(&gpu, k).unwrap();
        let mut d = simulate_launch(&gpu, k).unwrap();
        // Inject the classic regression: the simulator silently drops 10% of
        // load transactions (e.g. a botched coalescing refactor).
        d.events.global_load_transactions *= 0.9;
        let report = compare(&a, &d, 0);
        assert!(report.divergent(), "oracle missed the injected bug");
        let failing: Vec<_> = report.failures().iter().map(|c| c.counter).collect();
        assert_eq!(failing, vec!["global_load_transactions"]);
    }
}
