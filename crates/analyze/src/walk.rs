//! The static instruction walk: event counts and bottleneck metrics derived
//! from a kernel's traces without running the cycle engine.
//!
//! The walk visits exactly the blocks the dynamic engine would sample
//! ([`gpu_sim::sample_block_ids`] with the occupancy-derived resident count)
//! and applies the *same counting rules* as `gpu_sim::sm::simulate_sm`, then
//! scales to the full grid by the same `grid_blocks / sampled_blocks` factor.
//! Every counter produced here is therefore expected to match the dynamic
//! simulator bit-for-bit — the differential oracle ([`crate::oracle`]) pins
//! that equivalence as an executable check.
//!
//! Counters that depend on cache state or timing (L1/L2 read hits, DRAM
//! reads, cycles, seconds) are *not* derivable statically and are excluded;
//! the roofline classification instead uses a documented no-cache upper bound
//! on DRAM read traffic.

use gpu_sim::occupancy::{occupancy, Occupancy};
use gpu_sim::trace::{BlockTrace, KernelTrace, LaunchConfig, WarpInstruction};
use gpu_sim::{banks, coalesce, sample_block_ids, GpuConfig, Result};
use serde::Serialize;

/// Where in a kernel an interesting access lives: sampled block id, warp
/// index within the block, and instruction index within the warp stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Location {
    /// Block id (a real grid block id, one of the sampled representatives).
    pub block: usize,
    /// Warp index within the block.
    pub warp: usize,
    /// Instruction index within the warp's stream.
    pub instruction: usize,
}

/// Statically derived event counts, scaled to the full grid. Field names
/// match [`gpu_sim::RawEvents`] where a dynamic counterpart exists.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct StaticCounts {
    /// Warp instructions executed.
    pub inst_executed: f64,
    /// Issue slots consumed (replays and per-transaction issues included).
    pub inst_issued: f64,
    /// Thread-level instructions (warp instructions x active lanes).
    pub thread_inst_executed: f64,
    /// Branch instructions.
    pub branch: f64,
    /// Divergent branch instructions.
    pub divergent_branch: f64,
    /// Shared-memory load instructions.
    pub shared_load: f64,
    /// Shared-memory store instructions.
    pub shared_store: f64,
    /// Shared load replays from bank conflicts.
    pub shared_load_replay: f64,
    /// Shared store replays from bank conflicts.
    pub shared_store_replay: f64,
    /// Global load requests (one per load instruction).
    pub gld_request: f64,
    /// Global store requests.
    pub gst_request: f64,
    /// Bytes requested by global loads (active lanes x width).
    pub gld_requested_bytes: f64,
    /// Bytes requested by global stores.
    pub gst_requested_bytes: f64,
    /// Global load transactions (128B L1 lines on Fermi, 32B sectors on
    /// Kepler — the architecture's natural granularity).
    pub global_load_transactions: f64,
    /// Global store transactions (reported at up-to-128B granularity).
    pub global_store_transactions: f64,
    /// L2 write-transaction sectors (32B; write-through on both archs).
    pub l2_write_transactions: f64,
    /// DRAM write-transaction sectors (32B; mirrors L2 writes).
    pub dram_write_transactions: f64,
    /// Warps launched across the grid.
    pub warps_launched: f64,
    /// Blocks launched (= grid size).
    pub blocks_launched: f64,
    /// Barriers executed (static-only; folded into `inst_executed`).
    pub barriers: f64,
    /// Warp-level ALU+SFU instructions (static-only; drives the roofline
    /// compute estimate).
    pub alu_warp_instructions: f64,
    /// Thread-level ALU+SFU operations (static-only; the "flops" numerator
    /// of arithmetic intensity).
    pub alu_thread_ops: f64,
    /// Global-load traffic at the architecture's transaction granularity
    /// (static-only; denominator of load efficiency).
    pub load_traffic_bytes: f64,
    /// Global-store traffic in 32B sectors (static-only).
    pub store_traffic_bytes: f64,
    /// No-cache upper bound on DRAM read traffic: 32B sectors per load
    /// (static-only; feeds the roofline memory-time estimate).
    pub dram_read_bytes_bound: f64,
}

impl StaticCounts {
    /// Counter (name, value) pairs in declaration order — the single source
    /// of truth for iterating every field, used by the per-block attribution
    /// conservation check so a newly added counter cannot silently escape
    /// coverage (the array length is pinned to the struct).
    pub fn fields(&self) -> [(&'static str, f64); 25] {
        [
            ("inst_executed", self.inst_executed),
            ("inst_issued", self.inst_issued),
            ("thread_inst_executed", self.thread_inst_executed),
            ("branch", self.branch),
            ("divergent_branch", self.divergent_branch),
            ("shared_load", self.shared_load),
            ("shared_store", self.shared_store),
            ("shared_load_replay", self.shared_load_replay),
            ("shared_store_replay", self.shared_store_replay),
            ("gld_request", self.gld_request),
            ("gst_request", self.gst_request),
            ("gld_requested_bytes", self.gld_requested_bytes),
            ("gst_requested_bytes", self.gst_requested_bytes),
            ("global_load_transactions", self.global_load_transactions),
            ("global_store_transactions", self.global_store_transactions),
            ("l2_write_transactions", self.l2_write_transactions),
            ("dram_write_transactions", self.dram_write_transactions),
            ("warps_launched", self.warps_launched),
            ("blocks_launched", self.blocks_launched),
            ("barriers", self.barriers),
            ("alu_warp_instructions", self.alu_warp_instructions),
            ("alu_thread_ops", self.alu_thread_ops),
            ("load_traffic_bytes", self.load_traffic_bytes),
            ("store_traffic_bytes", self.store_traffic_bytes),
            ("dram_read_bytes_bound", self.dram_read_bytes_bound),
        ]
    }

    /// Adds another count set field-by-field (used when summing per-block
    /// attributions back into launch totals).
    pub fn add(&mut self, other: &StaticCounts) {
        self.inst_executed += other.inst_executed;
        self.inst_issued += other.inst_issued;
        self.thread_inst_executed += other.thread_inst_executed;
        self.branch += other.branch;
        self.divergent_branch += other.divergent_branch;
        self.shared_load += other.shared_load;
        self.shared_store += other.shared_store;
        self.shared_load_replay += other.shared_load_replay;
        self.shared_store_replay += other.shared_store_replay;
        self.gld_request += other.gld_request;
        self.gst_request += other.gst_request;
        self.gld_requested_bytes += other.gld_requested_bytes;
        self.gst_requested_bytes += other.gst_requested_bytes;
        self.global_load_transactions += other.global_load_transactions;
        self.global_store_transactions += other.global_store_transactions;
        self.l2_write_transactions += other.l2_write_transactions;
        self.dram_write_transactions += other.dram_write_transactions;
        self.warps_launched += other.warps_launched;
        self.blocks_launched += other.blocks_launched;
        self.barriers += other.barriers;
        self.alu_warp_instructions += other.alu_warp_instructions;
        self.alu_thread_ops += other.alu_thread_ops;
        self.load_traffic_bytes += other.load_traffic_bytes;
        self.store_traffic_bytes += other.store_traffic_bytes;
        self.dram_read_bytes_bound += other.dram_read_bytes_bound;
    }

    pub(crate) fn scaled(&self, factor: f64) -> StaticCounts {
        let mut s = *self;
        for f in [
            &mut s.inst_executed,
            &mut s.inst_issued,
            &mut s.thread_inst_executed,
            &mut s.branch,
            &mut s.divergent_branch,
            &mut s.shared_load,
            &mut s.shared_store,
            &mut s.shared_load_replay,
            &mut s.shared_store_replay,
            &mut s.gld_request,
            &mut s.gst_request,
            &mut s.gld_requested_bytes,
            &mut s.gst_requested_bytes,
            &mut s.global_load_transactions,
            &mut s.global_store_transactions,
            &mut s.l2_write_transactions,
            &mut s.dram_write_transactions,
            &mut s.warps_launched,
            &mut s.blocks_launched,
            &mut s.barriers,
            &mut s.alu_warp_instructions,
            &mut s.alu_thread_ops,
            &mut s.load_traffic_bytes,
            &mut s.store_traffic_bytes,
            &mut s.dram_read_bytes_bound,
        ] {
            *f *= factor;
        }
        s
    }
}

/// Shared-memory bank-conflict profile of the sampled blocks (unscaled —
/// spans point at concrete instructions, counts are per sampled set).
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct SharedConflictSummary {
    /// Shared-memory access instructions walked.
    pub accesses: u64,
    /// Accesses with at least one bank conflict (degree >= 2).
    pub conflicted: u64,
    /// Worst conflict degree seen (1 = conflict-free).
    pub max_degree: u32,
    /// Location of the worst-degree access.
    pub worst: Option<Location>,
}

/// Global-memory coalescing profile of the sampled blocks (unscaled counts;
/// the ratios are scale-invariant).
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct CoalescingSummary {
    /// Memory-request instructions walked.
    pub requests: u64,
    /// Transactions generated at the architecture's granularity.
    pub transactions: u64,
    /// Bytes the active lanes asked for.
    pub requested_bytes: u64,
    /// Bytes the transactions move.
    pub traffic_bytes: u64,
    /// Location of the least-efficient access.
    pub worst: Option<Location>,
    /// Efficiency of the least-efficient access (requested/traffic).
    pub worst_efficiency: f64,
}

impl CoalescingSummary {
    /// Requested bytes over moved bytes (1.0 when there is no traffic).
    pub fn efficiency(&self) -> f64 {
        if self.traffic_bytes == 0 {
            1.0
        } else {
            self.requested_bytes as f64 / self.traffic_bytes as f64
        }
    }
}

/// Branch-divergence profile of the sampled blocks.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct DivergenceSummary {
    /// Branch instructions walked.
    pub branches: u64,
    /// Divergent branches.
    pub divergent: u64,
    /// Location of the first divergent branch.
    pub first: Option<Location>,
}

/// Which side of the roofline a launch sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum BoundKind {
    /// Estimated compute time dominates memory time.
    ComputeBound,
    /// Estimated memory time dominates compute time.
    MemoryBound,
    /// Within a factor of 1.5 of each other.
    Balanced,
}

impl BoundKind {
    /// Lower-case label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            BoundKind::ComputeBound => "compute-bound",
            BoundKind::MemoryBound => "memory-bound",
            BoundKind::Balanced => "balanced",
        }
    }
}

/// Roofline-style classification of one launch.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Roofline {
    /// Estimated time to issue the ALU/SFU work, seconds.
    pub compute_seconds: f64,
    /// Estimated time to move the no-cache-bound DRAM traffic, seconds.
    pub memory_seconds: f64,
    /// Thread-level ALU+SFU ops per byte of DRAM traffic bound.
    pub arithmetic_intensity: f64,
    /// The classification.
    pub bound: BoundKind,
}

/// Full static analysis of one kernel launch.
#[derive(Debug, Clone, Serialize)]
pub struct StaticLaunchAnalysis {
    /// Kernel name.
    pub kernel: String,
    /// The launch configuration analyzed.
    pub launch: LaunchConfig,
    /// Theoretical occupancy and its limiter.
    pub occupancy: Occupancy,
    /// The representative block ids that were walked.
    pub sampled_blocks: Vec<usize>,
    /// Grid scaling factor applied to `counts`.
    pub scale: f64,
    /// Event counts scaled to the full grid.
    pub counts: StaticCounts,
    /// Bank-conflict profile (sampled blocks).
    pub shared: SharedConflictSummary,
    /// Load-coalescing profile (sampled blocks).
    pub loads: CoalescingSummary,
    /// Store-coalescing profile (sampled blocks).
    pub stores: CoalescingSummary,
    /// Branch-divergence profile (sampled blocks).
    pub divergence: DivergenceSummary,
}

impl StaticLaunchAnalysis {
    /// Global-load efficiency: requested bytes / transaction bytes.
    pub fn load_efficiency(&self) -> f64 {
        self.loads.efficiency()
    }

    /// Global-store efficiency (measured against 32B sectors).
    pub fn store_efficiency(&self) -> f64 {
        self.stores.efficiency()
    }

    /// Roofline classification against a GPU's throughput and bandwidth.
    ///
    /// Compute time assumes perfect occupancy of the ALU pipelines across all
    /// SMs; memory time charges the no-cache DRAM traffic bound against peak
    /// bandwidth. Both are optimistic lower bounds, which is what a roofline
    /// compares.
    pub fn roofline(&self, gpu: &GpuConfig) -> Roofline {
        let clock_hz = gpu.clock_ghz * 1e9;
        let compute_seconds = self.counts.alu_warp_instructions
            / (gpu.num_sms as f64 * gpu.alu_throughput * clock_hz);
        let dram_bytes = self.counts.dram_read_bytes_bound + self.counts.store_traffic_bytes;
        let memory_seconds = dram_bytes / (gpu.mem_bandwidth_gbps * 1e9);
        let arithmetic_intensity = if dram_bytes > 0.0 {
            self.counts.alu_thread_ops / dram_bytes
        } else {
            f64::INFINITY
        };
        let bound = if memory_seconds > compute_seconds * 1.5 {
            BoundKind::MemoryBound
        } else if compute_seconds > memory_seconds * 1.5 {
            BoundKind::ComputeBound
        } else {
            BoundKind::Balanced
        };
        Roofline {
            compute_seconds,
            memory_seconds,
            arithmetic_intensity,
            bound,
        }
    }
}

/// Statically analyzes one kernel launch: occupancy, a counting walk over the
/// sampled block traces, and coalescing/bank-conflict/divergence profiles.
///
/// Traces are validated before walking, so malformed kernels fail with the
/// same `BadTrace` errors the simulator raises.
pub fn analyze_launch(gpu: &GpuConfig, kernel: &dyn KernelTrace) -> Result<StaticLaunchAnalysis> {
    let lc = kernel.launch_config();
    let occ = occupancy(gpu, &lc)?;
    let ids = sample_block_ids(lc.grid_blocks, occ.blocks_per_sm);
    let traces: Vec<BlockTrace> = ids.iter().map(|&b| kernel.block_trace(b, gpu)).collect();
    for t in &traces {
        t.validate()?;
    }

    let mut counts = StaticCounts::default();
    let mut shared = SharedConflictSummary::default();
    let mut loads = CoalescingSummary::default();
    let mut stores = CoalescingSummary::default();
    let mut divergence = DivergenceSummary::default();
    loads.worst_efficiency = 1.0;
    stores.worst_efficiency = 1.0;

    counts.blocks_launched = traces.len() as f64;
    for (trace, &block) in traces.iter().zip(&ids) {
        counts.warps_launched += trace.warps.len() as f64;
        for (warp, stream) in trace.warps.iter().enumerate() {
            for (i, instr) in stream.iter().enumerate() {
                let loc = Location {
                    block,
                    warp,
                    instruction: i,
                };
                walk_instruction(
                    gpu,
                    instr,
                    loc,
                    &mut counts,
                    &mut shared,
                    &mut loads,
                    &mut stores,
                    &mut divergence,
                );
            }
        }
    }

    let scale = lc.grid_blocks as f64 / traces.len() as f64;
    Ok(StaticLaunchAnalysis {
        kernel: kernel.name(),
        launch: lc,
        occupancy: occ,
        sampled_blocks: ids,
        scale,
        counts: counts.scaled(scale),
        shared,
        loads,
        stores,
        divergence,
    })
}

/// Applies the `simulate_sm` counting rules to one instruction. Kept in one
/// match so a drift against `gpu_sim::sm` is a one-screen diff (and the
/// differential oracle catches it anyway).
#[allow(clippy::too_many_arguments)]
pub(crate) fn walk_instruction(
    gpu: &GpuConfig,
    instr: &WarpInstruction,
    loc: Location,
    counts: &mut StaticCounts,
    shared: &mut SharedConflictSummary,
    loads: &mut CoalescingSummary,
    stores: &mut CoalescingSummary,
    divergence: &mut DivergenceSummary,
) {
    let lanes = instr.active_lanes() as f64;
    match instr {
        WarpInstruction::Alu { count, mask: _ } => {
            let c = *count as f64;
            counts.inst_executed += c;
            counts.inst_issued += c;
            counts.thread_inst_executed += c * lanes;
            counts.alu_warp_instructions += c;
            counts.alu_thread_ops += c * lanes;
        }
        WarpInstruction::Sfu { .. } => {
            counts.inst_executed += 1.0;
            counts.inst_issued += 1.0;
            counts.thread_inst_executed += lanes;
            counts.alu_warp_instructions += 1.0;
            counts.alu_thread_ops += lanes;
        }
        WarpInstruction::Branch { divergent, .. } => {
            counts.inst_executed += 1.0;
            counts.branch += 1.0;
            counts.thread_inst_executed += lanes;
            divergence.branches += 1;
            if *divergent {
                counts.divergent_branch += 1.0;
                counts.inst_issued += 2.0;
                divergence.divergent += 1;
                if divergence.first.is_none() {
                    divergence.first = Some(loc);
                }
            } else {
                counts.inst_issued += 1.0;
            }
        }
        WarpInstruction::LoadShared {
            offsets,
            width,
            mask,
        }
        | WarpInstruction::StoreShared {
            offsets,
            width,
            mask,
        } => {
            let degree = banks::conflict_degree(
                offsets,
                *width,
                *mask,
                gpu.shared_banks as u32,
                gpu.bank_width as u32,
            );
            let r = (degree - 1) as f64;
            counts.inst_executed += 1.0;
            counts.inst_issued += 1.0 + r;
            counts.thread_inst_executed += lanes;
            if matches!(instr, WarpInstruction::LoadShared { .. }) {
                counts.shared_load += 1.0;
                counts.shared_load_replay += r;
            } else {
                counts.shared_store += 1.0;
                counts.shared_store_replay += r;
            }
            shared.accesses += 1;
            if degree >= 2 {
                shared.conflicted += 1;
            }
            if degree > shared.max_degree {
                shared.max_degree = degree;
                shared.worst = Some(loc);
            }
        }
        WarpInstruction::LoadGlobal { addrs, width, mask } => {
            let requested = coalesce::requested_bytes(*width, *mask);
            counts.gld_request += 1.0;
            counts.gld_requested_bytes += requested as f64;
            counts.inst_executed += 1.0;
            counts.thread_inst_executed += lanes;
            // Line-tagged Fermi coalesces into whole L1 lines; every other
            // path — L1-bypassing Kepler/Maxwell and the sector-tagged
            // Pascal/Volta L1s — uses 32B sectors (matching the dynamic
            // transaction counter).
            let segment = gpu.load_segment_bytes();
            let ntrans = coalesce::coalesce(addrs, *width, *mask, segment).len();
            counts.global_load_transactions += ntrans as f64;
            counts.inst_issued += (ntrans as f64).max(1.0);
            counts.load_traffic_bytes += (ntrans as u64 * segment as u64) as f64;
            let sectors = coalesce::coalesce(addrs, *width, *mask, 32).len();
            counts.dram_read_bytes_bound += (sectors * 32) as f64;
            record_access(loads, loc, requested, ntrans as u64, segment as u64);
        }
        WarpInstruction::StoreGlobal { addrs, width, mask } => {
            let requested = coalesce::requested_bytes(*width, *mask);
            counts.gst_request += 1.0;
            counts.gst_requested_bytes += requested as f64;
            counts.inst_executed += 1.0;
            counts.thread_inst_executed += lanes;
            let sectors = coalesce::coalesce(addrs, *width, *mask, 32).len();
            counts.l2_write_transactions += sectors as f64;
            counts.dram_write_transactions += sectors as f64;
            counts.store_traffic_bytes += (sectors * 32) as f64;
            let store_trans = coalesce::coalesce(addrs, *width, *mask, 128).len();
            counts.global_store_transactions += store_trans as f64;
            counts.inst_issued += (store_trans as f64).max(1.0);
            record_access(stores, loc, requested, sectors as u64, 32);
        }
        WarpInstruction::Barrier => {
            counts.inst_executed += 1.0;
            counts.inst_issued += 1.0;
            counts.barriers += 1.0;
        }
    }
}

fn record_access(
    summary: &mut CoalescingSummary,
    loc: Location,
    requested: u64,
    transactions: u64,
    segment: u64,
) {
    summary.requests += 1;
    summary.transactions += transactions;
    summary.requested_bytes += requested;
    let traffic = transactions * segment;
    summary.traffic_bytes += traffic;
    if traffic > 0 {
        let eff = requested as f64 / traffic as f64;
        if eff < summary.worst_efficiency || summary.worst.is_none() {
            summary.worst_efficiency = eff;
            summary.worst = Some(loc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::trace::FULL_MASK;

    /// A tiny homogeneous kernel with one of everything.
    struct OneOfEach;

    impl KernelTrace for OneOfEach {
        fn name(&self) -> String {
            "one_of_each".into()
        }

        fn launch_config(&self) -> LaunchConfig {
            LaunchConfig {
                grid_blocks: 64,
                threads_per_block: 32,
                regs_per_thread: 16,
                shared_mem_per_block: 256,
            }
        }

        fn block_trace(&self, block_id: usize, _gpu: &GpuConfig) -> BlockTrace {
            let mut t = BlockTrace::with_warps(1);
            let base = 0x1000_0000u64 + block_id as u64 * 128;
            t.warps[0] = vec![
                WarpInstruction::LoadGlobal {
                    addrs: (0..32).map(|i| base + i * 4).collect(),
                    width: 4,
                    mask: FULL_MASK,
                },
                WarpInstruction::Alu {
                    count: 3,
                    mask: FULL_MASK,
                },
                // All lanes hit word 0: broadcast, conflict-free.
                WarpInstruction::StoreShared {
                    offsets: vec![0; 32],
                    width: 4,
                    mask: FULL_MASK,
                },
                WarpInstruction::Barrier,
                // Stride-2 word access: two distinct words per bank -> the
                // classic 2-way conflict.
                WarpInstruction::LoadShared {
                    offsets: (0..32).map(|i| i * 2 * 4).collect(),
                    width: 4,
                    mask: FULL_MASK,
                },
                WarpInstruction::Branch {
                    divergent: true,
                    mask: FULL_MASK,
                },
                WarpInstruction::StoreGlobal {
                    addrs: (0..32).map(|_| 0x9000_0000 + block_id as u64 * 4).collect(),
                    width: 4,
                    mask: 1,
                },
            ];
            t
        }
    }

    #[test]
    fn walk_counts_one_of_each() {
        let gpu = GpuConfig::gtx580();
        let a = analyze_launch(&gpu, &OneOfEach).unwrap();
        assert!(!a.sampled_blocks.is_empty());
        // Every count below is (per-block count) x 64 grid blocks.
        let grid = 64.0;
        assert_eq!(a.counts.blocks_launched, 64.0);
        assert_eq!(a.counts.warps_launched, 64.0);
        // 1 load + 3 alu + 1 store.sh + 1 barrier + 1 load.sh + 1 br + 1 st
        assert_eq!(a.counts.inst_executed, 9.0 * grid);
        assert_eq!(a.counts.gld_request, grid);
        // Fully coalesced load: one 128B line.
        assert_eq!(a.counts.global_load_transactions, grid);
        assert_eq!(a.counts.gld_requested_bytes, 128.0 * grid);
        // Conflicted shared load: degree 2 -> one replay.
        assert_eq!(a.counts.shared_load_replay, grid);
        assert_eq!(a.counts.shared_store_replay, 0.0);
        assert_eq!(a.shared.max_degree, 2);
        assert_eq!(a.counts.divergent_branch, grid);
        // Single-lane store: 4 bytes requested, one 32B sector.
        assert_eq!(a.counts.gst_requested_bytes, 4.0 * grid);
        assert_eq!(a.counts.l2_write_transactions, grid);
        assert!((a.store_efficiency() - 4.0 / 32.0).abs() < 1e-12);
        assert!((a.load_efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn roofline_classifies_streaming_kernel_as_memory_bound() {
        let gpu = GpuConfig::gtx580();
        let a = analyze_launch(&gpu, &OneOfEach).unwrap();
        let r = a.roofline(&gpu);
        // 3 ALU warp-instructions vs 160B of DRAM traffic per block: memory
        // wins by a wide margin on any real ratio of clock to bandwidth.
        assert_eq!(r.bound, BoundKind::MemoryBound);
        assert!(r.arithmetic_intensity < 1.0);
    }
}
