//! The `bf lint` driver: sweep a workload, collect diagnostics, optionally
//! run the differential oracle, and render the report.
//!
//! The JSON schema (version 1, documented in `DESIGN.md`) is stable: fields
//! are only added, never renamed or removed, and `schema_version` is bumped
//! on any breaking change.

use crate::diag::{self, Diagnostic, Severity};
use crate::oracle::{self, OracleReport};
use crate::walk::analyze_launch;
use bf_kernels::matmul::matmul_application;
use bf_kernels::nw::nw_application;
use bf_kernels::reduce::{reduce_application, ReduceVariant};
use bf_kernels::stencil::stencil_application;
use bf_kernels::Application;
use gpu_sim::GpuConfig;
use serde::Serialize;

/// Options for a lint run.
#[derive(Debug, Clone, Copy, Default)]
pub struct LintOptions {
    /// Use the small quick sweep instead of the full one.
    pub quick: bool,
    /// Also run the static-vs-dynamic differential oracle (costs a dynamic
    /// simulation per launch).
    pub oracle: bool,
}

/// A diagnostic plus how many launches it fired on (duplicates across a
/// sweep are folded; the span points at the first occurrence).
#[derive(Debug, Clone, Serialize)]
pub struct AggregatedDiagnostic {
    /// The representative diagnostic (first occurrence).
    pub diagnostic: Diagnostic,
    /// Number of launches across the sweep that raised it.
    pub occurrences: usize,
}

/// Per-kernel rollup across every launch of the sweep that used the kernel.
#[derive(Debug, Clone, Serialize)]
pub struct KernelSummary {
    /// Kernel name.
    pub kernel: String,
    /// Launches analyzed.
    pub launches: usize,
    /// Minimum theoretical occupancy across launches, percent.
    pub min_occupancy_pct: f64,
    /// Worst (lowest) global-load efficiency across launches, percent.
    pub min_load_efficiency_pct: f64,
    /// Worst global-store efficiency across launches, percent.
    pub min_store_efficiency_pct: f64,
    /// Worst shared-memory bank-conflict degree across launches.
    pub max_bank_conflict_degree: u32,
    /// Roofline bound label of the largest launch ("compute-bound",
    /// "memory-bound", "balanced").
    pub bound: String,
}

/// Oracle rollup for the report.
#[derive(Debug, Clone, Serialize)]
pub struct OracleSummary {
    /// Launches checked.
    pub launches_checked: usize,
    /// Counter pairs compared.
    pub counters_checked: usize,
    /// Largest relative error seen across all pairs.
    pub max_rel_error: f64,
    /// Number of divergent launches (non-zero means BF-E002 errors fired).
    pub divergent_launches: usize,
}

/// Severity tallies.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct SeveritySummary {
    /// Info diagnostics.
    pub info: usize,
    /// Warning diagnostics.
    pub warnings: usize,
    /// Error diagnostics.
    pub errors: usize,
}

/// The full lint report: the unit of the `--format json` output.
#[derive(Debug, Clone, Serialize)]
pub struct LintReport {
    /// Schema version; bumped on breaking changes.
    pub schema_version: u32,
    /// GPU preset name.
    pub gpu: String,
    /// Workload name.
    pub workload: String,
    /// Applications in the sweep.
    pub applications: usize,
    /// Kernel launches analyzed.
    pub launches: usize,
    /// Aggregated diagnostics, errors first.
    pub diagnostics: Vec<AggregatedDiagnostic>,
    /// Per-kernel rollups.
    pub kernels: Vec<KernelSummary>,
    /// Oracle rollup, when the oracle ran.
    pub oracle: Option<OracleSummary>,
    /// Severity tallies over all (pre-aggregation) diagnostics.
    pub summary: SeveritySummary,
}

impl LintReport {
    /// The highest severity present, if any diagnostic fired.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.diagnostic.severity).max()
    }

    /// Serializes the report as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("lint report serializes")
    }
}

/// The workloads `bf lint` knows how to sweep.
pub const WORKLOADS: &[&str] = &[
    "reduce0", "reduce1", "reduce2", "reduce3", "reduce4", "reduce5", "reduce6", "matmul", "nw",
    "stencil",
];

/// Builds the sweep of applications for a named workload, mirroring the
/// paper's parameter ranges (`--quick` trims them for CI).
pub fn workload_sweep(workload: &str, quick: bool) -> Option<Vec<Application>> {
    let apps = match workload {
        "matmul" => {
            let sizes: &[usize] = if quick {
                &[64, 128]
            } else {
                &[64, 128, 256, 512]
            };
            sizes.iter().map(|&n| matmul_application(n)).collect()
        }
        "nw" => {
            let lengths: &[usize] = if quick {
                &[256, 512]
            } else {
                &[256, 512, 1024, 2048]
            };
            lengths.iter().map(|&n| nw_application(n, 10)).collect()
        }
        "stencil" => {
            let sizes: &[usize] = if quick { &[64, 128] } else { &[64, 128, 256] };
            let sweeps: &[usize] = if quick { &[1] } else { &[1, 2, 4] };
            let mut apps = Vec::new();
            for &n in sizes {
                for &s in sweeps {
                    apps.push(stencil_application(n, s));
                }
            }
            apps
        }
        name => {
            let variant = *ReduceVariant::ALL.iter().find(|v| v.name() == name)?;
            let sizes: &[usize] = if quick {
                &[1 << 14, 1 << 16]
            } else {
                &[1 << 14, 1 << 16, 1 << 18, 1 << 20]
            };
            let threads: &[usize] = if quick {
                &[128, 256]
            } else {
                &[64, 128, 256, 512]
            };
            let mut apps = Vec::new();
            for &n in sizes {
                for &t in threads {
                    apps.push(reduce_application(variant, n, t));
                }
            }
            apps
        }
    };
    Some(apps)
}

/// Lints one workload sweep on a GPU: static analysis + diagnostics over
/// every launch of every application, plus the oracle when requested.
///
/// Launches that cannot be analyzed (malformed trace, impossible launch)
/// produce a `BF-E001` error diagnostic instead of aborting the run.
pub fn lint_workload(gpu: &GpuConfig, workload: &str, opts: LintOptions) -> Option<LintReport> {
    let apps = workload_sweep(workload, opts.quick)?;
    Some(lint_applications(gpu, workload, &apps, opts))
}

/// Lints an explicit set of applications (the engine behind
/// [`lint_workload`]; exposed for custom sweeps and tests).
pub fn lint_applications(
    gpu: &GpuConfig,
    workload: &str,
    apps: &[Application],
    opts: LintOptions,
) -> LintReport {
    let mut all: Vec<Diagnostic> = Vec::new();
    let mut launches = 0usize;
    let mut kernels: Vec<KernelSummary> = Vec::new();
    let mut oracle_reports: Vec<OracleReport> = Vec::new();

    for app in apps {
        for (i, kernel) in app.launches.iter().enumerate() {
            launches += 1;
            let a = match analyze_launch(gpu, kernel.as_ref()) {
                Ok(a) => a,
                Err(e) => {
                    all.push(diag::malformed(&kernel.name(), i, &e));
                    continue;
                }
            };
            all.extend(diag::diagnose(gpu, &a, i));

            let entry = match kernels.iter_mut().find(|k| k.kernel == a.kernel) {
                Some(e) => e,
                None => {
                    kernels.push(KernelSummary {
                        kernel: a.kernel.clone(),
                        launches: 0,
                        min_occupancy_pct: 100.0,
                        min_load_efficiency_pct: 100.0,
                        min_store_efficiency_pct: 100.0,
                        max_bank_conflict_degree: 1,
                        bound: String::new(),
                    });
                    kernels.last_mut().expect("just pushed")
                }
            };
            entry.launches += 1;
            entry.min_occupancy_pct = entry.min_occupancy_pct.min(a.occupancy.theoretical * 100.0);
            entry.min_load_efficiency_pct = entry
                .min_load_efficiency_pct
                .min(a.load_efficiency() * 100.0);
            entry.min_store_efficiency_pct = entry
                .min_store_efficiency_pct
                .min(a.store_efficiency() * 100.0);
            entry.max_bank_conflict_degree =
                entry.max_bank_conflict_degree.max(a.shared.max_degree);
            // Successive launches shrink (reduce passes); keep the first
            // (largest) launch's classification as the kernel's character.
            if entry.bound.is_empty() {
                entry.bound = a.roofline(gpu).bound.label().to_string();
            }

            if opts.oracle {
                match oracle::check_launch(gpu, kernel.as_ref(), i) {
                    Ok(r) => {
                        if r.divergent() {
                            let detail: Vec<String> = r
                                .failures()
                                .iter()
                                .map(|c| {
                                    format!(
                                        "{}: static {} vs dynamic {} (rel {:.2e})",
                                        c.counter, c.static_value, c.dynamic_value, c.rel_error
                                    )
                                })
                                .collect();
                            all.push(Diagnostic {
                                code: diag::ORACLE_DIVERGENCE.to_string(),
                                severity: Severity::Error,
                                span: diag::Span::launch(&r.kernel, i),
                                message: format!(
                                    "static prediction diverges from dynamic counters: {}",
                                    if detail.is_empty() {
                                        "occupancy mismatch".to_string()
                                    } else {
                                        detail.join("; ")
                                    }
                                ),
                                suggestion: "static walk and simulator disagree — one of them \
                                             has a bug; bisect against gpu-sim's counting rules"
                                    .into(),
                            });
                        }
                        oracle_reports.push(r);
                    }
                    Err(e) => all.push(diag::malformed(&kernel.name(), i, &e)),
                }
            }
        }
    }

    let mut summary = SeveritySummary::default();
    for d in &all {
        match d.severity {
            Severity::Info => summary.info += 1,
            Severity::Warning => summary.warnings += 1,
            Severity::Error => summary.errors += 1,
        }
    }

    // Fold duplicates: one entry per (code, kernel), errors first.
    let mut aggregated: Vec<AggregatedDiagnostic> = Vec::new();
    for d in all {
        match aggregated
            .iter_mut()
            .find(|a| a.diagnostic.code == d.code && a.diagnostic.span.kernel == d.span.kernel)
        {
            Some(a) => a.occurrences += 1,
            None => aggregated.push(AggregatedDiagnostic {
                diagnostic: d,
                occurrences: 1,
            }),
        }
    }
    aggregated.sort_by(|a, b| {
        b.diagnostic
            .severity
            .cmp(&a.diagnostic.severity)
            .then_with(|| a.diagnostic.code.cmp(&b.diagnostic.code))
            .then_with(|| a.diagnostic.span.kernel.cmp(&b.diagnostic.span.kernel))
    });

    let oracle = opts.oracle.then(|| OracleSummary {
        launches_checked: oracle_reports.len(),
        counters_checked: oracle_reports.iter().map(|r| r.checks.len()).sum(),
        max_rel_error: oracle_reports
            .iter()
            .map(|r| r.max_rel_error())
            .fold(0.0, f64::max),
        divergent_launches: oracle_reports.iter().filter(|r| r.divergent()).count(),
    });

    LintReport {
        schema_version: 1,
        gpu: gpu.name.clone(),
        workload: workload.to_string(),
        applications: apps.len(),
        launches,
        diagnostics: aggregated,
        kernels,
        oracle,
        summary,
    }
}

/// Renders the report for terminals, clippy-style.
pub fn render_text(report: &LintReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "bf lint: {} on {} — {} applications, {} launches\n\n",
        report.workload, report.gpu, report.applications, report.launches
    ));
    for a in &report.diagnostics {
        out.push_str(&a.diagnostic.render());
        if a.occurrences > 1 {
            out.push_str(&format!("\n  = note: fired on {} launches", a.occurrences));
        }
        out.push_str("\n\n");
    }
    if !report.kernels.is_empty() {
        out.push_str("kernel summary:\n");
        for k in &report.kernels {
            out.push_str(&format!(
                "  {:<28} {:>3} launches  occ {:>5.1}%  ld eff {:>5.1}%  st eff {:>5.1}%  \
                 bank x{}  {}\n",
                k.kernel,
                k.launches,
                k.min_occupancy_pct,
                k.min_load_efficiency_pct,
                k.min_store_efficiency_pct,
                k.max_bank_conflict_degree,
                k.bound
            ));
        }
    }
    if let Some(o) = &report.oracle {
        out.push_str(&format!(
            "\noracle: {} launches, {} counter pairs, max rel error {:.2e}, {} divergent\n",
            o.launches_checked, o.counters_checked, o.max_rel_error, o.divergent_launches
        ));
    }
    out.push_str(&format!(
        "\n{} errors, {} warnings, {} notes\n",
        report.summary.errors, report.summary.warnings, report.summary.info
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fermi() -> GpuConfig {
        GpuConfig::gtx580()
    }

    fn codes(report: &LintReport) -> Vec<&str> {
        report
            .diagnostics
            .iter()
            .map(|a| a.diagnostic.code.as_str())
            .collect()
    }

    #[test]
    fn reduce1_fires_bank_conflict_warning() {
        let report = lint_workload(
            &fermi(),
            "reduce1",
            LintOptions {
                quick: true,
                oracle: false,
            },
        )
        .unwrap();
        assert!(
            codes(&report).contains(&diag::BANK_CONFLICT),
            "{:?}",
            codes(&report)
        );
        let k = report
            .kernels
            .iter()
            .find(|k| k.kernel.contains("reduce1"))
            .unwrap();
        assert!(k.max_bank_conflict_degree >= 2);
    }

    #[test]
    fn reduce2_fires_uncoalesced_warning() {
        // reduce2's block-result store writes one lane per block: 12.5%
        // store efficiency against 32B sectors.
        let report = lint_workload(
            &fermi(),
            "reduce2",
            LintOptions {
                quick: true,
                oracle: false,
            },
        )
        .unwrap();
        assert!(
            codes(&report).contains(&diag::UNCOALESCED),
            "{:?}",
            codes(&report)
        );
    }

    #[test]
    fn nw_fires_low_occupancy_and_uncoalesced_warnings() {
        let report = lint_workload(
            &fermi(),
            "nw",
            LintOptions {
                quick: true,
                oracle: false,
            },
        )
        .unwrap();
        let c = codes(&report);
        assert!(c.contains(&diag::LOW_OCCUPANCY), "{c:?}");
        assert!(c.contains(&diag::UNCOALESCED), "{c:?}");
    }

    #[test]
    fn stencil_sweep_is_free_of_errors() {
        let report = lint_workload(
            &fermi(),
            "stencil",
            LintOptions {
                quick: true,
                oracle: false,
            },
        )
        .unwrap();
        assert_eq!(report.summary.errors, 0);
        assert!(report.launches > 0);
    }

    #[test]
    fn unknown_workload_is_rejected() {
        assert!(lint_workload(&fermi(), "fft", LintOptions::default()).is_none());
        assert!(lint_workload(&fermi(), "reduce9", LintOptions::default()).is_none());
    }

    #[test]
    fn json_report_has_stable_top_level_schema() {
        let report = lint_workload(
            &fermi(),
            "reduce6",
            LintOptions {
                quick: true,
                oracle: false,
            },
        )
        .unwrap();
        let json = report.to_json();
        let v = report.serialize_value();
        for key in [
            "schema_version",
            "gpu",
            "workload",
            "applications",
            "launches",
            "diagnostics",
            "kernels",
            "oracle",
            "summary",
        ] {
            assert!(json.contains(&format!("\"{key}\"")), "missing key {key}");
        }
        assert_eq!(v.field("schema_version").as_u64().unwrap(), 1);
    }

    #[test]
    fn text_rendering_mentions_every_code() {
        let report = lint_workload(
            &fermi(),
            "nw",
            LintOptions {
                quick: true,
                oracle: false,
            },
        )
        .unwrap();
        let text = render_text(&report);
        for a in &report.diagnostics {
            assert!(text.contains(&a.diagnostic.code));
        }
    }
}
