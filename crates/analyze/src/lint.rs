//! The `bf lint` driver: sweep a workload, collect diagnostics, optionally
//! run the differential oracle, and render the report.
//!
//! The JSON schema (documented in `DESIGN.md`) is stable: fields are only
//! added, never renamed or removed, and `schema_version` is bumped on any
//! breaking change. Plain runs emit version 1 (new optional fields serialize
//! as `null`, which v1 consumers ignore); enabling `--blocks` or `--what-if`
//! emits version 2, which adds the per-block cost table, the conservation
//! rollup, and the model-priced what-if ranking.
//!
//! Output is fully deterministic: diagnostics are deduplicated by
//! `(code, kernel, block, warp, instruction)` — the span minus the launch
//! index, so per-launch repeats of the same finding fold into one entry with
//! an occurrence count — and sorted by severity, attributed cost, code, and
//! span, making JSON reports diff-stable across runs.

use crate::attr::{self, BlockAttribution};
use crate::diag::{self, Diagnostic, Severity};
use crate::oracle::{self, OracleReport};
use crate::walk::analyze_launch;
use crate::whatif::{self, WhatIfModel};
use bf_kernels::matmul::matmul_application;
use bf_kernels::nw::nw_application;
use bf_kernels::reduce::{reduce_application, ReduceVariant};
use bf_kernels::stencil::stencil_application;
use bf_kernels::Application;
use gpu_sim::GpuConfig;
use serde::{Deserialize, Serialize};

/// Options for a lint run (the stable, flag-free subset; see [`LintConfig`]
/// for the block/what-if extensions).
#[derive(Debug, Clone, Copy, Default)]
pub struct LintOptions {
    /// Use the small quick sweep instead of the full one.
    pub quick: bool,
    /// Also run the static-vs-dynamic differential oracle (costs a dynamic
    /// simulation per launch).
    pub oracle: bool,
}

/// Full configuration of a lint run, including the schema-version-2
/// features. [`LintOptions`] converts losslessly into the v1 subset.
#[derive(Clone, Copy, Default)]
pub struct LintConfig<'a> {
    /// Use the small quick sweep instead of the full one.
    pub quick: bool,
    /// Also run the static-vs-dynamic differential oracle.
    pub oracle: bool,
    /// Attribute counters to basic blocks: block-level diagnostics, the
    /// per-block cost table, and the conservation check (BF-E003).
    pub blocks: bool,
    /// Price each applicable fix through a trained model (implies block
    /// attribution is meaningful but does not require `blocks`).
    pub what_if: Option<&'a dyn WhatIfModel>,
}

impl From<LintOptions> for LintConfig<'static> {
    fn from(o: LintOptions) -> Self {
        LintConfig {
            quick: o.quick,
            oracle: o.oracle,
            blocks: false,
            what_if: None,
        }
    }
}

/// A diagnostic plus how many launches it fired on (duplicates across a
/// sweep are folded; the span points at the first occurrence).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AggregatedDiagnostic {
    /// The representative diagnostic (first occurrence).
    pub diagnostic: Diagnostic,
    /// Number of launches across the sweep that raised it.
    pub occurrences: usize,
}

/// Per-kernel rollup across every launch of the sweep that used the kernel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelSummary {
    /// Kernel name.
    pub kernel: String,
    /// Launches analyzed.
    pub launches: usize,
    /// Minimum theoretical occupancy across launches, percent.
    pub min_occupancy_pct: f64,
    /// Worst (lowest) global-load efficiency across launches, percent.
    pub min_load_efficiency_pct: f64,
    /// Worst global-store efficiency across launches, percent.
    pub min_store_efficiency_pct: f64,
    /// Worst shared-memory bank-conflict degree across launches.
    pub max_bank_conflict_degree: u32,
    /// Roofline bound label of the largest launch ("compute-bound",
    /// "memory-bound", "balanced").
    pub bound: String,
}

/// Oracle rollup for the report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OracleSummary {
    /// Launches checked.
    pub launches_checked: usize,
    /// Counter pairs compared.
    pub counters_checked: usize,
    /// Largest relative error seen across all pairs.
    pub max_rel_error: f64,
    /// Number of divergent launches (non-zero means BF-E002 errors fired).
    pub divergent_launches: usize,
}

/// Severity tallies.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct SeveritySummary {
    /// Info diagnostics.
    pub info: usize,
    /// Warning diagnostics.
    pub warnings: usize,
    /// Error diagnostics.
    pub errors: usize,
}

/// One basic block in the v2 report's cost table: a kernel's code region
/// with its attributed, full-grid-scaled cost aggregated over the sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlockCostEntry {
    /// Kernel name.
    pub kernel: String,
    /// Content-derived block id, 16 hex digits.
    pub block_id: String,
    /// Grid block of the first occurrence.
    pub block: usize,
    /// Warp of the first occurrence.
    pub warp: usize,
    /// Instruction index where the block starts (first occurrence).
    pub instruction: usize,
    /// Instructions in the block body.
    pub instructions: usize,
    /// Merged span occurrences across warps, blocks, and launches.
    pub occurrences: u64,
    /// Attributed issue-slot cost, scaled to full grids, summed over the
    /// sweep.
    pub cost: f64,
    /// This block's share of its kernel's total attributed cost.
    pub cost_share: f64,
    /// Scaled shared-memory replays attributed to the block.
    pub shared_replays: f64,
    /// Scaled global transactions (loads + stores) attributed to the block.
    pub global_transactions: f64,
    /// Scaled divergent branches attributed to the block.
    pub divergent_branches: f64,
}

/// Conservation rollup: how the per-block attribution sums compared to the
/// launch totals across the sweep.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ConservationSummary {
    /// Launches whose attribution was checked.
    pub launches_checked: usize,
    /// Counter comparisons performed (25 per launch).
    pub counters_checked: usize,
    /// Comparisons that were bit-for-bit identical.
    pub exact: usize,
    /// Largest relative error across all comparisons.
    pub max_rel_error: f64,
    /// Comparisons beyond the 1e-9 tolerance (each raises BF-E003).
    pub violations: usize,
}

/// One priced what-if suggestion: predicted time with and without the fix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WhatIfEntry {
    /// Application the fix applies to.
    pub application: String,
    /// Diagnostic code the fix addresses (BF-W001/W002/W004).
    pub code: String,
    /// Fix label ("conflict-free-shared", ...).
    pub fix: String,
    /// Model-predicted time of the unmodified application, ms.
    pub baseline_ms: f64,
    /// Model-predicted time with the fix applied, ms.
    pub fixed_ms: f64,
    /// `baseline_ms - fixed_ms` (positive = the fix is predicted to help).
    pub delta_ms: f64,
    /// `baseline_ms / fixed_ms`.
    pub speedup: f64,
}

/// The full lint report: the unit of the `--format json` output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LintReport {
    /// Schema version; 1 for plain runs, 2 when block attribution or
    /// what-if pricing is present.
    pub schema_version: u32,
    /// GPU preset name.
    pub gpu: String,
    /// Workload name.
    pub workload: String,
    /// Applications in the sweep.
    pub applications: usize,
    /// Kernel launches analyzed.
    pub launches: usize,
    /// Aggregated diagnostics, errors first.
    pub diagnostics: Vec<AggregatedDiagnostic>,
    /// Per-kernel rollups.
    pub kernels: Vec<KernelSummary>,
    /// Oracle rollup, when the oracle ran.
    pub oracle: Option<OracleSummary>,
    /// Severity tallies over all (pre-aggregation) diagnostics.
    pub summary: SeveritySummary,
    /// Per-block cost table, cost-ranked per kernel (`--blocks`).
    pub blocks: Option<Vec<BlockCostEntry>>,
    /// Conservation rollup (`--blocks`).
    pub conservation: Option<ConservationSummary>,
    /// Model-priced fixes, biggest predicted win first (`--what-if`).
    pub what_if: Option<Vec<WhatIfEntry>>,
}

impl LintReport {
    /// The highest severity present, if any diagnostic fired.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.diagnostic.severity).max()
    }

    /// Serializes the report as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("lint report serializes")
    }
}

/// The workloads `bf lint` knows how to sweep.
pub const WORKLOADS: &[&str] = &[
    "reduce0", "reduce1", "reduce2", "reduce3", "reduce4", "reduce5", "reduce6", "matmul", "nw",
    "stencil",
];

/// Builds the sweep of applications for a named workload, mirroring the
/// paper's parameter ranges (`--quick` trims them for CI).
pub fn workload_sweep(workload: &str, quick: bool) -> Option<Vec<Application>> {
    workload_sweep_with_chars(workload, quick).map(|(apps, _)| apps)
}

/// One application's named characteristics — the values `collect` would put
/// in the dataset's characteristic columns, which is what a [`WhatIfModel`]
/// predicts from.
pub type AppCharacteristics = Vec<(String, f64)>;

/// Like [`workload_sweep`] but also returns each application's
/// [`AppCharacteristics`].
pub fn workload_sweep_with_chars(
    workload: &str,
    quick: bool,
) -> Option<(Vec<Application>, Vec<AppCharacteristics>)> {
    let mut apps = Vec::new();
    let mut chars: Vec<Vec<(String, f64)>> = Vec::new();
    match workload {
        "matmul" => {
            let sizes: &[usize] = if quick {
                &[64, 128]
            } else {
                &[64, 128, 256, 512]
            };
            for &n in sizes {
                apps.push(matmul_application(n));
                chars.push(vec![("size".to_string(), n as f64)]);
            }
        }
        "nw" => {
            let lengths: &[usize] = if quick {
                &[256, 512]
            } else {
                &[256, 512, 1024, 2048]
            };
            for &n in lengths {
                apps.push(nw_application(n, 10));
                chars.push(vec![("size".to_string(), n as f64)]);
            }
        }
        "stencil" => {
            let sizes: &[usize] = if quick { &[64, 128] } else { &[64, 128, 256] };
            let sweeps: &[usize] = if quick { &[1] } else { &[1, 2, 4] };
            for &n in sizes {
                for &s in sweeps {
                    apps.push(stencil_application(n, s));
                    chars.push(vec![
                        ("size".to_string(), n as f64),
                        ("sweeps".to_string(), s as f64),
                    ]);
                }
            }
        }
        name => {
            let variant = *ReduceVariant::ALL.iter().find(|v| v.name() == name)?;
            let sizes: &[usize] = if quick {
                &[1 << 14, 1 << 16]
            } else {
                &[1 << 14, 1 << 16, 1 << 18, 1 << 20]
            };
            let threads: &[usize] = if quick {
                &[128, 256]
            } else {
                &[64, 128, 256, 512]
            };
            for &n in sizes {
                for &t in threads {
                    apps.push(reduce_application(variant, n, t));
                    chars.push(vec![
                        ("size".to_string(), n as f64),
                        ("threads".to_string(), t as f64),
                    ]);
                }
            }
        }
    }
    Some((apps, chars))
}

/// Lints one workload sweep on a GPU: static analysis + diagnostics over
/// every launch of every application, plus the oracle when requested.
///
/// Launches that cannot be analyzed (malformed trace, impossible launch)
/// produce a `BF-E001` error diagnostic instead of aborting the run.
pub fn lint_workload(gpu: &GpuConfig, workload: &str, opts: LintOptions) -> Option<LintReport> {
    lint_workload_with(gpu, workload, &opts.into())
}

/// [`lint_workload`] with the full configuration (blocks, what-if).
pub fn lint_workload_with(gpu: &GpuConfig, workload: &str, cfg: &LintConfig) -> Option<LintReport> {
    let (apps, chars) = workload_sweep_with_chars(workload, cfg.quick)?;
    Some(lint_applications_with(gpu, workload, &apps, &chars, cfg))
}

/// Lints an explicit set of applications (v1-compatible entry point).
pub fn lint_applications(
    gpu: &GpuConfig,
    workload: &str,
    apps: &[Application],
    opts: LintOptions,
) -> LintReport {
    lint_applications_with(gpu, workload, apps, &[], &opts.into())
}

/// Merged per-block accumulator keyed by (kernel, block id).
struct BlockAgg {
    kernel: String,
    id: u64,
    first: BlockAttribution,
    cost: f64,
    occurrences: u64,
    shared_replays: f64,
    global_transactions: f64,
    divergent_branches: f64,
}

/// Lints an explicit set of applications with the full configuration.
/// `chars` supplies per-application characteristics for what-if pricing
/// (parallel to `apps`; pass `&[]` when no model is involved).
pub fn lint_applications_with(
    gpu: &GpuConfig,
    workload: &str,
    apps: &[Application],
    chars: &[Vec<(String, f64)>],
    cfg: &LintConfig,
) -> LintReport {
    let mut all: Vec<Diagnostic> = Vec::new();
    let mut launches = 0usize;
    let mut kernels: Vec<KernelSummary> = Vec::new();
    let mut oracle_reports: Vec<OracleReport> = Vec::new();
    let mut block_aggs: Vec<BlockAgg> = Vec::new();
    let mut conservation = ConservationSummary::default();

    for app in apps {
        for (i, kernel) in app.launches.iter().enumerate() {
            launches += 1;
            let a = match analyze_launch(gpu, kernel.as_ref()) {
                Ok(a) => a,
                Err(e) => {
                    all.push(diag::malformed(&kernel.name(), i, &e));
                    continue;
                }
            };

            if cfg.blocks {
                // analyze_launch validated the traces, so attribution over
                // the same traces cannot fail.
                let battr = attr::attribute_launch(gpu, kernel.as_ref())
                    .expect("attribution of an analyzable launch");
                let checks = attr::check_conservation(&battr, &a);
                conservation.launches_checked += 1;
                conservation.counters_checked += checks.len();
                for c in &checks {
                    conservation.max_rel_error = conservation.max_rel_error.max(c.rel_error);
                    if c.exact {
                        conservation.exact += 1;
                    }
                }
                let failures: Vec<_> = checks.into_iter().filter(|c| !c.ok).collect();
                if !failures.is_empty() {
                    conservation.violations += failures.len();
                    all.push(diag::conservation_violation(&a.kernel, i, &failures));
                }
                all.extend(diag::diagnose_blocks(gpu, &a, &battr, i));

                for b in &battr.blocks {
                    let cost = b.cost() * battr.scale;
                    let sr =
                        (b.counts.shared_load_replay + b.counts.shared_store_replay) * battr.scale;
                    let gt = (b.counts.global_load_transactions
                        + b.counts.global_store_transactions)
                        * battr.scale;
                    let db = b.counts.divergent_branch * battr.scale;
                    match block_aggs
                        .iter_mut()
                        .find(|e| e.kernel == battr.kernel && e.id == b.id)
                    {
                        Some(e) => {
                            e.cost += cost;
                            e.occurrences += b.occurrences;
                            e.shared_replays += sr;
                            e.global_transactions += gt;
                            e.divergent_branches += db;
                        }
                        None => block_aggs.push(BlockAgg {
                            kernel: battr.kernel.clone(),
                            id: b.id,
                            first: b.clone(),
                            cost,
                            occurrences: b.occurrences,
                            shared_replays: sr,
                            global_transactions: gt,
                            divergent_branches: db,
                        }),
                    }
                }
            } else {
                all.extend(diag::diagnose(gpu, &a, i));
            }

            let entry = match kernels.iter_mut().find(|k| k.kernel == a.kernel) {
                Some(e) => e,
                None => {
                    kernels.push(KernelSummary {
                        kernel: a.kernel.clone(),
                        launches: 0,
                        min_occupancy_pct: 100.0,
                        min_load_efficiency_pct: 100.0,
                        min_store_efficiency_pct: 100.0,
                        max_bank_conflict_degree: 1,
                        bound: String::new(),
                    });
                    kernels.last_mut().expect("just pushed")
                }
            };
            entry.launches += 1;
            entry.min_occupancy_pct = entry.min_occupancy_pct.min(a.occupancy.theoretical * 100.0);
            entry.min_load_efficiency_pct = entry
                .min_load_efficiency_pct
                .min(a.load_efficiency() * 100.0);
            entry.min_store_efficiency_pct = entry
                .min_store_efficiency_pct
                .min(a.store_efficiency() * 100.0);
            entry.max_bank_conflict_degree =
                entry.max_bank_conflict_degree.max(a.shared.max_degree);
            // Successive launches shrink (reduce passes); keep the first
            // (largest) launch's classification as the kernel's character.
            if entry.bound.is_empty() {
                entry.bound = a.roofline(gpu).bound.label().to_string();
            }

            if cfg.oracle {
                match oracle::check_launch(gpu, kernel.as_ref(), i) {
                    Ok(r) => {
                        if r.divergent() {
                            let detail: Vec<String> = r
                                .failures()
                                .iter()
                                .map(|c| {
                                    format!(
                                        "{}: static {} vs dynamic {} (rel {:.2e})",
                                        c.counter, c.static_value, c.dynamic_value, c.rel_error
                                    )
                                })
                                .collect();
                            all.push(Diagnostic {
                                code: diag::ORACLE_DIVERGENCE.to_string(),
                                severity: Severity::Error,
                                span: diag::Span::launch(&r.kernel, i),
                                message: format!(
                                    "static prediction diverges from dynamic counters: {}",
                                    if detail.is_empty() {
                                        "occupancy mismatch".to_string()
                                    } else {
                                        detail.join("; ")
                                    }
                                ),
                                suggestion: "static walk and simulator disagree — one of them \
                                             has a bug; bisect against gpu-sim's counting rules"
                                    .into(),
                                cost: None,
                            });
                        }
                        oracle_reports.push(r);
                    }
                    Err(e) => all.push(diag::malformed(&kernel.name(), i, &e)),
                }
            }
        }
    }

    // What-if pricing: re-derive static counters under each applicable fix
    // and push both vectors through the model.
    let what_if = cfg.what_if.map(|model| {
        let mut entries: Vec<WhatIfEntry> = Vec::new();
        for (i, app) in apps.iter().enumerate() {
            let Some(app_chars) = chars.get(i) else {
                continue;
            };
            let scenarios = match whatif::whatif_scenarios(gpu, app) {
                Ok(s) => s,
                Err(e) => {
                    all.push(diag::malformed(&app.name, 0, &e));
                    continue;
                }
            };
            for s in scenarios {
                let priced = model
                    .predict_ms(app_chars, &s.baseline)
                    .and_then(|b| model.predict_ms(app_chars, &s.fixed).map(|f| (b, f)));
                match priced {
                    Ok((baseline_ms, fixed_ms)) => entries.push(WhatIfEntry {
                        application: app.name.clone(),
                        code: s.fix.code().to_string(),
                        fix: s.fix.label().to_string(),
                        baseline_ms,
                        fixed_ms,
                        delta_ms: baseline_ms - fixed_ms,
                        speedup: baseline_ms / fixed_ms.max(1e-12),
                    }),
                    Err(e) => all.push(Diagnostic {
                        code: diag::MALFORMED.to_string(),
                        severity: Severity::Error,
                        span: diag::Span::launch(&app.name, 0),
                        message: format!("what-if pricing failed for fix `{}`: {e}", s.fix.label()),
                        suggestion: "check that the model bundle matches the workload and \
                                     provides every required characteristic"
                            .into(),
                        cost: None,
                    }),
                }
            }
        }
        entries.sort_by(|a, b| {
            b.delta_ms
                .partial_cmp(&a.delta_ms)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.application.cmp(&b.application))
                .then_with(|| a.code.cmp(&b.code))
        });
        entries
    });

    let mut summary = SeveritySummary::default();
    for d in &all {
        match d.severity {
            Severity::Info => summary.info += 1,
            Severity::Warning => summary.warnings += 1,
            Severity::Error => summary.errors += 1,
        }
    }

    // Fold duplicates: one entry per (code, kernel, block, warp,
    // instruction) — the span minus the launch index, so the same finding
    // repeated across a sweep's launches folds while distinct code
    // locations stay separate.
    let mut aggregated: Vec<AggregatedDiagnostic> = Vec::new();
    for d in all {
        match aggregated.iter_mut().find(|a| {
            a.diagnostic.code == d.code
                && a.diagnostic.span.kernel == d.span.kernel
                && a.diagnostic.span.block == d.span.block
                && a.diagnostic.span.warp == d.span.warp
                && a.diagnostic.span.instruction == d.span.instruction
        }) {
            Some(a) => {
                a.occurrences += 1;
                // Keep the largest attributed cost among the folded spans so
                // ranking reflects the worst occurrence.
                if let (Some(c), Some(existing)) = (d.cost, a.diagnostic.cost) {
                    if c > existing {
                        a.diagnostic.cost = Some(c);
                    }
                } else if a.diagnostic.cost.is_none() {
                    a.diagnostic.cost = d.cost;
                }
            }
            None => aggregated.push(AggregatedDiagnostic {
                diagnostic: d,
                occurrences: 1,
            }),
        }
    }
    // Deterministic order: severity (errors first), attributed cost
    // (biggest first; launch-level findings without a cost sort after
    // block-level ones of equal severity), then code and span.
    aggregated.sort_by(|a, b| {
        let da = &a.diagnostic;
        let db = &b.diagnostic;
        db.severity
            .cmp(&da.severity)
            .then_with(|| {
                let ca = da.cost.unwrap_or(-1.0);
                let cb = db.cost.unwrap_or(-1.0);
                cb.partial_cmp(&ca).unwrap_or(std::cmp::Ordering::Equal)
            })
            .then_with(|| da.code.cmp(&db.code))
            .then_with(|| da.span.kernel.cmp(&db.span.kernel))
            .then_with(|| da.span.launch.cmp(&db.span.launch))
            .then_with(|| da.span.block.cmp(&db.span.block))
            .then_with(|| da.span.warp.cmp(&db.span.warp))
            .then_with(|| da.span.instruction.cmp(&db.span.instruction))
    });

    let oracle = cfg.oracle.then(|| OracleSummary {
        launches_checked: oracle_reports.len(),
        counters_checked: oracle_reports.iter().map(|r| r.checks.len()).sum(),
        max_rel_error: oracle_reports
            .iter()
            .map(|r| r.max_rel_error())
            .fold(0.0, f64::max),
        divergent_launches: oracle_reports.iter().filter(|r| r.divergent()).count(),
    });

    let blocks = cfg.blocks.then(|| {
        let mut entries: Vec<BlockCostEntry> = block_aggs
            .iter()
            .map(|e| {
                let kernel_total: f64 = block_aggs
                    .iter()
                    .filter(|o| o.kernel == e.kernel)
                    .map(|o| o.cost)
                    .sum();
                BlockCostEntry {
                    kernel: e.kernel.clone(),
                    block_id: e.first.id_hex(),
                    block: e.first.first_seen.block,
                    warp: e.first.first_seen.warp,
                    instruction: e.first.first_seen.instruction,
                    instructions: e.first.instructions,
                    occurrences: e.occurrences,
                    cost: e.cost,
                    cost_share: if kernel_total > 0.0 {
                        e.cost / kernel_total
                    } else {
                        0.0
                    },
                    shared_replays: e.shared_replays,
                    global_transactions: e.global_transactions,
                    divergent_branches: e.divergent_branches,
                }
            })
            .collect();
        entries.sort_by(|a, b| {
            a.kernel.cmp(&b.kernel).then_with(|| {
                b.cost
                    .partial_cmp(&a.cost)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.block_id.cmp(&b.block_id))
            })
        });
        entries
    });

    let schema_version = if cfg.blocks || cfg.what_if.is_some() {
        2
    } else {
        1
    };
    LintReport {
        schema_version,
        gpu: gpu.name.clone(),
        workload: workload.to_string(),
        applications: apps.len(),
        launches,
        diagnostics: aggregated,
        kernels,
        oracle,
        summary,
        blocks,
        conservation: cfg.blocks.then_some(conservation),
        what_if,
    }
}

/// Renders the report for terminals, clippy-style.
pub fn render_text(report: &LintReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "bf lint: {} on {} — {} applications, {} launches\n\n",
        report.workload, report.gpu, report.applications, report.launches
    ));
    for a in &report.diagnostics {
        out.push_str(&a.diagnostic.render());
        if a.occurrences > 1 {
            out.push_str(&format!("\n  = note: fired on {} launches", a.occurrences));
        }
        out.push_str("\n\n");
    }
    if !report.kernels.is_empty() {
        out.push_str("kernel summary:\n");
        for k in &report.kernels {
            out.push_str(&format!(
                "  {:<28} {:>3} launches  occ {:>5.1}%  ld eff {:>5.1}%  st eff {:>5.1}%  \
                 bank x{}  {}\n",
                k.kernel,
                k.launches,
                k.min_occupancy_pct,
                k.min_load_efficiency_pct,
                k.min_store_efficiency_pct,
                k.max_bank_conflict_degree,
                k.bound
            ));
        }
    }
    if let Some(blocks) = &report.blocks {
        out.push_str("\nhot basic blocks (attributed issue-slot cost):\n");
        for b in blocks.iter().take(12) {
            out.push_str(&format!(
                "  {:<28} block {}  {:>5.1}%  cost {:>12.0}  replays {:>10.0}  trans {:>10.0}\n",
                b.kernel,
                b.block_id,
                b.cost_share * 100.0,
                b.cost,
                b.shared_replays,
                b.global_transactions
            ));
        }
    }
    if let Some(c) = &report.conservation {
        out.push_str(&format!(
            "\nconservation: {} launches, {} counter sums, {} exact, max rel error {:.2e}, \
             {} violations\n",
            c.launches_checked, c.counters_checked, c.exact, c.max_rel_error, c.violations
        ));
    }
    if let Some(entries) = &report.what_if {
        out.push_str("\nwhat-if (model-priced fixes, biggest predicted win first):\n");
        if entries.is_empty() {
            out.push_str("  no applicable fixes\n");
        }
        for e in entries {
            out.push_str(&format!(
                "  {:<16} {}  {:<22} {:>9.4}ms -> {:>9.4}ms  delta {:>+9.4}ms  x{:.2}\n",
                e.application, e.code, e.fix, e.baseline_ms, e.fixed_ms, e.delta_ms, e.speedup
            ));
        }
    }
    if let Some(o) = &report.oracle {
        out.push_str(&format!(
            "\noracle: {} launches, {} counter pairs, max rel error {:.2e}, {} divergent\n",
            o.launches_checked, o.counters_checked, o.max_rel_error, o.divergent_launches
        ));
    }
    out.push_str(&format!(
        "\n{} errors, {} warnings, {} notes\n",
        report.summary.errors, report.summary.warnings, report.summary.info
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fermi() -> GpuConfig {
        GpuConfig::gtx580()
    }

    fn codes(report: &LintReport) -> Vec<&str> {
        report
            .diagnostics
            .iter()
            .map(|a| a.diagnostic.code.as_str())
            .collect()
    }

    #[test]
    fn reduce1_fires_bank_conflict_warning() {
        let report = lint_workload(
            &fermi(),
            "reduce1",
            LintOptions {
                quick: true,
                oracle: false,
            },
        )
        .unwrap();
        assert!(
            codes(&report).contains(&diag::BANK_CONFLICT),
            "{:?}",
            codes(&report)
        );
        let k = report
            .kernels
            .iter()
            .find(|k| k.kernel.contains("reduce1"))
            .unwrap();
        assert!(k.max_bank_conflict_degree >= 2);
    }

    #[test]
    fn reduce2_fires_uncoalesced_warning() {
        // reduce2's block-result store writes one lane per block: 12.5%
        // store efficiency against 32B sectors.
        let report = lint_workload(
            &fermi(),
            "reduce2",
            LintOptions {
                quick: true,
                oracle: false,
            },
        )
        .unwrap();
        assert!(
            codes(&report).contains(&diag::UNCOALESCED),
            "{:?}",
            codes(&report)
        );
    }

    #[test]
    fn nw_fires_low_occupancy_and_uncoalesced_warnings() {
        let report = lint_workload(
            &fermi(),
            "nw",
            LintOptions {
                quick: true,
                oracle: false,
            },
        )
        .unwrap();
        let c = codes(&report);
        assert!(c.contains(&diag::LOW_OCCUPANCY), "{c:?}");
        assert!(c.contains(&diag::UNCOALESCED), "{c:?}");
    }

    #[test]
    fn stencil_sweep_is_free_of_errors() {
        let report = lint_workload(
            &fermi(),
            "stencil",
            LintOptions {
                quick: true,
                oracle: false,
            },
        )
        .unwrap();
        assert_eq!(report.summary.errors, 0);
        assert!(report.launches > 0);
    }

    #[test]
    fn unknown_workload_is_rejected() {
        assert!(lint_workload(&fermi(), "fft", LintOptions::default()).is_none());
        assert!(lint_workload(&fermi(), "reduce9", LintOptions::default()).is_none());
    }

    #[test]
    fn json_report_has_stable_top_level_schema() {
        let report = lint_workload(
            &fermi(),
            "reduce6",
            LintOptions {
                quick: true,
                oracle: false,
            },
        )
        .unwrap();
        let json = report.to_json();
        let v = report.serialize_value();
        for key in [
            "schema_version",
            "gpu",
            "workload",
            "applications",
            "launches",
            "diagnostics",
            "kernels",
            "oracle",
            "summary",
        ] {
            assert!(json.contains(&format!("\"{key}\"")), "missing key {key}");
        }
        assert_eq!(v.field("schema_version").as_u64().unwrap(), 1);
    }

    #[test]
    fn text_rendering_mentions_every_code() {
        let report = lint_workload(
            &fermi(),
            "nw",
            LintOptions {
                quick: true,
                oracle: false,
            },
        )
        .unwrap();
        let text = render_text(&report);
        for a in &report.diagnostics {
            assert!(text.contains(&a.diagnostic.code));
        }
    }

    #[test]
    fn blocks_mode_bumps_schema_and_reports_block_table() {
        let cfg = LintConfig {
            quick: true,
            oracle: false,
            blocks: true,
            what_if: None,
        };
        let report = lint_workload_with(&fermi(), "reduce1", &cfg).unwrap();
        assert_eq!(report.schema_version, 2);
        let blocks = report.blocks.as_ref().expect("block table present");
        assert!(!blocks.is_empty());
        // Cost-ranked within each kernel.
        for w in blocks.windows(2) {
            if w[0].kernel == w[1].kernel {
                assert!(w[0].cost >= w[1].cost);
            }
        }
        let c = report.conservation.expect("conservation rollup present");
        assert_eq!(c.violations, 0, "conservation must hold: {c:?}");
        assert!(c.launches_checked > 0);
        assert_eq!(c.exact, c.counters_checked, "all sums should be exact");
        // Block-level warnings carry attributed costs.
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.diagnostic.cost.is_some()));
    }

    #[test]
    fn reduce1_blocks_mode_flags_a_hot_block() {
        let cfg = LintConfig {
            quick: true,
            oracle: false,
            blocks: true,
            what_if: None,
        };
        let report = lint_workload_with(&fermi(), "reduce1", &cfg).unwrap();
        // The conflicted inner-loop block dominates reduce1's cost.
        assert!(
            codes(&report).contains(&diag::HOT_BLOCK),
            "{:?}",
            codes(&report)
        );
    }

    #[test]
    fn deduplication_folds_repeats_and_ordering_is_deterministic() {
        let cfg = LintConfig {
            quick: true,
            oracle: false,
            blocks: true,
            what_if: None,
        };
        let r1 = lint_workload_with(&fermi(), "reduce1", &cfg).unwrap();
        let r2 = lint_workload_with(&fermi(), "reduce1", &cfg).unwrap();
        assert_eq!(r1.to_json(), r2.to_json(), "reports must be diff-stable");
        // The quick sweep has 4 applications; per-launch repeats of the same
        // (code, location) finding must fold into one entry with a count.
        assert!(r1.diagnostics.iter().any(|d| d.occurrences > 1));
        // Sorted by severity desc, then cost desc within a severity.
        let sevs: Vec<_> = r1
            .diagnostics
            .iter()
            .map(|d| d.diagnostic.severity)
            .collect();
        let mut sorted = sevs.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(sevs, sorted);
        for w in r1.diagnostics.windows(2) {
            if w[0].diagnostic.severity == w[1].diagnostic.severity {
                let c0 = w[0].diagnostic.cost.unwrap_or(-1.0);
                let c1 = w[1].diagnostic.cost.unwrap_or(-1.0);
                assert!(c0 >= c1);
            }
        }
    }

    /// A stub model: predicted ms = sum of overridden counter values scaled
    /// down, so lower counters -> lower predicted time.
    struct CounterSumModel;

    impl WhatIfModel for CounterSumModel {
        fn predict_ms(
            &self,
            _chars: &[(String, f64)],
            overrides: &[(String, f64)],
        ) -> Result<f64, String> {
            Ok(overrides
                .iter()
                .filter(|(n, _)| n == "inst_issued")
                .map(|(_, v)| v)
                .sum::<f64>()
                * 1e-6)
        }
    }

    #[test]
    fn what_if_prices_fixes_and_ranks_by_delta() {
        let cfg = LintConfig {
            quick: true,
            oracle: false,
            blocks: true,
            what_if: Some(&CounterSumModel),
        };
        let report = lint_workload_with(&fermi(), "reduce1", &cfg).unwrap();
        assert_eq!(report.schema_version, 2);
        let entries = report.what_if.as_ref().expect("what-if entries present");
        assert!(!entries.is_empty(), "reduce1 has applicable fixes");
        let conflict = entries
            .iter()
            .find(|e| e.fix == "conflict-free-shared")
            .expect("bank-conflict fix priced");
        assert!(
            conflict.delta_ms > 0.0,
            "removing conflicts must lower predicted time: {conflict:?}"
        );
        assert!(conflict.speedup > 1.0);
        for w in entries.windows(2) {
            assert!(w[0].delta_ms >= w[1].delta_ms);
        }
    }

    #[test]
    fn v1_report_fixture_round_trips() {
        // A checked-in schema_version-1 report (written before the block /
        // what-if fields existed) must still load: absent keys deserialize
        // as None, and the old launch-level fields keep their meaning.
        let json = include_str!("../tests/fixtures/lint_v1.json");
        let report: LintReport = serde_json::from_str(json).expect("fixture deserializes");
        assert_eq!(report.schema_version, 1);
        assert_eq!(report.workload, "reduce1");
        assert!(report.launches > 0);
        assert!(report.blocks.is_none());
        assert!(report.conservation.is_none());
        assert!(report.what_if.is_none());
        assert!(!report.diagnostics.is_empty());
        assert_eq!(report.diagnostics[0].diagnostic.code, "BF-W001");
        assert!(report.diagnostics[0].diagnostic.cost.is_none());
        // And a report serialized today still carries every v1 field.
        let now = lint_workload(
            &fermi(),
            "reduce1",
            LintOptions {
                quick: true,
                oracle: false,
            },
        )
        .unwrap();
        for key in ["diagnostics", "kernels", "summary", "schema_version"] {
            assert!(now.to_json().contains(&format!("\"{key}\"")));
        }
        assert_eq!(now.schema_version, 1);
    }
}
