//! What-if estimation: statically re-evaluate counters under a hypothetical
//! fix and push both counter vectors through a trained model.
//!
//! Each BF-Wxxx warning names a mechanism (bank conflicts, uncoalesced
//! access, divergence). The corresponding [`Fix`] rewrites the *trace* as if
//! the mechanism were repaired — conflict-free shared offsets, fully
//! coalesced global addresses, converged branches — and the ordinary static
//! walk re-derives the counters. Because the rewrite produces a real
//! [`KernelTrace`] ([`FixedKernel`]), the same hypothetical can also be run
//! through the cycle engine, which is how the test suite checks that the
//! model-predicted direction of each what-if agrees with the simulator.
//!
//! The model side is abstracted behind [`WhatIfModel`] so this crate stays
//! independent of the bundle format: `bf-registry` implements the trait for
//! `ModelBundle` by overriding the statically-derivable entries of the
//! selected-counter row before the forest prediction.

use crate::diag;
use crate::walk::{analyze_launch, StaticCounts, StaticLaunchAnalysis};
use bf_kernels::Application;
use gpu_sim::profiler::counter_on;
use gpu_sim::trace::{BlockTrace, KernelTrace, LaunchConfig, WarpInstruction};
use gpu_sim::{GpuConfig, Result};

/// A hypothetical fix for one warning mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fix {
    /// Sequential shared-memory addressing: lane `i` accesses offset
    /// `i * width` (conflict-free on 4-byte banks; addresses BF-W001).
    ConflictFreeShared,
    /// Fully coalesced global accesses: active lanes write consecutive
    /// `width`-byte slots from a 128-byte-aligned base (addresses BF-W002).
    CoalescedGlobal,
    /// Every divergent branch converges (addresses BF-W004).
    ConvergedBranches,
}

impl Fix {
    /// All fixes, in diagnostic-code order.
    pub const ALL: [Fix; 3] = [
        Fix::ConflictFreeShared,
        Fix::CoalescedGlobal,
        Fix::ConvergedBranches,
    ];

    /// Short machine-readable label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            Fix::ConflictFreeShared => "conflict-free-shared",
            Fix::CoalescedGlobal => "coalesced-global",
            Fix::ConvergedBranches => "converged-branches",
        }
    }

    /// The diagnostic code this fix addresses.
    pub fn code(&self) -> &'static str {
        match self {
            Fix::ConflictFreeShared => diag::BANK_CONFLICT,
            Fix::CoalescedGlobal => diag::UNCOALESCED,
            Fix::ConvergedBranches => diag::DIVERGENCE,
        }
    }

    /// Applies the fix to one instruction.
    fn rewrite(&self, instr: &mut WarpInstruction) {
        match (self, instr) {
            (
                Fix::ConflictFreeShared,
                WarpInstruction::LoadShared { offsets, width, .. }
                | WarpInstruction::StoreShared { offsets, width, .. },
            ) => {
                let w = *width as u32;
                for (i, off) in offsets.iter_mut().enumerate() {
                    *off = i as u32 * w;
                }
            }
            (
                Fix::CoalescedGlobal,
                WarpInstruction::LoadGlobal { addrs, width, mask }
                | WarpInstruction::StoreGlobal { addrs, width, mask },
            ) => {
                if *mask == 0 {
                    return;
                }
                let m = *mask;
                let base = addrs
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| m & (1 << i) != 0)
                    .map(|(_, &a)| a)
                    .min()
                    .unwrap_or(0)
                    & !127u64;
                let mut rank = 0u64;
                for (i, a) in addrs.iter_mut().enumerate() {
                    if m & (1 << i) != 0 {
                        *a = base + rank * *width as u64;
                        rank += 1;
                    }
                }
            }
            (Fix::ConvergedBranches, WarpInstruction::Branch { divergent, .. }) => {
                *divergent = false;
            }
            _ => {}
        }
    }
}

/// A kernel with a [`Fix`] applied to every generated trace. A real
/// [`KernelTrace`], so the hypothetical is both statically analyzable and
/// dynamically simulable with the unmodified engines.
pub struct FixedKernel<'a> {
    /// The original kernel.
    pub inner: &'a dyn KernelTrace,
    /// The hypothetical fix.
    pub fix: Fix,
}

impl KernelTrace for FixedKernel<'_> {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn launch_config(&self) -> LaunchConfig {
        self.inner.launch_config()
    }

    fn block_trace(&self, block_id: usize, gpu: &GpuConfig) -> BlockTrace {
        let mut t = self.inner.block_trace(block_id, gpu);
        for stream in &mut t.warps {
            for instr in stream {
                self.fix.rewrite(instr);
            }
        }
        t
    }

    fn homogeneous(&self) -> bool {
        self.inner.homogeneous()
    }

    // content_tag deliberately stays `None`: the rewrite changes the traces,
    // so inheriting the inner kernel's tag would alias fixed and unfixed
    // launches in the memo cache.
}

/// Derives the statically-exact subset of the profiler's named counters from
/// static counts, honouring per-architecture availability. Names and
/// formulas mirror `gpu_sim::profiler::derive_counters` exactly — these are
/// the entries a [`WhatIfModel`] overrides in the model's counter row.
/// Time-dependent counters (throughputs, ipc, achieved occupancy, cache
/// hits) have no static counterpart and are never overridden.
pub fn static_counter_values(gpu: &GpuConfig, c: &StaticCounts) -> Vec<(String, f64)> {
    let inst_exec = c.inst_executed.max(1.0);
    let shared_replays = c.shared_load_replay + c.shared_store_replay;
    let candidates: [(&str, f64); 17] = [
        ("shared_replay_overhead", shared_replays / inst_exec),
        ("shared_load", c.shared_load),
        ("shared_store", c.shared_store),
        (
            "inst_replay_overhead",
            (c.inst_issued - c.inst_executed).max(0.0) / inst_exec,
        ),
        ("l1_shared_bank_conflict", shared_replays),
        ("shared_load_replay", c.shared_load_replay),
        ("shared_store_replay", c.shared_store_replay),
        ("gld_request", c.gld_request),
        ("gst_request", c.gst_request),
        ("global_load_transaction", c.global_load_transactions),
        ("global_store_transaction", c.global_store_transactions),
        ("l2_write_transactions", c.l2_write_transactions),
        ("dram_write_transactions", c.dram_write_transactions),
        (
            "warp_execution_efficiency",
            (c.thread_inst_executed / (inst_exec * gpu.warp_size as f64)).min(1.0) * 100.0,
        ),
        ("inst_executed", c.inst_executed),
        ("inst_issued", c.inst_issued),
        ("branch", c.branch),
    ];
    let mut out: Vec<(String, f64)> = candidates
        .iter()
        .filter(|(name, _)| counter_on(name, gpu.arch))
        .map(|(name, v)| (name.to_string(), *v))
        .collect();
    if counter_on("divergent_branch", gpu.arch) {
        out.push(("divergent_branch".to_string(), c.divergent_branch));
    }
    out
}

/// A model that can predict application time from named characteristics with
/// a set of counter values pinned to externally supplied numbers.
///
/// Implemented by `bf-registry`'s `ModelBundle`: characteristics drive the
/// per-counter scaling models, then any selected counter named in
/// `overrides` is replaced before the forest predicts. Errors are plain
/// strings so the trait stays object-safe and dependency-free.
pub trait WhatIfModel {
    /// Predicts milliseconds for an application described by named
    /// characteristics, with `overrides` pinning selected counter values.
    fn predict_ms(
        &self,
        characteristics: &[(String, f64)],
        overrides: &[(String, f64)],
    ) -> std::result::Result<f64, String>;
}

/// One hypothetical fix for one application: the baseline and fixed static
/// counter vectors, ready to push through a [`WhatIfModel`].
#[derive(Debug, Clone)]
pub struct WhatIfScenario {
    /// The fix applied.
    pub fix: Fix,
    /// Statically-exact counters of the unmodified application.
    pub baseline: Vec<(String, f64)>,
    /// The same counters with the fix applied to every launch.
    pub fixed: Vec<(String, f64)>,
}

/// Sums the scaled static counts over every launch of an application —
/// the static mirror of how the profiler accumulates raw events before
/// deriving one application-level counter set.
fn app_static_counts(analyses: &[StaticLaunchAnalysis]) -> StaticCounts {
    let mut total = StaticCounts::default();
    for a in analyses {
        total.add(&a.counts);
    }
    total
}

fn analyze_all(
    gpu: &GpuConfig,
    app: &Application,
    fix: Option<Fix>,
) -> Result<Vec<StaticLaunchAnalysis>> {
    app.launches
        .iter()
        .enumerate()
        .map(|(i, k)| {
            let r = match fix {
                Some(fix) => analyze_launch(
                    gpu,
                    &FixedKernel {
                        inner: k.as_ref(),
                        fix,
                    },
                ),
                None => analyze_launch(gpu, k.as_ref()),
            };
            r.map_err(|e| e.in_kernel(&k.name(), i))
        })
        .collect()
}

/// Builds the applicable what-if scenarios for one application: a fix
/// qualifies when the mechanism it repairs actually fires somewhere in the
/// sweep (same thresholds as the diagnostics), and its fixed counter vector
/// comes from re-walking every launch with the fix applied.
pub fn whatif_scenarios(gpu: &GpuConfig, app: &Application) -> Result<Vec<WhatIfScenario>> {
    let analyses = analyze_all(gpu, app, None)?;
    let baseline = static_counter_values(gpu, &app_static_counts(&analyses));

    let mut applicable = Vec::new();
    for a in &analyses {
        if a.shared.max_degree >= 2 {
            applicable.push(Fix::ConflictFreeShared);
        }
        let bad_loads = a.loads.requests > 0 && a.loads.efficiency() < diag::COALESCING_THRESHOLD;
        let bad_stores =
            a.stores.requests > 0 && a.stores.efficiency() < diag::COALESCING_THRESHOLD;
        if bad_loads || bad_stores {
            applicable.push(Fix::CoalescedGlobal);
        }
        if a.divergence.branches > 0
            && a.divergence.divergent as f64 / a.divergence.branches as f64
                >= diag::DIVERGENCE_THRESHOLD
        {
            applicable.push(Fix::ConvergedBranches);
        }
    }

    let mut out = Vec::new();
    for fix in Fix::ALL {
        if !applicable.contains(&fix) {
            continue;
        }
        let fixed_analyses = analyze_all(gpu, app, Some(fix))?;
        out.push(WhatIfScenario {
            fix,
            baseline: baseline.clone(),
            fixed: static_counter_values(gpu, &app_static_counts(&fixed_analyses)),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bf_kernels::reduce::{reduce_application, ReduceVariant};
    use gpu_sim::simulate_launch;

    fn value(v: &[(String, f64)], name: &str) -> f64 {
        v.iter().find(|(n, _)| n == name).map(|(_, x)| *x).unwrap()
    }

    #[test]
    fn conflict_free_fix_zeroes_shared_replays() {
        let gpu = GpuConfig::gtx580();
        let app = reduce_application(ReduceVariant::Reduce1, 1 << 14, 128);
        let scenarios = whatif_scenarios(&gpu, &app).unwrap();
        let s = scenarios
            .iter()
            .find(|s| s.fix == Fix::ConflictFreeShared)
            .expect("reduce1 is bank-conflicted");
        assert!(value(&s.baseline, "l1_shared_bank_conflict") > 0.0);
        assert_eq!(value(&s.fixed, "l1_shared_bank_conflict"), 0.0);
        assert!(value(&s.fixed, "inst_issued") < value(&s.baseline, "inst_issued"));
    }

    #[test]
    fn fixed_kernel_simulates_faster_when_conflicts_are_removed() {
        // The acceptance direction check at trace level: applying the
        // conflict-free rewrite to reduce1 must actually speed up the
        // simulated kernel.
        let gpu = GpuConfig::gtx580();
        let app = reduce_application(ReduceVariant::Reduce1, 1 << 14, 128);
        let mut base_ms = 0.0;
        let mut fixed_ms = 0.0;
        for k in &app.launches {
            base_ms += simulate_launch(&gpu, k.as_ref()).unwrap().time_seconds * 1e3;
            let fixed = FixedKernel {
                inner: k.as_ref(),
                fix: Fix::ConflictFreeShared,
            };
            fixed_ms += simulate_launch(&gpu, &fixed).unwrap().time_seconds * 1e3;
        }
        assert!(
            fixed_ms < base_ms,
            "conflict-free rewrite did not speed up reduce1: {fixed_ms} vs {base_ms}"
        );
    }

    #[test]
    fn coalesced_fix_reduces_transactions() {
        let gpu = GpuConfig::gtx580();
        // reduce2 stores one lane per block: heavily uncoalesced stores.
        let app = reduce_application(ReduceVariant::Reduce2, 1 << 14, 128);
        let scenarios = whatif_scenarios(&gpu, &app).unwrap();
        let s = scenarios
            .iter()
            .find(|s| s.fix == Fix::CoalescedGlobal)
            .expect("reduce2 has uncoalesced stores");
        assert!(
            value(&s.fixed, "global_load_transaction")
                <= value(&s.baseline, "global_load_transaction")
        );
    }

    #[test]
    fn converged_fix_zeroes_divergent_branches() {
        let gpu = GpuConfig::gtx580();
        // reduce0's interleaved addressing diverges heavily.
        let app = reduce_application(ReduceVariant::Reduce0, 1 << 14, 128);
        let scenarios = whatif_scenarios(&gpu, &app).unwrap();
        if let Some(s) = scenarios.iter().find(|s| s.fix == Fix::ConvergedBranches) {
            assert!(value(&s.baseline, "divergent_branch") > 0.0);
            assert_eq!(value(&s.fixed, "divergent_branch"), 0.0);
        }
    }

    #[test]
    fn static_counter_values_respect_architecture_availability() {
        let app = reduce_application(ReduceVariant::Reduce1, 1 << 14, 128);
        let fermi = GpuConfig::gtx580();
        let kepler = GpuConfig::k20m();
        let a = analyze_launch(&fermi, app.launches[0].as_ref()).unwrap();
        let f = static_counter_values(&fermi, &a.counts);
        let k = static_counter_values(&kepler, &a.counts);
        assert!(f.iter().any(|(n, _)| n == "l1_shared_bank_conflict"));
        assert!(!k.iter().any(|(n, _)| n == "l1_shared_bank_conflict"));
        assert!(k.iter().any(|(n, _)| n == "shared_load_replay"));
        assert!(!f.iter().any(|(n, _)| n == "shared_load_replay"));
    }
}
