//! Varimax rotation of factor loadings.
//!
//! Varimax finds an orthogonal rotation of the loading matrix that maximises
//! the variance of the squared loadings within each component, driving each
//! variable's loading toward 0 or ±1 and making components interpretable as
//! distinct "performance patterns". The paper's toolchain calls R's
//! `varimax` right after `prcomp` for exactly this reason.
//!
//! Implementation: the classical pairwise (Kaiser) rotation algorithm with
//! Kaiser row normalisation, iterated until the rotation angle updates fall
//! below tolerance.

use bf_linalg::Matrix;

/// Result of a varimax rotation.
#[derive(Debug, Clone)]
pub struct VarimaxResult {
    /// The rotated loading matrix (`p x k`).
    pub loadings: Matrix,
    /// The orthogonal rotation matrix (`k x k`) with
    /// `loadings = original * rotation`.
    pub rotation: Matrix,
    /// Number of sweeps performed.
    pub iterations: usize,
}

/// Rotates a `p x k` loading matrix with the varimax criterion.
///
/// `normalize` applies Kaiser normalisation (rows scaled to unit communality
/// during rotation, then scaled back), matching R's default.
pub fn varimax(loadings: &Matrix, normalize: bool) -> VarimaxResult {
    let (p, k) = loadings.shape();
    let mut l = loadings.clone();
    let mut rotation = Matrix::identity(k);
    if k < 2 || p == 0 {
        return VarimaxResult {
            loadings: l,
            rotation,
            iterations: 0,
        };
    }

    // Kaiser normalisation: scale each row to unit length.
    let mut row_norms = vec![1.0; p];
    if normalize {
        for i in 0..p {
            let norm: f64 = l.row(i).iter().map(|v| v * v).sum::<f64>().sqrt();
            if norm > 0.0 {
                row_norms[i] = norm;
                for j in 0..k {
                    l[(i, j)] /= norm;
                }
            }
        }
    }

    const MAX_SWEEPS: usize = 100;
    const TOL: f64 = 1e-10;
    let mut iterations = 0;
    for sweep in 0..MAX_SWEEPS {
        iterations = sweep + 1;
        let mut max_angle = 0.0f64;
        for a in 0..(k - 1) {
            for b in (a + 1)..k {
                // Accumulate the quantities of the classic rotation formula.
                let (mut u_sum, mut v_sum, mut u2v2_sum, mut uv_sum) = (0.0, 0.0, 0.0, 0.0);
                for i in 0..p {
                    let x = l[(i, a)];
                    let y = l[(i, b)];
                    let u = x * x - y * y;
                    let v = 2.0 * x * y;
                    u_sum += u;
                    v_sum += v;
                    u2v2_sum += u * u - v * v;
                    uv_sum += u * v;
                }
                let num = 2.0 * (uv_sum - u_sum * v_sum / p as f64);
                let den = u2v2_sum - (u_sum * u_sum - v_sum * v_sum) / p as f64;
                if num == 0.0 && den == 0.0 {
                    continue;
                }
                let phi = 0.25 * num.atan2(den);
                max_angle = max_angle.max(phi.abs());
                if phi.abs() < TOL {
                    continue;
                }
                let (s, c) = phi.sin_cos();
                for i in 0..p {
                    let x = l[(i, a)];
                    let y = l[(i, b)];
                    l[(i, a)] = c * x + s * y;
                    l[(i, b)] = -s * x + c * y;
                }
                for i in 0..k {
                    let x = rotation[(i, a)];
                    let y = rotation[(i, b)];
                    rotation[(i, a)] = c * x + s * y;
                    rotation[(i, b)] = -s * x + c * y;
                }
            }
        }
        if max_angle < TOL {
            break;
        }
    }

    if normalize {
        for i in 0..p {
            for j in 0..k {
                l[(i, j)] *= row_norms[i];
            }
        }
    }

    VarimaxResult {
        loadings: l,
        rotation,
        iterations,
    }
}

/// The varimax criterion value: sum over components of the variance of the
/// squared loadings. Rotation should never decrease this.
pub fn varimax_criterion(loadings: &Matrix) -> f64 {
    let (p, k) = loadings.shape();
    if p == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    for c in 0..k {
        let sq: Vec<f64> = (0..p)
            .map(|i| loadings[(i, c)] * loadings[(i, c)])
            .collect();
        let mean = sq.iter().sum::<f64>() / p as f64;
        total += sq.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / p as f64;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately "muddled" loading matrix: two clean factors mixed by a
    /// 45° rotation so every variable loads on both components.
    fn muddled_loadings() -> Matrix {
        let clean = Matrix::from_rows(&[
            vec![0.9, 0.0],
            vec![0.8, 0.1],
            vec![0.85, -0.05],
            vec![0.0, 0.9],
            vec![0.1, 0.8],
            vec![-0.05, 0.85],
        ])
        .unwrap();
        let theta = std::f64::consts::FRAC_PI_4;
        let rot = Matrix::from_rows(&[
            vec![theta.cos(), -theta.sin()],
            vec![theta.sin(), theta.cos()],
        ])
        .unwrap();
        clean.matmul(&rot).unwrap()
    }

    #[test]
    fn rotation_improves_criterion() {
        let l = muddled_loadings();
        let before = varimax_criterion(&l);
        let r = varimax(&l, true);
        let after = varimax_criterion(&r.loadings);
        assert!(after > before, "criterion {before} -> {after}");
    }

    #[test]
    fn rotation_matrix_is_orthogonal() {
        let l = muddled_loadings();
        let r = varimax(&l, true);
        let rtr = r.rotation.transpose().matmul(&r.rotation).unwrap();
        assert!(rtr.approx_eq(&Matrix::identity(2), 1e-8));
    }

    #[test]
    fn loadings_equal_original_times_rotation() {
        let l = muddled_loadings();
        let r = varimax(&l, false);
        let reconstructed = l.matmul(&r.rotation).unwrap();
        assert!(reconstructed.approx_eq(&r.loadings, 1e-8));
    }

    #[test]
    fn communalities_preserved() {
        // Row sums of squared loadings are rotation invariants.
        let l = muddled_loadings();
        let r = varimax(&l, true);
        for i in 0..l.rows() {
            let before: f64 = l.row(i).iter().map(|v| v * v).sum();
            let after: f64 = r.loadings.row(i).iter().map(|v| v * v).sum();
            assert!((before - after).abs() < 1e-8);
        }
    }

    #[test]
    fn recovers_simple_structure() {
        let l = muddled_loadings();
        let r = varimax(&l, true);
        // After rotation, each of the first three variables should load
        // dominantly on one component and the last three on the other.
        let dominant = |i: usize| -> usize {
            if r.loadings[(i, 0)].abs() >= r.loadings[(i, 1)].abs() {
                0
            } else {
                1
            }
        };
        let first = dominant(0);
        assert_eq!(dominant(1), first);
        assert_eq!(dominant(2), first);
        let second = dominant(3);
        assert_ne!(first, second);
        assert_eq!(dominant(4), second);
        assert_eq!(dominant(5), second);
    }

    #[test]
    fn single_component_is_noop() {
        let l = Matrix::from_rows(&[vec![0.5], vec![0.7]]).unwrap();
        let r = varimax(&l, true);
        assert!(r.loadings.approx_eq(&l, 1e-12));
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn already_simple_structure_is_stable() {
        let l = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.9, 0.0],
            vec![0.0, 1.0],
            vec![0.0, 0.95],
        ])
        .unwrap();
        let r = varimax(&l, false);
        // Criterion can't get better than the (already maximal) structure by
        // more than numerical noise.
        assert!(varimax_criterion(&r.loadings) >= varimax_criterion(&l) - 1e-12);
        for i in 0..4 {
            for j in 0..2 {
                assert!((r.loadings[(i, j)].abs() - l[(i, j)].abs()).abs() < 0.05);
            }
        }
    }
}
