//! Principal component analysis with varimax rotation for BlackForest.
//!
//! The paper (§4.1.2) refines random-forest variable selection with PCA when
//! the forest alone cannot explain the response variation: correlated
//! counters are folded into uncorrelated principal components, and the
//! **factor loadings** (the coefficients of the original counters within each
//! component) are interpreted against performance patterns — e.g. "PC1 is
//! memory intensity, PC2 is MIMD/ILP parallelism" for `reduce1` (§5.2).
//!
//! This is a faithful reimplementation of the R workflow the authors used:
//! `prcomp` (centred, optionally scaled PCA via the spectral decomposition of
//! the covariance/correlation matrix) followed by `varimax` rotation of the
//! retained loadings.

// Index-based loops are the clearer idiom throughout this numeric code
// (parallel arrays, in-place matrix updates), so the pedantic lint is off.
#![allow(clippy::needless_range_loop)]

pub mod model;
pub mod varimax;

pub use model::{Pca, PcaOptions};
pub use varimax::varimax;

/// Errors produced by PCA routines.
#[derive(Debug, Clone, PartialEq)]
pub enum PcaError {
    /// Fewer than two observations, or zero features.
    NotEnoughData,
    /// The underlying eigendecomposition failed.
    Eigen(String),
    /// Requested more components than exist.
    TooManyComponents {
        /// Components requested.
        requested: usize,
        /// Components available (= number of features).
        available: usize,
    },
}

impl std::fmt::Display for PcaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcaError::NotEnoughData => write!(f, "need at least 2 observations and 1 feature"),
            PcaError::Eigen(msg) => write!(f, "eigendecomposition failed: {msg}"),
            PcaError::TooManyComponents {
                requested,
                available,
            } => write!(
                f,
                "requested {requested} components, only {available} available"
            ),
        }
    }
}

impl std::error::Error for PcaError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, PcaError>;
