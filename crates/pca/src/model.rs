//! The PCA model: centring/scaling, spectral decomposition, scores,
//! loadings, and variance accounting.

use crate::{PcaError, Result};
use bf_linalg::{stats, Matrix, SymmetricEigen};
use serde::{Deserialize, Serialize};

/// Options controlling the decomposition.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PcaOptions {
    /// Standardise each column to unit variance (correlation PCA). This is
    /// what BlackForest uses: counters live on wildly different scales.
    pub scale: bool,
}

impl Default for PcaOptions {
    fn default() -> Self {
        PcaOptions { scale: true }
    }
}

/// A fitted PCA model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pca {
    /// Column means used for centring.
    pub means: Vec<f64>,
    /// Column standard deviations used for scaling (1.0 where constant or
    /// scaling disabled).
    pub scales: Vec<f64>,
    /// Loadings: `p x p` matrix whose columns are the principal axes
    /// (eigenvectors of the covariance/correlation matrix), ordered by
    /// decreasing eigenvalue.
    pub rotation: Matrix,
    /// Eigenvalues, i.e. component variances, descending.
    pub variances: Vec<f64>,
    options: PcaOptions,
}

impl Pca {
    /// Fits a PCA on row-major observations.
    pub fn fit(x: &Matrix, options: PcaOptions) -> Result<Pca> {
        let (n, p) = x.shape();
        if n < 2 || p == 0 {
            return Err(PcaError::NotEnoughData);
        }
        let basis = if options.scale {
            stats::correlation_matrix(x)
        } else {
            stats::covariance_matrix(x)
        }
        .map_err(|e| PcaError::Eigen(e.to_string()))?;
        let eig = SymmetricEigen::decompose(&basis).map_err(|e| PcaError::Eigen(e.to_string()))?;
        let means = stats::column_means(x);
        let scales = if options.scale {
            stats::column_std_devs(x)
                .into_iter()
                .map(|s| if s == 0.0 { 1.0 } else { s })
                .collect()
        } else {
            vec![1.0; p]
        };
        // Clamp tiny negative eigenvalues (floating-point artefacts on PSD
        // matrices) to zero so variance fractions stay sane.
        let variances = eig.values.iter().map(|&v| v.max(0.0)).collect();
        Ok(Pca {
            means,
            scales,
            rotation: eig.vectors,
            variances,
            options,
        })
    }

    /// Number of features the model was fitted on.
    pub fn n_features(&self) -> usize {
        self.means.len()
    }

    /// Fraction of total variance captured by each component.
    pub fn explained_variance_ratio(&self) -> Vec<f64> {
        let total: f64 = self.variances.iter().sum();
        if total == 0.0 {
            return vec![0.0; self.variances.len()];
        }
        self.variances.iter().map(|&v| v / total).collect()
    }

    /// Cumulative explained-variance fractions.
    pub fn cumulative_explained(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.explained_variance_ratio()
            .into_iter()
            .map(|v| {
                acc += v;
                acc
            })
            .collect()
    }

    /// Smallest number of components whose cumulative explained variance
    /// reaches `threshold` (e.g. 0.95). The paper retains components
    /// accounting for ≥96–97% of variance — typically four.
    pub fn components_for(&self, threshold: f64) -> usize {
        let cum = self.cumulative_explained();
        for (k, &c) in cum.iter().enumerate() {
            if c >= threshold {
                return k + 1;
            }
        }
        cum.len()
    }

    /// Projects observations onto the first `k` components (scores).
    pub fn transform(&self, x: &Matrix, k: usize) -> Result<Matrix> {
        let p = self.n_features();
        if k > p {
            return Err(PcaError::TooManyComponents {
                requested: k,
                available: p,
            });
        }
        let (n, xp) = x.shape();
        if xp != p {
            return Err(PcaError::Eigen(format!("expected {p} features, got {xp}")));
        }
        let mut scores = Matrix::zeros(n, k);
        for i in 0..n {
            let row = x.row(i);
            for c in 0..k {
                let mut s = 0.0;
                for j in 0..p {
                    let z = (row[j] - self.means[j]) / self.scales[j];
                    s += z * self.rotation[(j, c)];
                }
                scores[(i, c)] = s;
            }
        }
        Ok(scores)
    }

    /// The loadings of the first `k` components as a `p x k` matrix.
    pub fn loadings(&self, k: usize) -> Result<Matrix> {
        let p = self.n_features();
        if k > p {
            return Err(PcaError::TooManyComponents {
                requested: k,
                available: p,
            });
        }
        let mut l = Matrix::zeros(p, k);
        for j in 0..p {
            for c in 0..k {
                l[(j, c)] = self.rotation[(j, c)];
            }
        }
        Ok(l)
    }

    /// Loadings scaled by the square root of the component variances —
    /// "factor loadings" in the factor-analysis sense; their squares sum (per
    /// row) to each variable's communality. These are what the paper's PCA
    /// tables report.
    pub fn factor_loadings(&self, k: usize) -> Result<Matrix> {
        let mut l = self.loadings(k)?;
        for c in 0..k {
            let s = self.variances[c].sqrt();
            for j in 0..l.rows() {
                l[(j, c)] *= s;
            }
        }
        Ok(l)
    }

    /// For component `c`, the indices of the `top` variables by absolute
    /// loading together with their (signed) loadings — how the paper reads a
    /// component ("gld_request, shared_load and l2_read_transactions have
    /// positive loadings on PC1").
    pub fn dominant_variables(&self, c: usize, top: usize) -> Vec<(usize, f64)> {
        let p = self.n_features();
        let mut pairs: Vec<(usize, f64)> = (0..p).map(|j| (j, self.rotation[(j, c)])).collect();
        pairs.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).unwrap());
        pairs.truncate(top);
        pairs
    }

    /// Whether scaling was enabled at fit time.
    pub fn scaled(&self) -> bool {
        self.options.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Data with a dominant direction along (1, 1) and small noise along
    /// (1, -1).
    fn correlated_data() -> Matrix {
        let mut rows = Vec::new();
        for i in 0..50 {
            let t = i as f64 / 5.0;
            let noise = ((i * 7) % 5) as f64 * 0.05;
            rows.push(vec![t + noise, t - noise]);
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn first_component_captures_dominant_direction() {
        let x = correlated_data();
        let pca = Pca::fit(&x, PcaOptions::default()).unwrap();
        let ratio = pca.explained_variance_ratio();
        assert!(ratio[0] > 0.95, "ratio {ratio:?}");
        // Loadings on PC1 should be near (1/sqrt2, 1/sqrt2).
        let l = pca.loadings(1).unwrap();
        assert!((l[(0, 0)].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.05);
        assert!((l[(1, 0)].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.05);
    }

    #[test]
    fn explained_ratios_sum_to_one() {
        let x = correlated_data();
        let pca = Pca::fit(&x, PcaOptions::default()).unwrap();
        let total: f64 = pca.explained_variance_ratio().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cumulative_is_monotone_and_ends_at_one() {
        let x = correlated_data();
        let pca = Pca::fit(&x, PcaOptions::default()).unwrap();
        let cum = pca.cumulative_explained();
        for w in cum.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
        assert!((cum.last().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn components_for_threshold() {
        let x = correlated_data();
        let pca = Pca::fit(&x, PcaOptions::default()).unwrap();
        assert_eq!(pca.components_for(0.9), 1);
        assert_eq!(pca.components_for(1.0), 2);
    }

    #[test]
    fn scores_are_uncorrelated() {
        let x = correlated_data();
        let pca = Pca::fit(&x, PcaOptions::default()).unwrap();
        let scores = pca.transform(&x, 2).unwrap();
        let c0 = scores.col(0);
        let c1 = scores.col(1);
        assert!(bf_linalg::stats::pearson(&c0, &c1).abs() < 1e-8);
    }

    #[test]
    fn score_variances_match_eigenvalues() {
        let x = correlated_data();
        let pca = Pca::fit(&x, PcaOptions::default()).unwrap();
        let scores = pca.transform(&x, 2).unwrap();
        for c in 0..2 {
            let v = bf_linalg::stats::variance(&scores.col(c));
            assert!(
                (v - pca.variances[c]).abs() < 1e-8,
                "component {c}: {v} vs {}",
                pca.variances[c]
            );
        }
    }

    #[test]
    fn unscaled_pca_respects_raw_variances() {
        // Column 0 has hugely larger variance; without scaling it dominates.
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![1000.0 * i as f64, (i % 3) as f64])
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let pca = Pca::fit(&x, PcaOptions { scale: false }).unwrap();
        let l = pca.loadings(1).unwrap();
        assert!(l[(0, 0)].abs() > 0.999);
    }

    #[test]
    fn constant_column_is_tolerated() {
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, 5.0]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let pca = Pca::fit(&x, PcaOptions::default()).unwrap();
        assert!(pca.variances.iter().all(|v| v.is_finite()));
        let scores = pca.transform(&x, 2).unwrap();
        assert!(scores.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn rejects_single_observation() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        assert!(matches!(
            Pca::fit(&x, PcaOptions::default()),
            Err(PcaError::NotEnoughData)
        ));
    }

    #[test]
    fn rejects_too_many_components() {
        let x = correlated_data();
        let pca = Pca::fit(&x, PcaOptions::default()).unwrap();
        assert!(pca.transform(&x, 3).is_err());
        assert!(pca.loadings(3).is_err());
    }

    #[test]
    fn dominant_variables_sorted_by_absolute_loading() {
        let x = correlated_data();
        let pca = Pca::fit(&x, PcaOptions::default()).unwrap();
        let dom = pca.dominant_variables(0, 2);
        assert_eq!(dom.len(), 2);
        assert!(dom[0].1.abs() >= dom[1].1.abs());
    }

    #[test]
    fn factor_loadings_scale_with_sqrt_variance() {
        let x = correlated_data();
        let pca = Pca::fit(&x, PcaOptions::default()).unwrap();
        let raw = pca.loadings(2).unwrap();
        let fl = pca.factor_loadings(2).unwrap();
        for c in 0..2 {
            let s = pca.variances[c].sqrt();
            for j in 0..2 {
                assert!((fl[(j, c)] - raw[(j, c)] * s).abs() < 1e-12);
            }
        }
    }
}
