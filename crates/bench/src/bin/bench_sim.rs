//! Simulation-throughput trajectory: sequential vs parallel vs memoized.
//!
//! Runs the paper's three profiling sweeps (NW lengths, Reduce6 sizes x
//! block sizes, stencil sizes x sweep counts) three ways — single-threaded
//! with the cache off, launch-parallel with the cache off, and
//! launch-parallel with the memo cache on — timing each and reading the
//! process-wide cache counters. Results land in `BENCH_sim.json` so the
//! speedup and hit rates are tracked as first-class artifacts.
//!
//! Pass `--quick` (or set `BF_QUICK=1`) to shrink the sweeps for smoke
//! runs. Parallel speedup scales with host cores; the report records the
//! host's thread count so a 1-core CI box reporting ~1.0x is legible.

use bf_kernels::reduce::ReduceVariant;
use blackforest::collect::{
    collect_nw, collect_reduce, collect_stencil, paper_nw_lengths, paper_reduce_sweep,
    CollectOptions,
};
use gpu_sim::GpuConfig;
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct SweepPoint {
    sweep: String,
    rows: usize,
    sequential_seconds: f64,
    parallel_seconds: f64,
    cached_seconds: f64,
    parallel_speedup: f64,
    cached_speedup: f64,
    cache_hits: u64,
    cache_misses: u64,
    cache_hit_rate: f64,
    /// Spans this sweep would record with tracing on (counted off the clock).
    trace_spans: u64,
    /// Counter increments this sweep would record with tracing on.
    trace_counter_incs: u64,
    /// Estimated fraction of the sequential wall-clock spent on *disabled*
    /// tracing probes: `ops x per-op cost / sequential_seconds`. Must stay
    /// under 1% — the instrumentation is free when off.
    disabled_trace_overhead: f64,
}

/// Measured per-operation cost of tracing probes while the recorder is off.
struct ProbeCosts {
    span_ns: f64,
    counter_ns: f64,
}

/// Times a disabled `span!` and a disabled `counter!` — each should be one
/// relaxed atomic load. `black_box` keeps the loop from being deleted.
fn measure_probe_costs() -> ProbeCosts {
    assert!(
        !bf_trace::enabled(),
        "probes must be timed with tracing off"
    );
    const ITERS: u64 = 2_000_000;
    let t0 = Instant::now();
    for _ in 0..ITERS {
        std::hint::black_box(bf_trace::span!("overhead_probe"));
    }
    let span_ns = t0.elapsed().as_nanos() as f64 / ITERS as f64;
    let t0 = Instant::now();
    for i in 0..ITERS {
        bf_trace::counter!("overhead_probe", std::hint::black_box(i % 2));
    }
    let counter_ns = t0.elapsed().as_nanos() as f64 / ITERS as f64;
    ProbeCosts {
        span_ns,
        counter_ns,
    }
}

#[derive(Debug, Serialize)]
struct BenchReport {
    benchmark: String,
    host_threads: usize,
    quick: bool,
    points: Vec<SweepPoint>,
}

fn timed(f: &dyn Fn() -> usize) -> (f64, usize) {
    let t0 = Instant::now();
    let rows = f();
    (t0.elapsed().as_secs_f64(), rows)
}

fn run_sweep(name: &str, collect: &dyn Fn() -> usize, probes: &ProbeCosts) -> SweepPoint {
    // Sequential baseline: one worker, no memoization.
    std::env::set_var("RAYON_NUM_THREADS", "1");
    std::env::set_var("BF_SIM_CACHE", "0");
    let (sequential_seconds, rows) = timed(collect);

    // Launch-parallel, still cold every launch.
    std::env::remove_var("RAYON_NUM_THREADS");
    let (parallel_seconds, _) = timed(collect);

    // Launch-parallel with the content-addressed memo cache.
    std::env::remove_var("BF_SIM_CACHE");
    gpu_sim::reset_global_cache_stats();
    let (cached_seconds, _) = timed(collect);
    let stats = gpu_sim::global_cache_stats();

    // Count (off the clock) what the sweep would record with tracing on,
    // then price the disabled probes against the sequential baseline.
    let (_, trace) = bf_trace::capture(collect);
    let trace_spans = trace.spans.len() as u64;
    let trace_counter_incs: u64 = trace.counters.values().sum();
    let probe_ns =
        trace_spans as f64 * probes.span_ns + trace_counter_incs as f64 * probes.counter_ns;
    let disabled_trace_overhead = probe_ns / (sequential_seconds * 1e9);
    assert!(
        disabled_trace_overhead < 0.01,
        "disabled tracing must cost < 1% of the {name} sweep: \
         {trace_spans} spans x {:.2}ns + {trace_counter_incs} counters x {:.2}ns \
         = {:.4}% of {sequential_seconds:.3}s",
        probes.span_ns,
        probes.counter_ns,
        disabled_trace_overhead * 100.0,
    );

    let point = SweepPoint {
        sweep: name.to_string(),
        rows,
        sequential_seconds,
        parallel_seconds,
        cached_seconds,
        parallel_speedup: sequential_seconds / parallel_seconds,
        cached_speedup: sequential_seconds / cached_seconds,
        cache_hits: stats.hits,
        cache_misses: stats.misses,
        cache_hit_rate: stats.hit_rate(),
        trace_spans,
        trace_counter_incs,
        disabled_trace_overhead,
    };
    println!(
        "{name:>9}: seq {sequential_seconds:>7.3}s  par {parallel_seconds:>7.3}s \
         ({:>5.2}x)  cached {cached_seconds:>7.3}s ({:>5.2}x)  \
         hits {}/{} ({:.1}%)  trace-off overhead {:.4}%",
        point.parallel_speedup,
        point.cached_speedup,
        stats.hits,
        stats.hits + stats.misses,
        point.cache_hit_rate * 100.0,
        point.disabled_trace_overhead * 100.0,
    );
    point
}

fn main() {
    if std::env::args().any(|a| a == "--quick") {
        std::env::set_var("BF_QUICK", "1");
    }
    let quick = bf_bench::quick_mode();
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    bf_bench::banner(
        "Bench",
        "Profiling sweep wall-clock: sequential vs parallel vs memoized",
    );
    println!("host threads: {host_threads}  quick: {quick}");

    let gpu = GpuConfig::gtx580();
    // Single repetition, no noise: the timings should measure simulation,
    // not dataset expansion.
    let opts = CollectOptions::default();

    let nw_lengths: Vec<usize> = if quick {
        (1..=8).map(|k| k * 64).collect()
    } else {
        paper_nw_lengths()
    };
    let (reduce_sizes, reduce_threads) = if quick {
        ((14..=16).map(|e| 1usize << e).collect(), vec![64, 256])
    } else {
        paper_reduce_sweep()
    };
    let (stencil_sizes, stencil_sweeps): (Vec<usize>, Vec<usize>) = if quick {
        (vec![64, 128], vec![1, 2, 4])
    } else {
        (vec![64, 128, 256, 512], vec![1, 2, 4, 8])
    };

    let probes = measure_probe_costs();
    println!(
        "disabled probe costs: span {:.2}ns  counter {:.2}ns",
        probes.span_ns, probes.counter_ns
    );

    let points = vec![
        run_sweep(
            "nw",
            &{
                let gpu = gpu.clone();
                let opts = opts.clone();
                move || {
                    collect_nw(&gpu, &nw_lengths, &opts)
                        .expect("collect_nw")
                        .len()
                }
            },
            &probes,
        ),
        run_sweep(
            "reduce",
            &{
                let gpu = gpu.clone();
                let opts = opts.clone();
                move || {
                    collect_reduce(
                        &gpu,
                        ReduceVariant::Reduce6,
                        &reduce_sizes,
                        &reduce_threads,
                        &opts,
                    )
                    .expect("collect_reduce")
                    .len()
                }
            },
            &probes,
        ),
        run_sweep(
            "stencil",
            &{
                let gpu = gpu.clone();
                let opts = opts.clone();
                move || {
                    collect_stencil(&gpu, &stencil_sizes, &stencil_sweeps, &opts)
                        .expect("collect_stencil")
                        .len()
                }
            },
            &probes,
        ),
    ];

    let report = BenchReport {
        benchmark: "sim_sequential_vs_parallel_vs_memoized".to_string(),
        host_threads,
        quick,
        points,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize");
    std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
    println!("wrote BENCH_sim.json");
}
