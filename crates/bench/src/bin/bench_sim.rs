//! Simulation-throughput trajectory: sequential vs parallel vs memoized vs
//! disk-persistent.
//!
//! Runs the paper's three profiling sweeps (NW lengths, Reduce6 sizes x
//! block sizes, stencil sizes x sweep counts) five ways — single-threaded
//! with the cache off, launch-parallel with the cache off, launch-parallel
//! with the in-memory memo cache, and twice against a fresh on-disk cache
//! directory (cold, then warm) — timing each and reading the process-wide
//! cache counters. A per-phase hot-path breakdown (trace walk, coalesce,
//! banks, issue loop) is additionally measured from bf-trace spans, off the
//! clock. Results land in `BENCH_sim.json` so the speedups, hit rates, and
//! phase profile are tracked as first-class artifacts.
//!
//! Pass `--quick` (or set `BF_QUICK=1`) to shrink the sweeps for smoke
//! runs. Parallel speedup scales with host cores; the report records the
//! host's thread count so a 1-core CI box reporting ~1.0x is legible.

use bf_kernels::reduce::ReduceVariant;
use blackforest::collect::{
    collect_nw, collect_reduce, collect_stencil, paper_nw_lengths, paper_reduce_sweep,
    CollectOptions,
};
use gpu_sim::GpuConfig;
use serde::Serialize;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

/// Hot-path span names whose totals form the per-phase breakdown. The
/// compile passes (`trace_walk`, `coalesce`, `banks`) and the dynamic
/// `issue_loop` live in `gpu_sim::soa`; `launch` wraps one whole launch.
const HOT_PHASES: [&str; 5] = ["trace_walk", "coalesce", "banks", "issue_loop", "launch"];

#[derive(Debug, Serialize)]
struct SweepPoint {
    sweep: String,
    rows: usize,
    sequential_seconds: f64,
    parallel_seconds: f64,
    cached_seconds: f64,
    parallel_speedup: f64,
    cached_speedup: f64,
    /// Memoized run against the parallel (cache-off) baseline. On sweeps
    /// with ~0% hit rate (NW: every launch structurally unique) this is the
    /// pure cost of key hashing, asserted to stay near 1.0.
    cached_vs_parallel: f64,
    cache_hits: u64,
    cache_misses: u64,
    cache_hit_rate: f64,
    /// First run against a fresh `BF_SIM_CACHE_DIR` (simulates + persists).
    disk_cold_seconds: f64,
    /// Re-run against the now-populated directory (replays from disk).
    disk_warm_seconds: f64,
    disk_warm_speedup: f64,
    disk_warm_hits: u64,
    disk_warm_hit_rate: f64,
    /// Wall-clock totals per hot-path span, summed over a traced sequential
    /// run (seconds; measured off the clock, see `HOT_PHASES`).
    phase_seconds: BTreeMap<String, f64>,
    /// Spans this sweep would record with tracing on (counted off the clock).
    trace_spans: u64,
    /// Counter increments this sweep would record with tracing on.
    trace_counter_incs: u64,
    /// Estimated fraction of the sequential wall-clock spent on *disabled*
    /// tracing probes: `ops x per-op cost / sequential_seconds`. Must stay
    /// under 1% — the instrumentation is free when off.
    disabled_trace_overhead: f64,
}

/// Measured per-operation cost of tracing probes while the recorder is off.
struct ProbeCosts {
    span_ns: f64,
    counter_ns: f64,
}

/// Times a disabled `span!` and a disabled `counter!` — each should be one
/// relaxed atomic load. `black_box` keeps the loop from being deleted.
fn measure_probe_costs() -> ProbeCosts {
    assert!(
        !bf_trace::enabled(),
        "probes must be timed with tracing off"
    );
    const ITERS: u64 = 2_000_000;
    let t0 = Instant::now();
    for _ in 0..ITERS {
        std::hint::black_box(bf_trace::span!("overhead_probe"));
    }
    let span_ns = t0.elapsed().as_nanos() as f64 / ITERS as f64;
    let t0 = Instant::now();
    for i in 0..ITERS {
        bf_trace::counter!("overhead_probe", std::hint::black_box(i % 2));
    }
    let counter_ns = t0.elapsed().as_nanos() as f64 / ITERS as f64;
    ProbeCosts {
        span_ns,
        counter_ns,
    }
}

#[derive(Debug, Serialize)]
struct BenchReport {
    benchmark: String,
    host_threads: usize,
    quick: bool,
    points: Vec<SweepPoint>,
}

fn timed(f: &dyn Fn() -> usize) -> (f64, usize) {
    let t0 = Instant::now();
    let rows = f();
    (t0.elapsed().as_secs_f64(), rows)
}

/// A throwaway per-sweep cache directory (fresh every invocation).
fn fresh_cache_dir(sweep: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("bf-bench-simcache-{}-{sweep}", std::process::id()));
    drop(std::fs::remove_dir_all(&dir));
    dir
}

fn run_sweep(
    name: &str,
    collect: &dyn Fn() -> usize,
    probes: &ProbeCosts,
    quick: bool,
) -> SweepPoint {
    // Sequential baseline: one worker, no memoization, no disk.
    std::env::remove_var("BF_SIM_CACHE_DIR");
    std::env::set_var("RAYON_NUM_THREADS", "1");
    std::env::set_var("BF_SIM_CACHE", "0");
    let (sequential_seconds, rows) = timed(collect);

    // Launch-parallel, still cold every launch.
    std::env::remove_var("RAYON_NUM_THREADS");
    let (parallel_seconds, _) = timed(collect);

    // Launch-parallel with the content-addressed memo cache.
    std::env::remove_var("BF_SIM_CACHE");
    gpu_sim::reset_global_cache_stats();
    let (cached_seconds, _) = timed(collect);
    let stats = gpu_sim::global_cache_stats();

    // Count (off the clock) what the sweep would record with tracing on,
    // then price the disabled probes against the sequential baseline. The
    // same capture yields the per-phase hot-path breakdown.
    let (_, trace) = bf_trace::capture(collect);
    let trace_spans = trace.spans.len() as u64;
    let trace_counter_incs: u64 = trace.counters.values().sum();
    let mut phase_seconds: BTreeMap<String, f64> =
        HOT_PHASES.iter().map(|p| (p.to_string(), 0.0)).collect();
    for span in &trace.spans {
        if let Some(total) = phase_seconds.get_mut(span.name) {
            *total += span.duration_ns() as f64 / 1e9;
        }
    }
    let probe_ns =
        trace_spans as f64 * probes.span_ns + trace_counter_incs as f64 * probes.counter_ns;
    let disabled_trace_overhead = probe_ns / (sequential_seconds * 1e9);
    assert!(
        disabled_trace_overhead < 0.01,
        "disabled tracing must cost < 1% of the {name} sweep: \
         {trace_spans} spans x {:.2}ns + {trace_counter_incs} counters x {:.2}ns \
         = {:.4}% of {sequential_seconds:.3}s",
        probes.span_ns,
        probes.counter_ns,
        disabled_trace_overhead * 100.0,
    );

    // Persistent disk tier: cold against a fresh directory (simulate +
    // persist), then warm against the same one (replay). The warm pass is
    // where cross-run reuse shows up — including NW, whose launches are
    // structurally unique *within* a run and so never hit the memory tier.
    let dir = fresh_cache_dir(name);
    std::env::set_var("BF_SIM_CACHE_DIR", &dir);
    gpu_sim::reset_global_cache_stats();
    let (disk_cold_seconds, _) = timed(collect);
    gpu_sim::reset_global_cache_stats();
    let (disk_warm_seconds, warm_rows) = timed(collect);
    let warm = gpu_sim::global_cache_stats();
    let warm_disk = gpu_sim::global_disk_cache_stats();
    std::env::remove_var("BF_SIM_CACHE_DIR");
    drop(std::fs::remove_dir_all(&dir));
    assert_eq!(rows, warm_rows, "{name}: disk-warm run changed the dataset");
    assert!(
        warm.hits > 0,
        "{name}: warm disk-cache run must hit ({warm:?})"
    );
    assert!(
        warm_disk.hits > 0,
        "{name}: warm hits must come from the disk tier ({warm_disk:?})"
    );

    // At ~0% hit rate the memoized run pays key hashing for nothing; the
    // incremental hasher keeps that under a few percent of the parallel
    // baseline. Quick sweeps are sub-second, so give timing noise room.
    let cached_vs_parallel = parallel_seconds / cached_seconds;
    let floor = if quick { 0.90 } else { 0.98 };
    if stats.hit_rate() < 0.05 {
        assert!(
            cached_vs_parallel >= floor,
            "{name}: memoization overhead too high at {:.1}% hit rate: \
             cached {cached_seconds:.3}s vs parallel {parallel_seconds:.3}s \
             ({cached_vs_parallel:.3}x < {floor:.2}x)",
            stats.hit_rate() * 100.0,
        );
    }

    let point = SweepPoint {
        sweep: name.to_string(),
        rows,
        sequential_seconds,
        parallel_seconds,
        cached_seconds,
        parallel_speedup: sequential_seconds / parallel_seconds,
        cached_speedup: sequential_seconds / cached_seconds,
        cached_vs_parallel,
        cache_hits: stats.hits,
        cache_misses: stats.misses,
        cache_hit_rate: stats.hit_rate(),
        disk_cold_seconds,
        disk_warm_seconds,
        disk_warm_speedup: disk_cold_seconds / disk_warm_seconds,
        disk_warm_hits: warm.hits,
        disk_warm_hit_rate: warm.hit_rate(),
        phase_seconds,
        trace_spans,
        trace_counter_incs,
        disabled_trace_overhead,
    };
    println!(
        "{name:>9}: seq {sequential_seconds:>7.3}s  par {parallel_seconds:>7.3}s \
         ({:>5.2}x)  cached {cached_seconds:>7.3}s ({:>5.2}x)  \
         hits {}/{} ({:.1}%)  disk cold {disk_cold_seconds:>7.3}s \
         warm {disk_warm_seconds:>7.3}s ({:>5.2}x, {:.1}% hits)  \
         trace-off overhead {:.4}%",
        point.parallel_speedup,
        point.cached_speedup,
        stats.hits,
        stats.hits + stats.misses,
        point.cache_hit_rate * 100.0,
        point.disk_warm_speedup,
        point.disk_warm_hit_rate * 100.0,
        point.disabled_trace_overhead * 100.0,
    );
    println!(
        "           phases: {}",
        point
            .phase_seconds
            .iter()
            .map(|(p, s)| format!("{p} {s:.3}s"))
            .collect::<Vec<_>>()
            .join("  "),
    );
    point
}

fn main() {
    if std::env::args().any(|a| a == "--quick") {
        std::env::set_var("BF_QUICK", "1");
    }
    let quick = bf_bench::quick_mode();
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    bf_bench::banner(
        "Bench",
        "Profiling sweep wall-clock: sequential vs parallel vs memoized",
    );
    println!("host threads: {host_threads}  quick: {quick}");

    let gpu = GpuConfig::gtx580();
    // Single repetition, no noise: the timings should measure simulation,
    // not dataset expansion.
    let opts = CollectOptions::default();

    let nw_lengths: Vec<usize> = if quick {
        (1..=8).map(|k| k * 64).collect()
    } else {
        paper_nw_lengths()
    };
    let (reduce_sizes, reduce_threads) = if quick {
        ((14..=16).map(|e| 1usize << e).collect(), vec![64, 256])
    } else {
        paper_reduce_sweep()
    };
    let (stencil_sizes, stencil_sweeps): (Vec<usize>, Vec<usize>) = if quick {
        (vec![64, 128], vec![1, 2, 4])
    } else {
        (vec![64, 128, 256, 512], vec![1, 2, 4, 8])
    };

    let probes = measure_probe_costs();
    println!(
        "disabled probe costs: span {:.2}ns  counter {:.2}ns",
        probes.span_ns, probes.counter_ns
    );

    let points = vec![
        run_sweep(
            "nw",
            &{
                let gpu = gpu.clone();
                let opts = opts.clone();
                move || {
                    collect_nw(&gpu, &nw_lengths, &opts)
                        .expect("collect_nw")
                        .len()
                }
            },
            &probes,
            quick,
        ),
        run_sweep(
            "reduce",
            &{
                let gpu = gpu.clone();
                let opts = opts.clone();
                move || {
                    collect_reduce(
                        &gpu,
                        ReduceVariant::Reduce6,
                        &reduce_sizes,
                        &reduce_threads,
                        &opts,
                    )
                    .expect("collect_reduce")
                    .len()
                }
            },
            &probes,
            quick,
        ),
        run_sweep(
            "stencil",
            &{
                let gpu = gpu.clone();
                let opts = opts.clone();
                move || {
                    collect_stencil(&gpu, &stencil_sizes, &stencil_sweeps, &opts)
                        .expect("collect_stencil")
                        .len()
                }
            },
            &probes,
            quick,
        ),
    ];

    let report = BenchReport {
        benchmark: "sim_sequential_vs_parallel_vs_memoized".to_string(),
        host_threads,
        quick,
        points,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize");
    std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
    println!("wrote BENCH_sim.json");
}
