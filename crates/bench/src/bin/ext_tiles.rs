//! Extension experiment: block-size tuning via BlackForest.
//!
//! The tile edge of `matrixMul` is a *tunable* problem characteristic. This
//! binary sweeps (size, tile) pairs, lets the forest learn the joint
//! surface, and asks the practical tuning questions: which tile is fastest
//! at large sizes, and which counters explain the difference?

use bf_bench::{banner, figure_collect_options, figure_model_config, quick_mode};
use bf_kernels::matmul::matmul_application_tiled;
use blackforest::collect::collect_matmul_tiles;
use blackforest::model::BlackForestModel;
use blackforest::report;
use gpu_sim::GpuConfig;

fn main() {
    banner(
        "Extension",
        "matrixMul block-size tuning (tile as characteristic)",
    );
    let gpu = GpuConfig::gtx580();
    let tiles = [8usize, 16, 32];

    // Direct timing table.
    println!("time (ms) by size and tile:\n");
    print!("  {:>6}", "size");
    for t in tiles {
        print!(" {:>10}", format!("tile {t}"));
    }
    println!();
    let table_sizes = if quick_mode() {
        vec![128, 512]
    } else {
        vec![128, 512, 1024, 2048]
    };
    for &n in &table_sizes {
        print!("  {n:>6}");
        for &t in &tiles {
            let ms = matmul_application_tiled(n, t)
                .profile(&gpu)
                .unwrap()
                .time_ms;
            print!(" {ms:>10.4}");
        }
        println!();
    }

    // BlackForest on the joint sweep.
    let sweep_sizes: Vec<usize> = if quick_mode() {
        (2..=10).map(|k| k * 32).collect()
    } else {
        (2..=32).step_by(2).map(|k| k * 32).collect()
    };
    let ds = collect_matmul_tiles(&gpu, &sweep_sizes, &tiles, &figure_collect_options())
        .expect("collect");
    let model = BlackForestModel::fit(&ds, &figure_model_config()).expect("fit");
    println!(
        "\njoint (size, tile) model over {} runs: OOB explained variance {:.1}%\n",
        ds.len(),
        model.validation.oob_r_squared * 100.0
    );
    println!("{}", report::importance_chart(&model, 10));
    if let Some(pos) = model.ranking.iter().position(|n| n == "tile") {
        println!(
            "`tile` ranks {}/{} among predictors",
            pos + 1,
            model.ranking.len()
        );
    }
    if let Some(pd) = model.partial_dependence("tile", 3) {
        println!(
            "partial dependence of time on tile: {:?} (corr {:+.2})",
            pd.trend(),
            pd.correlation()
        );
    }
}
