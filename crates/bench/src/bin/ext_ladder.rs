//! Extension experiment: the full reduction optimisation ladder.
//!
//! The paper analyses three of the CUDA SDK's seven reduction kernels; this
//! binary runs BlackForest over *all seven*, reproducing the tutorial's
//! famous speedup ladder and showing how the primary bottleneck category
//! shifts at each optimisation step — the §5 narrative, end to end.

use bf_bench::{banner, figure_collect_options, figure_model_config, reduce_sweep};
use bf_kernels::reduce::{reduce_application, ReduceVariant};
use blackforest::bottleneck::BottleneckReport;
use blackforest::collect::collect_reduce;
use blackforest::model::BlackForestModel;
use gpu_sim::GpuConfig;

fn main() {
    banner("Extension", "The reduce0..reduce6 optimisation ladder");
    let gpu = GpuConfig::gtx580();

    // Part 1: the speedup ladder at a fixed large size (the tutorial's
    // headline table).
    let n = 1 << 22;
    println!("timing ladder at {n} elements, 256 threads/block:\n");
    println!(
        "  {:<8} {:>12} {:>9} {:>12}",
        "kernel", "time (ms)", "speedup", "bandwidth"
    );
    let mut t0 = None;
    for v in ReduceVariant::ALL {
        let run = reduce_application(v, n, 256)
            .profile(&gpu)
            .expect("profile");
        let t = run.time_ms;
        let base = *t0.get_or_insert(t);
        let gbps = (n * 4) as f64 / (t / 1e3) / 1e9;
        println!(
            "  {:<8} {:>12.4} {:>8.2}x {:>9.1} GB/s",
            v.name(),
            t,
            base / t,
            gbps
        );
    }

    // Part 2: the dominant bottleneck per variant from full BlackForest
    // analyses.
    println!("\nprimary bottleneck per variant (BlackForest analysis):\n");
    let (sizes, threads) = reduce_sweep();
    for v in ReduceVariant::ALL {
        let ds =
            collect_reduce(&gpu, v, &sizes, &threads, &figure_collect_options()).expect("collect");
        let model = BlackForestModel::fit(&ds, &figure_model_config()).expect("fit");
        let report = BottleneckReport::analyze(&model, 8);
        let conflicts = ds
            .feature_names
            .iter()
            .any(|f| f == "l1_shared_bank_conflict");
        let divergence = ds
            .column("divergent_branch")
            .map(|c| c.iter().sum::<f64>() > 0.0)
            .unwrap_or(false);
        println!(
            "  {:<8} top counter: {:<26} primary pattern: {:<38} conflicts: {:<3} divergence: {}",
            v.name(),
            report.findings[0].counter,
            report.primary().map(|f| f.category.label()).unwrap_or("-"),
            if conflicts { "yes" } else { "no" },
            if divergence { "yes" } else { "no" },
        );
    }
}
