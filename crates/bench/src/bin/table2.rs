//! Regenerates Table 2: GPU hardware metrics of the training and target
//! cards, exactly the rows the hardware-scaling experiments inject as
//! machine characteristics.

use bf_bench::banner;
use gpu_sim::GpuConfig;

fn main() {
    banner("Table 2", "GPU hardware metrics");
    let gpus = [GpuConfig::gtx480(), GpuConfig::gtx580(), GpuConfig::k20m()];
    let rows = gpus[0].machine_metrics();
    print!("{:<8} {:<28}", "metric", "meaning");
    for g in &gpus {
        print!(" {:>8}", g.name);
    }
    println!();
    println!("{}", "-".repeat(72));
    for (i, row) in rows.iter().enumerate() {
        print!("{:<8} {:<28}", row.name, row.meaning);
        for g in &gpus {
            print!(" {:>8}", g.machine_metrics()[i].value);
        }
        println!();
    }
}
