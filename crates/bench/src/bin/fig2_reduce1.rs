//! Regenerates Figure 2: counters affecting the performance of `reduce1`
//! (interleaved addressing with strided indexing — shared-memory bank
//! conflicts).
//!
//! Paper result: the top features are replay-related
//! (`shared_replay_overhead`, `inst_replay_overhead`, `l2_read_throughput`);
//! PCA produces four components covering >97% of the variance, with the
//! replay counters loading strongly on the MIMD/ILP component.

use bf_bench::{
    banner, figure_collect_options, figure_model_config, print_kernel_analysis, reduce_sweep,
};
use bf_kernels::reduce::ReduceVariant;
use blackforest::collect::collect_reduce;
use blackforest::model::BlackForestModel;
use gpu_sim::GpuConfig;

fn main() {
    banner("Figure 2", "Counters affecting the performance of reduce1");
    let gpu = GpuConfig::gtx580();
    let (sizes, threads) = reduce_sweep();
    let ds = collect_reduce(
        &gpu,
        ReduceVariant::Reduce1,
        &sizes,
        &threads,
        &figure_collect_options(),
    )
    .expect("collection");
    let model = BlackForestModel::fit(&ds, &figure_model_config()).expect("fit");
    print_kernel_analysis(&ds, &model);

    // The paper's headline: the bank-conflict replay counters exist and
    // carry signal for reduce1 (they vanish entirely for reduce2).
    for name in [
        "l1_shared_bank_conflict",
        "shared_replay_overhead",
        "inst_replay_overhead",
    ] {
        if let Some(pos) = model.ranking.iter().position(|n| n == name) {
            println!(
                "replay counter {:<26} rank {:>2}/{} (importance {:.3e})",
                name,
                pos + 1,
                model.ranking.len(),
                model.importance_of(name).unwrap()
            );
        } else {
            println!("replay counter {name} absent (constant over sweep)");
        }
    }
}
