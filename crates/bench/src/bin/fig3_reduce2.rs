//! Regenerates Figure 3: counters affecting the performance of `reduce2`
//! (sequential addressing).
//!
//! Paper result: the most relevant counters all pertain to the memory
//! subsystem (`l1_global_load_miss`, `l2_write_transactions`,
//! `l2_read_transactions`); the most important counter for `reduce1`
//! (shared replay) becomes the least important; PCA yields four components
//! covering >96% variance and the bank-conflict metric vanishes.

use bf_bench::{
    banner, figure_collect_options, figure_model_config, print_kernel_analysis, reduce_sweep,
};
use bf_kernels::reduce::ReduceVariant;
use blackforest::bottleneck::{categorize, BottleneckCategory};
use blackforest::collect::collect_reduce;
use blackforest::model::BlackForestModel;
use gpu_sim::GpuConfig;

fn main() {
    banner("Figure 3", "Counters affecting the performance of reduce2");
    let gpu = GpuConfig::gtx580();
    let (sizes, threads) = reduce_sweep();
    let ds = collect_reduce(
        &gpu,
        ReduceVariant::Reduce2,
        &sizes,
        &threads,
        &figure_collect_options(),
    )
    .expect("collection");
    let model = BlackForestModel::fit(&ds, &figure_model_config()).expect("fit");
    print_kernel_analysis(&ds, &model);

    let missing = !ds
        .feature_names
        .iter()
        .any(|n| n == "l1_shared_bank_conflict");
    println!(
        "bank-conflict metric vanished from the analysis: {}",
        if missing {
            "yes (constant zero over the sweep)"
        } else {
            "NO"
        }
    );
    let mem_top = model
        .ranking
        .iter()
        .take(5)
        .filter(|n| {
            matches!(
                categorize(n),
                BottleneckCategory::MemoryAccessPattern | BottleneckCategory::MemoryBandwidth
            )
        })
        .count();
    println!("memory-subsystem counters among top 5: {mem_top}/5");
}
