//! Hardware-scaling *scope* sweep across the GPU zoo.
//!
//! The paper's §6.2 transfers a model between two fixed GPUs. With ten
//! presets spanning five architecture generations, the interesting axis is
//! *scope*: how wide may the training pool reach around the target before
//! (or while) accuracy degrades? Every zoo GPU takes a turn as the
//! held-out target; three pools are fitted per target — same architecture
//! only, neighbouring generations, the whole zoo — and each is evaluated
//! on the target's test split. The per-scope aggregates form the
//! scope-vs-error curve tracked in `BENCH_hwscale.json` (a text snapshot
//! lives in `results/hwscale.txt`).
//!
//! Pass `--quick` (or set `BF_QUICK=1`) to shrink the sweep and forest for
//! smoke runs. The run fails (non-zero exit) if the sweep does not cover
//! all five architectures, if any scope fails to serve every target, or if
//! any evaluation produces a non-finite error — the structural guarantees
//! CI asserts on.

use blackforest::hwscale::{curve_table, sweep_scopes, HwScaleReport};
use blackforest::model::ModelConfig;
use blackforest::predict::HwFeatureStrategy;
use blackforest::Workload;
use gpu_sim::GpuConfig;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct BenchReport {
    benchmark: String,
    quick: bool,
    host_threads: usize,
    report: HwScaleReport,
}

fn main() {
    if std::env::args().any(|a| a == "--quick") {
        std::env::set_var("BF_QUICK", "1");
    }
    let quick = bf_bench::quick_mode();
    bf_bench::banner(
        "HW-Scale",
        "scope-vs-error curve across the five-generation GPU zoo",
    );
    let zoo = GpuConfig::presets();
    let sizes = bf_bench::matmul_sweep();
    let config = if quick {
        ModelConfig::quick(2016)
    } else {
        ModelConfig {
            seed: 2016,
            ..ModelConfig::default()
        }
    };
    println!(
        "zoo: {}",
        zoo.iter()
            .map(|g| format!("{} ({})", g.name, g.arch.name()))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "workload matrixMul, {} sizes, {} trees, quick: {quick}\n",
        sizes.len(),
        config.n_trees
    );

    let report = sweep_scopes(
        Workload::MatMul,
        &sizes,
        &zoo,
        &config,
        HwFeatureStrategy::MixedImportance,
    )
    .expect("scope sweep");

    print!("{}", curve_table(&report));
    println!();
    println!(
        "{:<16} {:<10} {:<9} {:>8} {:>8} {:>8}  sources",
        "scope", "target", "arch", "MAPE%", "R2", "overlap"
    );
    for e in &report.evaluations {
        println!(
            "{:<16} {:<10} {:<9} {:>8.2} {:>8.3} {:>8.2}  {}",
            e.scope,
            e.target,
            e.target_arch,
            e.mape,
            e.r_squared,
            e.similarity,
            e.sources.join(",")
        );
    }

    // Structural guarantees the artifact is trusted for.
    assert_eq!(
        report.architectures.len(),
        5,
        "zoo must cover all five architectures"
    );
    assert_eq!(report.curve.len(), 3, "curve must have all three scopes");
    for p in &report.curve {
        assert_eq!(
            p.targets,
            zoo.len(),
            "scope {} must serve every zoo target",
            p.scope
        );
        assert!(p.mean_mape.is_finite() && p.mean_r_squared.is_finite());
    }
    for e in &report.evaluations {
        assert!(
            e.mape.is_finite(),
            "non-finite MAPE for {} under {}",
            e.target,
            e.scope
        );
        assert!(
            !e.sources.contains(&e.target),
            "target {} leaked into its own pool",
            e.target
        );
    }

    let bench = BenchReport {
        benchmark: "hwscale_scope_sweep".to_string(),
        quick,
        host_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        report,
    };
    let json = serde_json::to_string_pretty(&bench).expect("serialize");
    std::fs::write("BENCH_hwscale.json", &json).expect("write BENCH_hwscale.json");
    println!("\nwrote BENCH_hwscale.json");
}
