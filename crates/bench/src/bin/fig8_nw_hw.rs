//! Regenerates Figure 8: NW hardware scaling GTX580 → K20m — the case where
//! straightforward transfer breaks.
//!
//! Paper result: (a) on the GTX580, caching counters
//! (`l2_read_transactions`, `l1_global_load_miss`) are among the most
//! influential; (b) on the K20m they are less important or absent (Kepler's
//! larger caches and L1-bypassed loads); the straightforward transfer gives
//! poor predictions, and (c) the workaround — training on a *mixture* of the
//! important variables from both architectures — recovers usable
//! predictions, still worse at small sequence lengths.

use bf_bench::{banner, figure_collect_options, figure_model_config, nw_sweep};
use blackforest::collect::{collect_nw, CollectOptions};
use blackforest::predict::{summarize, HardwareScalingPredictor, HwFeatureStrategy};
use blackforest::report;
use gpu_sim::GpuConfig;

fn main() {
    banner("Figure 8", "NW hardware scaling GTX580 -> K20m");
    let src_gpu = GpuConfig::gtx580();
    let tgt_gpu = GpuConfig::k20m();
    let lengths = nw_sweep();
    let opts = CollectOptions {
        include_machine_metrics: true,
        drop_constant: false,
        ..figure_collect_options()
    };
    let src = collect_nw(&src_gpu, &lengths, &opts).expect("source collection");
    let tgt = collect_nw(&tgt_gpu, &lengths, &opts).expect("target collection");
    let (tgt_train, tgt_test) = tgt.split(0.8, figure_model_config().seed);

    // Fermi-only counters exist in the source schema but not the target's:
    println!(
        "counter-set divergence: l1_global_load_miss on GTX580 {}, on K20m {}",
        src.feature_index("l1_global_load_miss").is_some(),
        tgt.feature_index("l1_global_load_miss").is_some(),
    );

    let naive = HardwareScalingPredictor::fit(
        &src,
        &tgt_train,
        &figure_model_config(),
        HwFeatureStrategy::SourceImportance,
    )
    .expect("fit naive");
    println!(
        "\n(a) top-8 importance on GTX580 : {:?}",
        &naive.source_ranking[..8]
    );
    println!(
        "(b) top-8 importance on K20m   : {:?}",
        &naive.target_ranking[..8]
    );
    println!(
        "ranking similarity (top-{} overlap): {:.0}%",
        naive.features.len(),
        naive.similarity * 100.0
    );

    let naive_points = naive.evaluate(&tgt_test, "size").expect("evaluate naive");
    let ns = summarize(&naive_points);
    println!(
        "\nstraightforward transfer: MSE {:.3}, R^2 {:.3}, MAPE {:.1}%",
        ns.mse, ns.r_squared, ns.mape
    );

    let mixed = HardwareScalingPredictor::fit(
        &src,
        &tgt_train,
        &figure_model_config(),
        HwFeatureStrategy::MixedImportance,
    )
    .expect("fit mixed");
    println!("\n(c) mixed-importance variable set: {:?}", mixed.features);
    let points = mixed.evaluate(&tgt_test, "size").expect("evaluate mixed");
    let thinned: Vec<_> = points
        .iter()
        .step_by(1.max(points.len() / 16))
        .cloned()
        .collect();
    println!("{}", report::prediction_table(&thinned, "size"));
    let ms = summarize(&points);
    println!(
        "mixed-variable transfer: MSE {:.3}, R^2 {:.3}, MAPE {:.1}%",
        ms.mse, ms.r_squared, ms.mape
    );

    // Per-size-band accuracy: the paper sees bad accuracy below ~3700 and
    // improvement with size.
    let mid = 3700.0;
    let (small, large): (Vec<_>, Vec<_>) = points
        .iter()
        .cloned()
        .partition(|p| p.characteristics[0] < mid);
    if !small.is_empty() && !large.is_empty() {
        println!(
            "MAPE below size {mid}: {:.1}% | above: {:.1}%",
            summarize(&small).mape,
            summarize(&large).mape
        );
    }
}
