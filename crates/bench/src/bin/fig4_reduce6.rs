//! Regenerates Figure 4: counters affecting the performance of `reduce6`
//! (grid-stride loop, all optimisations applied).
//!
//! Paper result: memory counters remain the most influential
//! (`gst_request`, `shared_store`, `shared_load` top the ranking) with a
//! strong positive partial dependence, confirming the bandwidth-bound
//! character of the reduction primitive.

use bf_bench::{
    banner, figure_collect_options, figure_model_config, print_kernel_analysis, reduce_sweep,
};
use bf_kernels::reduce::ReduceVariant;
use blackforest::collect::collect_reduce;
use blackforest::model::BlackForestModel;
use gpu_sim::GpuConfig;

fn main() {
    banner("Figure 4", "Counters affecting the performance of reduce6");
    let gpu = GpuConfig::gtx580();
    let (sizes, threads) = reduce_sweep();
    let ds = collect_reduce(
        &gpu,
        ReduceVariant::Reduce6,
        &sizes,
        &threads,
        &figure_collect_options(),
    )
    .expect("collection");
    let model = BlackForestModel::fit(&ds, &figure_model_config()).expect("fit");
    print_kernel_analysis(&ds, &model);

    for name in ["gst_request", "shared_store", "shared_load"] {
        if let Some(pos) = model.ranking.iter().position(|n| n == name) {
            let pd = model.partial_dependence(name, 16).unwrap();
            println!(
                "{:<14} rank {:>2}/{}  partial-dependence corr {:+.2} ({:?})",
                name,
                pos + 1,
                model.ranking.len(),
                pd.correlation(),
                pd.trend()
            );
        }
    }
    // Bandwidth-bound check: achieved load throughput at the largest size
    // approaches the device bandwidth.
    let gld = ds.column("gld_throughput").unwrap();
    let max_tp = gld.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "peak simulated gld_throughput {:.0} GB/s of {:.0} GB/s device bandwidth ({:.0}%)",
        max_tp,
        gpu.mem_bandwidth_gbps,
        100.0 * max_tp / gpu.mem_bandwidth_gbps
    );
}
