//! Serving load benchmark: the legacy blocking thread pool vs the
//! nonblocking event loop, measured with closed-loop, open-loop, and
//! batched-body clients against real loopback sockets.
//!
//! Three scenarios run against each engine ([`ServeMode`]) in-process on an
//! ephemeral port:
//!
//! * **closed** — C concurrent clients, each issuing its next request only
//!   after the previous response (classic closed loop at production
//!   concurrency, C well above the worker count). The event loop serves
//!   all C over persistent keep-alive connections; the legacy pool is
//!   driven connection-per-request because its thread-per-connection
//!   design pins one worker for a keep-alive socket's whole lifetime — at
//!   C > threads, keep-alive clients starve it outright (the pre-rewrite
//!   e2e tests used `Connection: close` for exactly this reason).
//! * **open** — one connection fed at a fixed arrival rate with pipelined
//!   writes, responses drained by a separate reader (open loop; latencies
//!   include queueing delay, immune to coordinated omission).
//! * **batch** — closed loop whose bodies are JSON arrays of B queries
//!   (one HTTP round-trip, one coalesced forest pass per request), at a
//!   concurrency the legacy pool can also serve keep-alive.
//!
//! Queries cycle through many more distinct characteristic vectors than the
//! prediction LRU holds, so the forest does real work on nearly every
//! request instead of the benchmark degenerating into a cache-hit echo
//! test. Results (throughput, p50/p99/p999, error counts, mean forest batch
//! rows) go to `BENCH_serve.json`; the run fails if any transport error
//! occurs or if the event loop does not at least match the legacy pool's
//! closed-loop throughput. `--quick` / `BF_QUICK=1` shrinks the request
//! counts; `--out FILE` redirects the artifact; `--model BUNDLE.json`
//! benchmarks an existing bundle instead of training a quick one.
//!
//! A fourth section exercises the model registry on the event loop: the
//! same closed-loop load in steady state, during continuous live `default`
//! promotions between two bundles (reload under load), and with a shadow
//! model replaying every request. Gates: zero errors in all three, at
//! least one promotion and one replay, and shadow p99 within noise of
//! steady state (the replay must stay off the hot path).

use bf_serve::{
    AliasUpdate, ModelBundle, PredictServer, Registry, ServeConfig, ServeMode, ServerHandle,
};
use blackforest::artifact::write_artifact;
use blackforest::{BlackForest, ModelConfig, Workload};
use gpu_sim::GpuConfig;
use serde::Serialize;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Distinct characteristic vectors the clients cycle through. Much larger
/// than `CACHE_CAPACITY` so most requests miss the LRU and hit the forest.
const QUERY_POOL: usize = 256;
const CACHE_CAPACITY: usize = 16;
/// Server worker threads (both engines).
const SERVER_THREADS: usize = 4;
/// Closed-loop concurrency — deliberately well above `SERVER_THREADS`.
const CLOSED_CLIENTS: usize = 32;
/// Batch-scenario concurrency — within the legacy pool's keep-alive
/// capacity so both engines run the same client discipline.
const BATCH_CLIENTS: usize = 4;
const BATCH_ROWS: usize = 16;

#[derive(Debug, Serialize)]
struct Scenario {
    scenario: String,
    /// Client connection discipline: `keep-alive` or
    /// `connection-per-request`.
    discipline: String,
    requests: u64,
    rows: u64,
    transport_errors: u64,
    non_200: u64,
    elapsed_seconds: f64,
    throughput_rps: f64,
    rows_per_second: f64,
    p50_us: u64,
    p99_us: u64,
    p999_us: u64,
    max_us: u64,
}

#[derive(Debug, Serialize)]
struct ModeReport {
    mode: String,
    /// Mean rows per forest pass, from the server's own batch histogram —
    /// >1 on the event loop means micro-batching actually coalesced.
    mean_forest_batch_rows: f64,
    queue_rejections: u64,
    scenarios: Vec<Scenario>,
}

/// The registry scenarios: the same closed-loop load in steady state, with
/// `default` hot-swapped between two bundles mid-flight, and with a shadow
/// model replaying every request off the hot path.
#[derive(Debug, Serialize)]
struct RegistryReport {
    /// Live alias promotions performed during the reload scenario.
    swaps: u64,
    steady: Scenario,
    reload: Scenario,
    shadow: Scenario,
    /// Reload p99 / steady p99 — swap cost visible to clients.
    reload_p99_ratio: f64,
    /// Shadow p99 / steady p99 — gated: shadow must be off the hot path.
    shadow_p99_ratio: f64,
    /// Requests the shadow engine actually replayed.
    shadow_replayed_requests: u64,
    shadow_mean_rel_delta: f64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    benchmark: String,
    quick: bool,
    query_pool: usize,
    cache_capacity: usize,
    server_threads: usize,
    closed_clients: usize,
    batch_rows: usize,
    open_loop_rate_rps: f64,
    modes: Vec<ModeReport>,
    registry: RegistryReport,
    closed_throughput_speedup: f64,
    closed_p99_speedup: f64,
}

struct Load {
    closed_requests: u64,
    open_requests: u64,
    open_rate_rps: f64,
    batch_requests: u64,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn body_for(query: usize) -> String {
    // [size, threads-per-block] characteristic pairs over a wide range.
    let size = 1024.0 + (query % QUERY_POOL) as f64 * 97.0;
    let threads = [32.0, 64.0, 128.0, 256.0][query % 4];
    format!("{{\"characteristics\": [{size}, {threads}]}}")
}

fn batch_body_for(query: usize) -> String {
    let items: Vec<String> = (0..BATCH_ROWS)
        .map(|k| {
            let size = 1024.0 + ((query * BATCH_ROWS + k) % QUERY_POOL) as f64 * 97.0;
            let threads = [32.0, 64.0, 128.0, 256.0][(query + k) % 4];
            format!("{{\"characteristics\": [{size}, {threads}]}}")
        })
        .collect();
    format!("[{}]", items.join(", "))
}

fn request_bytes(body: &str) -> Vec<u8> {
    format!(
        "POST /predict HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Reads one response off a keep-alive connection; returns its status.
/// `Err` is a transport failure (short read, closed connection, bad frame).
fn read_response(reader: &mut BufReader<TcpStream>) -> Result<u16, String> {
    let mut status = None;
    let mut length = 0usize;
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("connection closed mid-response".into());
        }
        if line == "\r\n" {
            break;
        }
        if status.is_none() {
            status = line.split_whitespace().nth(1).and_then(|v| v.parse().ok());
        }
        if let Some(rest) = line.strip_prefix("Content-Length: ") {
            length = rest.trim().parse().map_err(|_| "bad Content-Length")?;
        }
    }
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body).map_err(|e| e.to_string())?;
    status.ok_or_else(|| "malformed status line".into())
}

struct Tally {
    latencies_us: Vec<u64>,
    transport_errors: u64,
    non_200: u64,
}

/// One request on a fresh connection (`Connection: close`); the measured
/// latency honestly includes the connect, as that is the cost of the
/// discipline.
fn oneshot_request(addr: SocketAddr, body: &str) -> Result<u16, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
    let raw = format!(
        "POST /predict HTTP/1.1\r\nHost: bench\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(raw.as_bytes())
        .map_err(|e| e.to_string())?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| e.to_string())?;
    response
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| "malformed status line".into())
}

/// Closed loop: each client thread waits for its response before sending
/// the next request, over one keep-alive connection or a fresh connection
/// per request.
fn run_closed(
    addr: SocketAddr,
    clients: usize,
    per_client: u64,
    batched: bool,
    keep_alive: bool,
) -> Tally {
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut tally = Tally {
                    latencies_us: Vec::with_capacity(per_client as usize),
                    transport_errors: 0,
                    non_200: 0,
                };
                let mut conn = if keep_alive {
                    match TcpStream::connect(addr) {
                        Ok(stream) => {
                            stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
                            let writer = stream.try_clone().expect("clone stream");
                            Some((writer, BufReader::new(stream)))
                        }
                        Err(_) => {
                            tally.transport_errors += per_client;
                            return tally;
                        }
                    }
                } else {
                    None
                };
                for i in 0..per_client {
                    let query = c + i as usize * clients;
                    let body = if batched {
                        batch_body_for(query)
                    } else {
                        body_for(query)
                    };
                    let t0 = Instant::now();
                    let outcome = match &mut conn {
                        Some((writer, reader)) => {
                            if writer.write_all(&request_bytes(&body)).is_err() {
                                Err("write failed".to_string())
                            } else {
                                read_response(reader)
                            }
                        }
                        None => oneshot_request(addr, &body),
                    };
                    match outcome {
                        Ok(200) => tally.latencies_us.push(t0.elapsed().as_micros() as u64),
                        Ok(_) => tally.non_200 += 1,
                        Err(_) => {
                            tally.transport_errors += 1;
                            if conn.is_some() {
                                break; // keep-alive stream is unusable now
                            }
                        }
                    }
                }
                tally
            })
        })
        .collect();
    let mut total = Tally {
        latencies_us: Vec::new(),
        transport_errors: 0,
        non_200: 0,
    };
    for h in handles {
        let t = h.join().expect("client thread");
        total.latencies_us.extend(t.latencies_us);
        total.transport_errors += t.transport_errors;
        total.non_200 += t.non_200;
    }
    total
}

/// Open loop: a writer pipelines requests at a fixed arrival rate on one
/// connection; a reader drains responses in order and measures latency
/// from the *scheduled* send time (no coordinated omission).
fn run_open(addr: SocketAddr, requests: u64, rate_rps: f64) -> Tally {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let sends: Arc<Mutex<VecDeque<Instant>>> = Arc::new(Mutex::new(VecDeque::new()));

    let reader_sends = Arc::clone(&sends);
    let reader_handle = std::thread::spawn(move || {
        let mut tally = Tally {
            latencies_us: Vec::with_capacity(requests as usize),
            transport_errors: 0,
            non_200: 0,
        };
        for _ in 0..requests {
            let sent = loop {
                // The writer enqueues the timestamp before the bytes, so a
                // response can never beat its own send record.
                match reader_sends.lock().unwrap().pop_front() {
                    Some(t) => break t,
                    None => std::thread::sleep(Duration::from_micros(50)),
                }
            };
            match read_response(&mut reader) {
                Ok(200) => tally.latencies_us.push(sent.elapsed().as_micros() as u64),
                Ok(_) => tally.non_200 += 1,
                Err(_) => {
                    tally.transport_errors += requests - tally.latencies_us.len() as u64;
                    break;
                }
            }
        }
        tally
    });

    let interval = Duration::from_secs_f64(1.0 / rate_rps);
    let start = Instant::now();
    for i in 0..requests {
        let due = start + interval.mul_f64(i as f64);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        sends.lock().unwrap().push_back(due.max(now));
        if writer
            .write_all(&request_bytes(&body_for(i as usize)))
            .is_err()
        {
            break;
        }
    }
    reader_handle.join().expect("reader thread")
}

fn scrape_metrics(addr: SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n")
        .expect("write metrics request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read metrics");
    response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default()
}

fn metric(text: &str, needle: &str) -> u64 {
    text.lines()
        .find(|l| l.starts_with(needle))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn summarize(
    scenario: &str,
    discipline: &str,
    rows_per_request: u64,
    elapsed: Duration,
    mut tally: Tally,
) -> Scenario {
    tally.latencies_us.sort_unstable();
    let requests = tally.latencies_us.len() as u64;
    let elapsed_seconds = elapsed.as_secs_f64().max(1e-9);
    let throughput_rps = requests as f64 / elapsed_seconds;
    Scenario {
        scenario: scenario.to_string(),
        discipline: discipline.to_string(),
        requests,
        rows: requests * rows_per_request,
        transport_errors: tally.transport_errors,
        non_200: tally.non_200,
        elapsed_seconds,
        throughput_rps,
        rows_per_second: throughput_rps * rows_per_request as f64,
        p50_us: percentile(&tally.latencies_us, 0.50),
        p99_us: percentile(&tally.latencies_us, 0.99),
        p999_us: percentile(&tally.latencies_us, 0.999),
        max_us: tally.latencies_us.last().copied().unwrap_or(0),
    }
}

fn bench_mode(bundle: &ModelBundle, mode: ServeMode, load: &Load) -> ModeReport {
    let server = PredictServer::bind(
        "127.0.0.1:0",
        bundle.clone(),
        ServeConfig {
            threads: SERVER_THREADS,
            cache_capacity: CACHE_CAPACITY,
            mode,
            ..ServeConfig::default()
        },
    )
    .expect("bind benchmark server");
    let (handle, join): (ServerHandle, _) = server.spawn();
    let addr = handle.addr();

    // The legacy pool cannot serve more keep-alive connections than it has
    // threads (each one pins a worker), so at production concurrency it is
    // driven connection-per-request — exactly how the pre-rewrite tests
    // drove it.
    let keep_alive = matches!(mode, ServeMode::EventLoop);
    let discipline = if keep_alive {
        "keep-alive"
    } else {
        "connection-per-request"
    };

    // Warm up sockets and code paths outside the measured window.
    run_closed(addr, 1, 20, false, keep_alive);

    let mut scenarios = Vec::new();
    let t0 = Instant::now();
    let per_client = load.closed_requests / CLOSED_CLIENTS as u64;
    let tally = run_closed(addr, CLOSED_CLIENTS, per_client, false, keep_alive);
    scenarios.push(summarize("closed", discipline, 1, t0.elapsed(), tally));

    let t0 = Instant::now();
    let tally = run_open(addr, load.open_requests, load.open_rate_rps);
    scenarios.push(summarize("open", "keep-alive", 1, t0.elapsed(), tally));

    let t0 = Instant::now();
    let per_client = load.batch_requests / BATCH_CLIENTS as u64;
    let tally = run_closed(addr, BATCH_CLIENTS, per_client, true, true);
    scenarios.push(summarize(
        "batch",
        "keep-alive",
        BATCH_ROWS as u64,
        t0.elapsed(),
        tally,
    ));

    let metrics = scrape_metrics(addr);
    let batch_count = metric(&metrics, "bf_predict_batch_rows_count");
    let batch_sum = metric(&metrics, "bf_predict_batch_rows_sum");
    let mean_forest_batch_rows = if batch_count > 0 {
        batch_sum as f64 / batch_count as f64
    } else {
        0.0
    };
    let queue_rejections = metric(&metrics, "bf_queue_rejections_total");

    handle.stop();
    join.join().expect("server thread exits");

    for s in &scenarios {
        println!(
            "  {:>6} [{}]: {:>7} req  {:>9.1} req/s  {:>9.1} rows/s  \
             p50 {:>6}us  p99 {:>7}us  p99.9 {:>7}us  errors {}",
            s.scenario,
            mode.name(),
            s.requests,
            s.throughput_rps,
            s.rows_per_second,
            s.p50_us,
            s.p99_us,
            s.p999_us,
            s.transport_errors + s.non_200,
        );
    }
    ModeReport {
        mode: mode.name().to_string(),
        mean_forest_batch_rows,
        queue_rejections,
        scenarios,
    }
}

/// Benchmarks the registry path on the event loop: identical closed-loop
/// load in steady state, during continuous live alias promotion between
/// two bundles, and with a shadow model attached. Swaps go through the
/// same `set_alias` path the admin API uses.
fn bench_registry(a: &ModelBundle, b: &ModelBundle, load: &Load) -> RegistryReport {
    let registry = Arc::new(Registry::new());
    let id_a = registry.load_bundle(a.clone()).expect("load bundle a");
    let id_b = registry.load_bundle(b.clone()).expect("load bundle b");
    registry
        .set_alias(AliasUpdate {
            alias: "default".into(),
            id: Some(id_a),
            create: true,
            ..AliasUpdate::default()
        })
        .expect("publish default");
    let server = PredictServer::bind_registry(
        "127.0.0.1:0",
        Arc::clone(&registry),
        ServeConfig {
            threads: SERVER_THREADS,
            cache_capacity: CACHE_CAPACITY,
            mode: ServeMode::EventLoop,
            ..ServeConfig::default()
        },
    )
    .expect("bind registry benchmark server");
    let (handle, join): (ServerHandle, _) = server.spawn();
    let addr = handle.addr();
    let per_client = (load.closed_requests / 2).max(CLOSED_CLIENTS as u64) / CLOSED_CLIENTS as u64;

    // Warm up sockets and both compiled forests outside the measured window.
    run_closed(addr, 1, 20, false, true);

    let t0 = Instant::now();
    let tally = run_closed(addr, CLOSED_CLIENTS, per_client, false, true);
    let steady = summarize("registry-steady", "keep-alive", 1, t0.elapsed(), tally);

    // Reload under load: a swapper thread promotes `default` back and
    // forth for the whole measured window.
    let stop = Arc::new(AtomicBool::new(false));
    let swapper = {
        let registry = Arc::clone(&registry);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut swaps = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let id = if swaps.is_multiple_of(2) { id_b } else { id_a };
                registry
                    .set_alias(AliasUpdate {
                        alias: "default".into(),
                        id: Some(id),
                        ..AliasUpdate::default()
                    })
                    .expect("live promotion");
                swaps += 1;
                std::thread::sleep(Duration::from_millis(10));
            }
            swaps
        })
    };
    let t0 = Instant::now();
    let tally = run_closed(addr, CLOSED_CLIENTS, per_client, false, true);
    let reload = summarize("registry-reload", "keep-alive", 1, t0.elapsed(), tally);
    stop.store(true, Ordering::Relaxed);
    let swaps = swapper.join().expect("swapper thread");

    // Shadow replay: pin default back to a, attach b as its shadow, and
    // re-run the steady load. The replay happens on the shadow thread;
    // the client-visible p99 must not move materially.
    registry
        .set_alias(AliasUpdate {
            alias: "default".into(),
            id: Some(id_a),
            shadow: Some(id_b),
            ..AliasUpdate::default()
        })
        .expect("attach shadow");
    let t0 = Instant::now();
    let tally = run_closed(addr, CLOSED_CLIENTS, per_client, false, true);
    let shadow = summarize("registry-shadow", "keep-alive", 1, t0.elapsed(), tally);
    let shadow_report = registry.shadow_report();

    handle.stop();
    join.join().expect("server thread exits");

    for s in [&steady, &reload, &shadow] {
        println!(
            "  {:>15}: {:>7} req  {:>9.1} req/s  p50 {:>6}us  p99 {:>7}us  errors {}",
            s.scenario,
            s.requests,
            s.throughput_rps,
            s.p50_us,
            s.p99_us,
            s.transport_errors + s.non_200,
        );
    }
    println!(
        "  {swaps} live promotions; shadow replayed {} requests (mean rel delta {:.4})",
        shadow_report.requests, shadow_report.mean_rel_delta
    );
    RegistryReport {
        swaps,
        reload_p99_ratio: reload.p99_us as f64 / steady.p99_us.max(1) as f64,
        shadow_p99_ratio: shadow.p99_us as f64 / steady.p99_us.max(1) as f64,
        steady,
        reload,
        shadow,
        shadow_replayed_requests: shadow_report.requests,
        shadow_mean_rel_delta: shadow_report.mean_rel_delta,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = bf_bench::quick_mode();
    let mut out = PathBuf::from("BENCH_serve.json");
    let mut model: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => quick = true,
            "--out" => out = PathBuf::from(it.next().expect("--out needs a value")),
            "--model" => model = Some(PathBuf::from(it.next().expect("--model needs a value"))),
            other => panic!("unknown option {other}; usage: bench_serve [--quick] [--out FILE] [--model BUNDLE.json]"),
        }
    }

    bf_bench::banner(
        "Bench",
        "Serving throughput/latency: blocking pool vs event loop",
    );
    let train_quick = |seed: u64| -> ModelBundle {
        let gpu = GpuConfig::gtx580();
        let bf = BlackForest::new(gpu.clone()).with_config(ModelConfig::quick(seed));
        let sizes: Vec<usize> = (12..=15).map(|e| 1usize << e).collect();
        let report = bf
            .analyze(
                Workload::Reduce(bf_kernels::reduce::ReduceVariant::Reduce1),
                &sizes,
            )
            .expect("train quick bundle");
        ModelBundle::from_report(&report, &gpu, &sizes, true)
    };
    // The registry scenarios hot-swap between two models, which must share
    // a characteristic schema and GPU fingerprint — so that pair is always
    // a freshly trained quick duo; --model only drives the engine
    // comparison.
    let (bundle, pair_a, pair_b) = match model {
        Some(path) => {
            let loaded = ModelBundle::load(&path).expect("load --model bundle");
            println!("training a quick reduce1 pair for the registry scenarios...");
            (loaded, train_quick(81), train_quick(82))
        }
        None => {
            println!("training a quick reduce1 pair for the benchmark...");
            let a = train_quick(81);
            let b = train_quick(82);
            (a.clone(), a, b)
        }
    };

    let load = if quick {
        Load {
            closed_requests: 800,
            open_requests: 400,
            open_rate_rps: 400.0,
            batch_requests: 200,
        }
    } else {
        Load {
            closed_requests: 8_000,
            open_requests: 4_000,
            open_rate_rps: 1_000.0,
            batch_requests: 1_000,
        }
    };

    let modes = vec![
        bench_mode(&bundle, ServeMode::Threads, &load),
        bench_mode(&bundle, ServeMode::EventLoop, &load),
    ];
    println!("registry scenarios (event loop):");
    let registry = bench_registry(&pair_a, &pair_b, &load);

    // Hard gates: a load test with transport errors measured a broken
    // server, and the event loop must not regress closed-loop throughput.
    for m in &modes {
        for s in &m.scenarios {
            assert_eq!(
                s.transport_errors, 0,
                "{} [{}]: transport errors under load",
                s.scenario, m.mode
            );
            assert_eq!(
                s.non_200, 0,
                "{} [{}]: non-200 responses",
                s.scenario, m.mode
            );
        }
    }
    // Registry gates: hot reload and shadow replay must be invisible as
    // errors, the swapper must actually have swapped, the shadow must
    // actually have replayed — and shadowing must stay off the hot path:
    // its p99 may not exceed steady state beyond measurement noise.
    for s in [&registry.steady, &registry.reload, &registry.shadow] {
        assert_eq!(s.transport_errors, 0, "{}: transport errors", s.scenario);
        assert_eq!(s.non_200, 0, "{}: non-200 responses", s.scenario);
    }
    assert!(
        registry.swaps > 0,
        "reload scenario performed no promotions"
    );
    assert!(
        registry.shadow_replayed_requests > 0,
        "shadow scenario replayed nothing"
    );
    let steady_p99 = registry.steady.p99_us as f64;
    let shadow_p99 = registry.shadow.p99_us as f64;
    assert!(
        shadow_p99 <= (steady_p99 * 2.0).max(steady_p99 + 2_000.0),
        "shadow replay regressed p99: {shadow_p99}us vs steady {steady_p99}us"
    );
    let closed = |m: &ModeReport| {
        m.scenarios
            .iter()
            .find(|s| s.scenario == "closed")
            .expect("closed scenario")
            .clone_numbers()
    };
    let (legacy_rps, legacy_p99) = closed(&modes[0]);
    let (event_rps, event_p99) = closed(&modes[1]);
    assert!(
        event_rps >= legacy_rps,
        "event loop ({event_rps:.1} rps) must not trail the legacy pool ({legacy_rps:.1} rps)"
    );

    let report = BenchReport {
        benchmark: "serve_load_legacy_vs_event_loop".to_string(),
        quick,
        query_pool: QUERY_POOL,
        cache_capacity: CACHE_CAPACITY,
        server_threads: SERVER_THREADS,
        closed_clients: CLOSED_CLIENTS,
        batch_rows: BATCH_ROWS,
        open_loop_rate_rps: load.open_rate_rps,
        modes,
        registry,
        closed_throughput_speedup: event_rps / legacy_rps,
        closed_p99_speedup: legacy_p99 / event_p99.max(1.0),
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize");
    write_artifact(&out, &json).expect("write benchmark artifact");
    println!(
        "closed-loop speedup: {:.2}x throughput, {:.2}x p99; wrote {}",
        report.closed_throughput_speedup,
        report.closed_p99_speedup,
        out.display()
    );
}

impl Scenario {
    fn clone_numbers(&self) -> (f64, f64) {
        (self.throughput_rps, self.p99_us as f64)
    }
}
