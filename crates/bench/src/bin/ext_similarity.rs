//! Extension experiment (paper §7): the hardware-similarity test.
//!
//! "We plan to tackle this problem by designing a 'similarity' test to
//! determine platforms that can be used for hardware scalability."
//!
//! For every ordered GPU pair, this binary computes the top-k importance
//! overlap (the [`HardwareScalingPredictor::similarity`] score) for MM and
//! NW and reports the resulting similarity matrices. Expectation, matching
//! §6.2: same-generation pairs (GTX480↔GTX580, GTX680↔K20m) score high;
//! cross-generation NW pairs score lower than cross-generation MM pairs
//! (caching counters shift on Kepler).

use bf_bench::{banner, figure_collect_options, figure_model_config, matmul_sweep, quick_mode};
use blackforest::collect::{collect_matmul, collect_nw, CollectOptions};
use blackforest::predict::{HardwareScalingPredictor, HwFeatureStrategy};
use blackforest::Dataset;
use gpu_sim::GpuConfig;

fn collect_all(gpus: &[GpuConfig], workload: &str) -> Vec<Dataset> {
    let opts = CollectOptions {
        include_machine_metrics: true,
        drop_constant: false,
        ..figure_collect_options()
    };
    gpus.iter()
        .map(|g| match workload {
            "matmul" => collect_matmul(g, &matmul_sweep(), &opts).expect("collect"),
            _ => {
                let lengths: Vec<usize> = if quick_mode() {
                    (1..=12).map(|k| k * 64).collect()
                } else {
                    (1..=40).map(|k| k * 64).collect()
                };
                collect_nw(g, &lengths, &opts).expect("collect")
            }
        })
        .collect()
}

fn similarity_matrix(gpus: &[GpuConfig], datasets: &[Dataset]) -> Vec<Vec<f64>> {
    let cfg = figure_model_config();
    let mut m = vec![vec![1.0; gpus.len()]; gpus.len()];
    for (i, src) in datasets.iter().enumerate() {
        for (j, tgt) in datasets.iter().enumerate() {
            if i == j {
                continue;
            }
            let (tgt_train, _) = tgt.split(0.8, cfg.seed);
            let hw = HardwareScalingPredictor::fit(
                src,
                &tgt_train,
                &cfg,
                HwFeatureStrategy::SourceImportance,
            )
            .expect("fit");
            // Average the two views: top-k overlap and Spearman of the
            // full ranking (mapped from [-1,1] to [0,1]).
            m[i][j] = 0.5 * hw.similarity + 0.5 * (0.5 + 0.5 * hw.rank_correlation);
        }
    }
    m
}

fn print_matrix(gpus: &[GpuConfig], m: &[Vec<f64>]) {
    print!("{:>10}", "");
    for g in gpus {
        print!("{:>9}", g.name);
    }
    println!();
    for (i, g) in gpus.iter().enumerate() {
        print!("{:>10}", g.name);
        for v in &m[i][..gpus.len()] {
            print!("{v:>9.2}");
        }
        println!();
    }
}

fn main() {
    banner(
        "Extension",
        "Hardware-similarity test across GPU pairs (paper §7)",
    );
    let gpus = GpuConfig::presets();
    for workload in ["matmul", "nw"] {
        println!(
            "\n--- {workload}: top-{} importance-ranking overlap ---",
            figure_model_config().top_k
        );
        let datasets = collect_all(&gpus, workload);
        let m = similarity_matrix(&gpus, &datasets);
        print_matrix(&gpus, &m);
        // Aggregate the §6.2 expectation: same-generation overlap should
        // beat cross-generation overlap.
        let gen = |g: &GpuConfig| g.arch;
        let mut same = (0.0, 0usize);
        let mut cross = (0.0, 0usize);
        for i in 0..gpus.len() {
            for j in 0..gpus.len() {
                if i == j {
                    continue;
                }
                if gen(&gpus[i]) == gen(&gpus[j]) {
                    same = (same.0 + m[i][j], same.1 + 1);
                } else {
                    cross = (cross.0 + m[i][j], cross.1 + 1);
                }
            }
        }
        println!(
            "mean same-generation similarity {:.2}, cross-generation {:.2}",
            same.0 / same.1 as f64,
            cross.0 / cross.1 as f64
        );
    }
}
