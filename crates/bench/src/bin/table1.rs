//! Regenerates Table 1: the performance counters used in the study, with
//! their meanings and per-architecture availability across the zoo.

use bf_bench::banner;
use gpu_sim::counters::COUNTER_CATALOG;
use gpu_sim::GpuArchitecture;

fn main() {
    banner("Table 1", "Performance counters used in this study");
    let archs = GpuArchitecture::all();
    print!("{:<28}", "counter");
    for a in archs {
        print!(" {:<8}", a.name());
    }
    println!(" meaning");
    println!("{}", "-".repeat(118));
    for c in COUNTER_CATALOG {
        print!("{:<28}", c.name);
        for a in archs {
            print!(" {:<8}", if c.on(a) { "yes" } else { "-" });
        }
        println!(" {}", c.meaning);
    }
    println!();
    print!("{} counters total;", COUNTER_CATALOG.len());
    for a in archs {
        let n = COUNTER_CATALOG.iter().filter(|c| c.on(a)).count();
        print!(" {} on {},", n, a.name());
    }
    println!(
        " {} on every architecture",
        COUNTER_CATALOG
            .iter()
            .filter(|c| archs.iter().all(|&a| c.on(a)))
            .count()
    );
}
