//! Regenerates Table 1: the performance counters used in the study, with
//! their meanings and per-architecture availability.

use bf_bench::banner;
use gpu_sim::counters::COUNTER_CATALOG;

fn main() {
    banner("Table 1", "Performance counters used in this study");
    println!("{:<28} {:<6} {:<7} meaning", "counter", "fermi", "kepler");
    println!("{}", "-".repeat(100));
    for c in COUNTER_CATALOG {
        println!(
            "{:<28} {:<6} {:<7} {}",
            c.name,
            if c.on_fermi { "yes" } else { "-" },
            if c.on_kepler { "yes" } else { "-" },
            c.meaning
        );
    }
    println!();
    println!(
        "{} counters total; {} Fermi-only, {} Kepler-only",
        COUNTER_CATALOG.len(),
        COUNTER_CATALOG
            .iter()
            .filter(|c| c.on_fermi && !c.on_kepler)
            .count(),
        COUNTER_CATALOG
            .iter()
            .filter(|c| !c.on_fermi && c.on_kepler)
            .count(),
    );
}
