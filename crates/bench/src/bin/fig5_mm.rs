//! Regenerates Figure 5: characterization and prediction of matrix multiply.
//!
//! Paper result: (a) global-store-throughput and occupancy counters top the
//! importance ranking; (b) problem-scaling predictions on unseen sizes match
//! measurements (average MSE 3.2, 98% explained variance); (c) GLM counter
//! models have low residual deviance (0–2.7) except `inst_replay_overhead`
//! (≈203), whose poor fit visibly affects predictions.

use bf_bench::{banner, figure_collect_options, figure_model_config, matmul_sweep};
use blackforest::collect::collect_matmul;
use blackforest::countermodel::ModelStrategy;
use blackforest::predict::{summarize, ProblemScalingPredictor};
use blackforest::report;
use gpu_sim::GpuConfig;

fn main() {
    banner("Figure 5", "Characterization and prediction of MM");
    let gpu = GpuConfig::gtx580();
    let sizes = matmul_sweep();
    println!(
        "sweep: {} sizes from {} to {}",
        sizes.len(),
        sizes[0],
        sizes[sizes.len() - 1]
    );
    let ds = collect_matmul(&gpu, &sizes, &figure_collect_options()).expect("collection");
    // The paper prefers GLMs for trivial relations and MARS otherwise
    // (§4.2 "Results interpretation"); Auto applies exactly that rule per
    // counter.
    let predictor =
        ProblemScalingPredictor::fit(&ds, &figure_model_config(), &["size"], ModelStrategy::Auto)
            .expect("fit");
    let model = &predictor.model;

    println!("\n(a) {}", report::importance_chart(model, 10));

    println!("(b) prediction of unseen sizes (held-out 20%):");
    let points = predictor.evaluate_holdout().expect("holdout");
    println!("{}", report::prediction_table(&points, "size"));
    let s = summarize(&points);
    println!(
        "forest validation: test MSE {:.3}, OOB explained variance {:.1}%; chain MSE {:.3}, R^2 {:.3}",
        model.validation.mse,
        model.validation.oob_r_squared * 100.0,
        s.mse,
        s.r_squared
    );

    println!("\n(c) GLM counter models (size -> counter):");
    println!(
        "  {:<28} {:<8} {:>10} {:>14}",
        "counter", "family", "R^2", "mean resid dev"
    );
    for m in &predictor.counters.models {
        println!(
            "  {:<28} {:<8} {:>10.4} {:>14.4}",
            m.counter,
            m.family(),
            m.r_squared,
            m.mean_residual_deviance
        );
    }
    if let Some(worst) = predictor.counters.worst_fit() {
        println!(
            "worst-modelled counter: {} (R^2 {:.3}) — the paper's analogue is inst_replay_overhead",
            worst.counter, worst.r_squared
        );
    }

    println!("\ncounter-model curves (measured vs model, the 5c series):");
    bf_bench::print_counter_model_series(&predictor, &ds, "size", 8);
}
