//! Regenerates Figure 6: characterization and prediction of
//! Needleman-Wunsch.
//!
//! Paper result: (a) `achieved_occupancy` and `size` are the most
//! influential predictors, followed by a band of near-equal memory
//! throughput metrics; (b) predictions of unseen sequence lengths are very
//! accurate (forest MSE ≈ 0, 99% explained variance); (c) the counter models
//! need MARS (`earth`), reaching an average R² of 0.99.

use bf_bench::{banner, figure_collect_options, figure_model_config, nw_sweep};
use blackforest::collect::collect_nw;
use blackforest::countermodel::ModelStrategy;
use blackforest::predict::{summarize, ProblemScalingPredictor};
use blackforest::report;
use gpu_sim::GpuConfig;

fn main() {
    banner("Figure 6", "Characterization and prediction of NW");
    let gpu = GpuConfig::gtx580();
    let lengths = nw_sweep();
    println!(
        "sweep: {} sequence lengths from {} to {}",
        lengths.len(),
        lengths[0],
        lengths[lengths.len() - 1]
    );
    let ds = collect_nw(&gpu, &lengths, &figure_collect_options()).expect("collection");
    let predictor = ProblemScalingPredictor::fit(
        &ds,
        &figure_model_config(),
        &["size"],
        ModelStrategy::Mars, // the paper uses earth (MARS) for NW
    )
    .expect("fit");
    let model = &predictor.model;

    println!("\n(a) {}", report::importance_chart(model, 12));
    for name in ["achieved_occupancy", "size", "l1_global_load_miss"] {
        if let Some(pos) = model.ranking.iter().position(|n| n == name) {
            println!("  {name}: rank {}/{}", pos + 1, model.ranking.len());
        }
    }

    println!("\n(b) prediction of unseen sequence lengths (held-out 20%):");
    let points = predictor.evaluate_holdout().expect("holdout");
    // Print every 4th row to keep the table readable at 129 lengths.
    let thinned: Vec<_> = points
        .iter()
        .step_by(4.max(points.len() / 16))
        .cloned()
        .collect();
    println!("{}", report::prediction_table(&thinned, "size"));
    let s = summarize(&points);
    println!(
        "full holdout: chain MSE {:.4}, R^2 {:.4}; forest OOB explained variance {:.1}%",
        s.mse,
        s.r_squared,
        model.validation.oob_r_squared * 100.0
    );

    println!("\n(c) MARS counter models (size -> counter):");
    println!("  {:<28} {:<8} {:>10}", "counter", "family", "R^2");
    for m in &predictor.counters.models {
        println!(
            "  {:<28} {:<8} {:>10.4}",
            m.counter,
            m.family(),
            m.r_squared
        );
    }
    println!(
        "average counter-model R^2: {:.4} (paper: 0.99 with earth)",
        predictor.counters.mean_r_squared()
    );

    println!("\ncounter-model curves (measured vs model, the 6c series):");
    bf_bench::print_counter_model_series(&predictor, &ds, "size", 8);
}
