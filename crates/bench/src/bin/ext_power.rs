//! Extension experiment (paper §7): power draw as the response variable.
//!
//! "We also note that our method is not limited to predicting execution
//! time — one could use other metrics of interest, such as power, as
//! response variable. ... one can then both assess the power consumption
//! behavior of the different functional units and of the application, and
//! predict that for unseen problem sizes."
//!
//! This binary runs the full BlackForest pipeline with average power (from
//! the simulator's event-energy model, standing in for the Kepler SMI
//! reading) as the response, for both MM and NW on the K20m.

use bf_bench::{banner, figure_model_config, matmul_sweep, nw_sweep, quick_mode};
use blackforest::collect::{collect_matmul, collect_nw, CollectOptions, ResponseMetric};
use blackforest::countermodel::ModelStrategy;
use blackforest::predict::{summarize, ProblemScalingPredictor};
use blackforest::report;
use gpu_sim::GpuConfig;

fn main() {
    banner(
        "Extension",
        "Power draw as the response variable (paper §7)",
    );
    let gpu = GpuConfig::k20m(); // §7 names Kepler's SMI power readout
    let opts = CollectOptions {
        response: ResponseMetric::AvgPowerW,
        ..CollectOptions::default().with_repetitions(3, 0.02)
    };

    println!("--- matrixMul, power response ---");
    let mm = collect_matmul(&gpu, &matmul_sweep(), &opts).expect("collect mm");
    let p =
        ProblemScalingPredictor::fit(&mm, &figure_model_config(), &["size"], ModelStrategy::Auto)
            .expect("fit mm");
    println!(
        "power range: {:.1}..{:.1} W; forest OOB explained variance {:.1}%",
        mm.response.iter().cloned().fold(f64::INFINITY, f64::min),
        mm.response
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max),
        p.model.validation.oob_r_squared * 100.0
    );
    println!("{}", report::importance_chart(&p.model, 8));
    let s = summarize(&p.evaluate_holdout().expect("holdout"));
    println!(
        "power prediction on unseen sizes: R^2 {:.3}, MAPE {:.1}%\n",
        s.r_squared, s.mape
    );

    println!("--- needle (NW), power response ---");
    let lengths = if quick_mode() {
        nw_sweep()
    } else {
        (1..=64).map(|k| k * 64).collect()
    };
    let nw = collect_nw(&gpu, &lengths, &opts).expect("collect nw");
    let p =
        ProblemScalingPredictor::fit(&nw, &figure_model_config(), &["size"], ModelStrategy::Mars)
            .expect("fit nw");
    println!(
        "power range: {:.1}..{:.1} W; forest OOB explained variance {:.1}%",
        nw.response.iter().cloned().fold(f64::INFINITY, f64::min),
        nw.response
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max),
        p.model.validation.oob_r_squared * 100.0
    );
    println!("{}", report::importance_chart(&p.model, 8));
    let s = summarize(&p.evaluate_holdout().expect("holdout"));
    println!(
        "power prediction on unseen lengths: R^2 {:.3}, MAPE {:.1}%",
        s.r_squared, s.mape
    );
}
