//! Regenerates Figure 7: K20m predictions for MM from a GTX580-trained
//! forest (hardware scaling, the straightforward case).
//!
//! Paper result: predictions mostly match measurements (edge inaccuracies
//! from interpolation); the calibration shows the most important variables
//! are almost the same on both architectures, which is what makes the
//! straightforward transfer work.

use bf_bench::{banner, figure_collect_options, figure_model_config, matmul_sweep};
use blackforest::collect::{collect_matmul, CollectOptions};
use blackforest::predict::{summarize, HardwareScalingPredictor, HwFeatureStrategy};
use blackforest::report;
use gpu_sim::GpuConfig;

fn main() {
    banner("Figure 7", "K20m predictions for MM from GTX580");
    let src_gpu = GpuConfig::gtx580();
    let tgt_gpu = GpuConfig::k20m();
    let sizes = matmul_sweep();
    let opts = CollectOptions {
        include_machine_metrics: true,
        drop_constant: false,
        ..figure_collect_options()
    };
    let src = collect_matmul(&src_gpu, &sizes, &opts).expect("source collection");
    let tgt = collect_matmul(&tgt_gpu, &sizes, &opts).expect("target collection");
    let (tgt_train, tgt_test) = tgt.split(0.8, figure_model_config().seed);

    let hw = HardwareScalingPredictor::fit(
        &src,
        &tgt_train,
        &figure_model_config(),
        HwFeatureStrategy::SourceImportance,
    )
    .expect("fit");

    println!("top-6 importance on GTX580 : {:?}", &hw.source_ranking[..6]);
    println!("top-6 importance on K20m   : {:?}", &hw.target_ranking[..6]);
    println!(
        "ranking similarity (top-6 overlap): {:.0}% — \"sufficiently similar hardware\"",
        hw.similarity * 100.0
    );
    println!("transfer features: {:?}\n", hw.features);

    let points = hw.evaluate(&tgt_test, "size").expect("evaluate");
    println!("{}", report::prediction_table(&points, "size"));
    let s = summarize(&points);
    println!(
        "hardware-scaled MM predictions: MSE {:.3}, R^2 {:.3}, MAPE {:.1}%",
        s.mse, s.r_squared, s.mape
    );
}
