//! Extension experiment (paper §7): the minimal-training-set study.
//!
//! "Its overhead is as large as the size of the training set. Additional
//! studies need to be made to determine the minimal training set, thus
//! limiting the overhead to a minimum."
//!
//! This binary runs the study: k-fold cross-validated learning curves for
//! MM and NW, reporting how held-out accuracy grows with the number of
//! profiled runs — i.e. how few `nvprof` invocations BlackForest actually
//! needs.

use bf_bench::{banner, figure_collect_options, matmul_sweep, nw_sweep, quick_mode};
use bf_forest::ForestParams;
use blackforest::collect::{collect_matmul, collect_nw};
use blackforest::cv::learning_curve;
use gpu_sim::GpuConfig;

fn main() {
    banner("Extension", "Minimal-training-set study (paper §7)");
    let gpu = GpuConfig::gtx580();
    let params = ForestParams::default()
        .with_trees(if quick_mode() { 80 } else { 300 })
        .with_seed(2016);
    let fractions = [0.15, 0.3, 0.5, 0.7, 1.0];

    for (name, data) in [
        (
            "matmul",
            collect_matmul(&gpu, &matmul_sweep(), &figure_collect_options()).unwrap(),
        ),
        (
            "nw",
            collect_nw(&gpu, &nw_sweep(), &figure_collect_options()).unwrap(),
        ),
    ] {
        println!("\n--- {name}: {} profiled runs total ---", data.len());
        println!("  {:>10} {:>12} {:>12}", "train runs", "CV R^2", "CV MSE");
        let curve = learning_curve(&data, &fractions, 5, &params, 2016).expect("curve");
        for p in &curve {
            println!(
                "  {:>10} {:>12.4} {:>12.4}",
                p.train_size, p.r_squared, p.mse
            );
        }
        // The paper's empirical rule of thumb: "100 samples are more than
        // sufficient for 1-D problems". Check where the curve saturates.
        if let Some(knee) = curve.windows(2).find(|w| {
            w[1].train_size > w[0].train_size
                && w[0].r_squared > 0.5
                && w[1].r_squared - w[0].r_squared < 0.01
        }) {
            println!(
                "accuracy saturates near {} runs (ΔR^2 < 0.01 beyond that)",
                knee[0].train_size
            );
        }
    }
}
