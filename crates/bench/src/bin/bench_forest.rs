//! Forest-training performance trajectory: exact vs histogram split search.
//!
//! Fits the same synthetic regression problem (20 features, default forest
//! hyperparameters) with both split strategies at increasing training-set
//! sizes, timing each fit, and writes the results to `BENCH_forest.json` so
//! the speedup is tracked as a first-class artifact. `BF_QUICK=1` skips the
//! largest size.

use bf_forest::{ForestParams, RandomForest, SplitStrategy};
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct SizePoint {
    n_rows: usize,
    n_features: usize,
    n_trees: usize,
    exact_seconds: f64,
    histogram_seconds: f64,
    speedup: f64,
    oob_r2_exact: f64,
    oob_r2_histogram: f64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    benchmark: String,
    max_bins: usize,
    points: Vec<SizePoint>,
}

/// Continuous synthetic data, high-cardinality on purpose so the histogram
/// path has to do real quantile binning (the honest comparison).
fn synthetic(n: usize, p: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let x: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..p)
                .map(|j| {
                    let t = ((i + 1) * (j + 3)) as f64;
                    (t * 0.61803398875).fract() * 1000.0
                })
                .collect()
        })
        .collect();
    let y: Vec<f64> = x
        .iter()
        .map(|r| r[0] * 2.0 + r[1].sqrt() * 10.0 + (r[2] * 0.01).sin() * 5.0)
        .collect();
    (x, y)
}

fn timed_fit(x: &[Vec<f64>], y: &[f64], params: &ForestParams) -> (f64, f64) {
    let t0 = Instant::now();
    let forest = RandomForest::fit(x, y, params).expect("fit");
    (t0.elapsed().as_secs_f64(), forest.oob_r_squared())
}

fn main() {
    bf_bench::banner("Bench", "Forest fit wall-clock: exact vs histogram splits");
    let max_bins = 256;
    let trees = 20;
    let p = 20;
    let sizes: &[usize] = if bf_bench::quick_mode() {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000]
    };

    let mut points = Vec::new();
    for &n in sizes {
        let (x, y) = synthetic(n, p);
        let base = ForestParams::default().with_trees(trees).with_seed(7);
        let (exact_seconds, oob_r2_exact) =
            timed_fit(&x, &y, &base.with_split_strategy(SplitStrategy::Exact));
        let (histogram_seconds, oob_r2_histogram) = timed_fit(
            &x,
            &y,
            &base.with_split_strategy(SplitStrategy::Histogram { max_bins }),
        );
        let speedup = exact_seconds / histogram_seconds;
        println!(
            "n = {n:>6}: exact {exact_seconds:>8.3}s  histogram {histogram_seconds:>8.3}s  \
             speedup {speedup:>5.2}x  (OOB R2 {oob_r2_exact:.4} vs {oob_r2_histogram:.4})"
        );
        points.push(SizePoint {
            n_rows: n,
            n_features: p,
            n_trees: trees,
            exact_seconds,
            histogram_seconds,
            speedup,
            oob_r2_exact,
            oob_r2_histogram,
        });
    }

    let report = BenchReport {
        benchmark: "forest_fit_exact_vs_histogram".to_string(),
        max_bins,
        points,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize");
    std::fs::write("BENCH_forest.json", &json).expect("write BENCH_forest.json");
    println!("wrote BENCH_forest.json");
}
