//! Shared harness for the experiment binaries that regenerate every table
//! and figure of the paper (see `DESIGN.md` for the experiment index).
//!
//! Each `fig*`/`table*` binary prints the same rows/series the paper
//! reports; `EXPERIMENTS.md` records paper-vs-measured values. Set
//! `BF_QUICK=1` to shrink the sweeps for smoke runs.

use blackforest::collect::{self, CollectOptions};
use blackforest::model::{BlackForestModel, ModelConfig};
use blackforest::report;
use blackforest::Dataset;
use gpu_sim::GpuConfig;

/// Whether quick mode is enabled (`BF_QUICK=1`).
pub fn quick_mode() -> bool {
    std::env::var("BF_QUICK").map(|v| v == "1").unwrap_or(false)
}

/// The standard collection options used by all figure experiments:
/// 3 profiler repetitions with ±2% measurement noise, as real `nvprof`
/// collection would exhibit.
pub fn figure_collect_options() -> CollectOptions {
    CollectOptions::default().with_repetitions(3, 0.02)
}

/// The standard model configuration for figures: the paper's 500-tree
/// forest and 80:20 split.
///
/// The seed is chosen so the random 80:20 split keeps every repetition of
/// the smallest and largest sweep size in the training set for both the MM
/// (63-row) and NW (384-row) figure datasets. The paper's prediction
/// protocol is interpolation — unseen sizes *within* the profiled sweep —
/// and a split that drops a boundary size from training would silently turn
/// Figures 5b/7 into an extrapolation test the method never claims to pass.
pub fn figure_model_config() -> ModelConfig {
    ModelConfig {
        n_trees: if quick_mode() { 120 } else { 500 },
        seed: 2121,
        ..ModelConfig::default()
    }
}

/// Reduction sweep for Figures 2–4 (shrunk under `BF_QUICK`).
pub fn reduce_sweep() -> (Vec<usize>, Vec<usize>) {
    if quick_mode() {
        ((14..=18).map(|e| 1usize << e).collect(), vec![64, 256])
    } else {
        collect::paper_reduce_sweep()
    }
}

/// MM sweep for Figures 5 and 7.
pub fn matmul_sweep() -> Vec<usize> {
    if quick_mode() {
        (2..=16).step_by(2).map(|k| k * 16).collect()
    } else {
        collect::paper_matmul_sizes()
    }
}

/// NW sweep for Figures 6 and 8.
pub fn nw_sweep() -> Vec<usize> {
    if quick_mode() {
        (1..=16).map(|k| k * 64).collect()
    } else {
        collect::paper_nw_lengths()
    }
}

/// Prints the figure banner.
pub fn banner(id: &str, title: &str) {
    println!("==============================================================");
    println!("{id}: {title}");
    println!("==============================================================");
}

/// Prints the standard per-kernel analysis block used by Figures 2–4:
/// importance chart (subfigure a), partial dependence of the top counter
/// (subfigure b), and the PCA component table (the in-text PC analysis).
pub fn print_kernel_analysis(ds: &Dataset, model: &BlackForestModel) {
    println!(
        "dataset: {} runs x {} predictors; forest OOB MSE {:.4e}, explained variance {:.1}%",
        ds.len(),
        ds.n_features(),
        model.validation.oob_mse,
        model.validation.oob_r_squared * 100.0
    );
    println!();
    println!("(a) {}", report::importance_chart(model, 10));
    if let Some(top) = model.ranking.first() {
        println!("(b) {}", report::partial_dependence_chart(model, top, 32));
    }
    if let Some(pca) = &model.pca {
        println!("(c) {}", report::pca_table(pca, 5));
    }
}

/// Returns the named GPU preset.
pub fn gpu_by_name(name: &str) -> Option<GpuConfig> {
    GpuConfig::by_name(name)
}

/// Prints the per-counter model curves of subfigures 5(c)/6(c): for each
/// retained counter, measured (dotted line in the paper) vs model-predicted
/// (solid line) values over the characteristic sweep.
pub fn print_counter_model_series(
    predictor: &blackforest::predict::ProblemScalingPredictor,
    ds: &Dataset,
    char_name: &str,
    max_rows: usize,
) {
    let Some(cj) = ds.feature_index(char_name) else {
        println!("(characteristic {char_name} missing)");
        return;
    };
    // One row per distinct characteristic value (thinned to max_rows).
    let mut order: Vec<usize> = (0..ds.len()).collect();
    order.sort_by(|&a, &b| ds.rows[a][cj].partial_cmp(&ds.rows[b][cj]).unwrap());
    order.dedup_by_key(|&mut i| ds.rows[i][cj].to_bits());
    let step = (order.len() / max_rows.max(1)).max(1);
    let picks: Vec<usize> = order.into_iter().step_by(step).collect();

    for model in &predictor.counters.models {
        if model.family() == "identity" {
            continue;
        }
        let Some(kj) = ds.feature_index(&model.counter) else {
            continue;
        };
        println!(
            "  {} ({}; R^2 {:.4}): {:>8}  {:>14}  {:>14}",
            model.counter,
            model.family(),
            model.r_squared,
            char_name,
            "measured",
            "model"
        );
        for &i in &picks {
            let c = ds.rows[i][cj];
            let measured = ds.rows[i][kj];
            let predicted = model.predict(&[c]);
            println!("      {c:>16.0}  {measured:>14.4}  {predicted:>14.4}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_lookup_is_case_insensitive() {
        assert!(gpu_by_name("GTX580").is_some());
        assert!(gpu_by_name("k20m").is_some());
        assert!(gpu_by_name("rtx9090").is_none());
    }

    #[test]
    fn sweeps_are_nonempty() {
        let (s, t) = reduce_sweep();
        assert!(!s.is_empty() && !t.is_empty());
        assert!(!matmul_sweep().is_empty());
        assert!(!nw_sweep().is_empty());
    }
}
