//! Ablation: random forest vs a single regression tree vs a GLM as the
//! response model (paper §1: RF "usually outperforms the more traditional
//! classification and regression algorithms ... especially for scarce
//! training data").
//!
//! Criterion measures the fit cost of each model family on the same MM
//! dataset; the accuracy side of the ablation (OOB/test R² per family) is
//! printed once at startup so a bench run documents both.

use bf_forest::{ForestParams, RandomForest};
use bf_regress::glm::{Basis, LinearModel};
use blackforest::collect::{collect_matmul, CollectOptions};
use blackforest::Dataset;
use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::GpuConfig;
use std::hint::black_box;

fn dataset() -> Dataset {
    let sizes: Vec<usize> = (2..=20).map(|k| k * 16).collect();
    collect_matmul(
        &GpuConfig::gtx580(),
        &sizes,
        &CollectOptions::default().with_repetitions(3, 0.02),
    )
    .unwrap()
}

fn glm_basis(p: usize) -> Vec<Basis> {
    let mut b = vec![Basis::Intercept];
    for f in 0..p {
        b.push(Basis::Power {
            feature: f,
            power: 1,
        });
    }
    b
}

fn report_accuracy(ds: &Dataset) {
    let (train, test) = ds.split(0.8, 99);
    let rf = RandomForest::fit(
        &train.rows,
        &train.response,
        &ForestParams::default().with_trees(500).with_seed(1),
    )
    .unwrap();
    let tree = RandomForest::fit(
        &train.rows,
        &train.response,
        &ForestParams::default().with_trees(1).with_seed(1),
    )
    .unwrap();
    let glm = LinearModel::fit(&glm_basis(ds.n_features()), &train.rows, &train.response).unwrap();
    let r2 = |pred: &[f64]| bf_linalg::stats::r_squared(pred, &test.response);
    eprintln!("== ablation_models accuracy (test R^2) ==");
    eprintln!(
        "  random forest (500): {:.4}",
        r2(&rf.predict(&test.rows).unwrap())
    );
    eprintln!(
        "  single tree        : {:.4}",
        r2(&tree.predict(&test.rows).unwrap())
    );
    eprintln!("  linear GLM         : {:.4}", r2(&glm.predict(&test.rows)));
}

fn bench(c: &mut Criterion) {
    let ds = dataset();
    report_accuracy(&ds);
    let mut g = c.benchmark_group("ablation_models_fit");
    g.bench_function("random_forest_500", |b| {
        b.iter(|| {
            RandomForest::fit(
                black_box(&ds.rows),
                black_box(&ds.response),
                &ForestParams::default().with_trees(500).with_seed(1),
            )
            .unwrap()
        })
    });
    g.bench_function("single_tree", |b| {
        b.iter(|| {
            RandomForest::fit(
                black_box(&ds.rows),
                black_box(&ds.response),
                &ForestParams::default().with_trees(1).with_seed(1),
            )
            .unwrap()
        })
    });
    let basis = glm_basis(ds.n_features());
    g.bench_function("glm", |b| {
        b.iter(|| LinearModel::fit(&basis, black_box(&ds.rows), black_box(&ds.response)).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
