//! Ablation: sampled-thread-block sensitivity of the simulator.
//!
//! The engine simulates one resident set per launch and scales; this
//! ablation documents that the per-block cost model is stable across grid
//! positions (block-id choice) and measures simulation cost versus problem
//! size — the justification for the sampling strategy in DESIGN.md.

use bf_kernels::matmul::MatmulTiled;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::cache::Cache;
use gpu_sim::sm::simulate_sm;
use gpu_sim::trace::KernelTrace;
use gpu_sim::GpuConfig;
use std::hint::black_box;

fn block_cycles(gpu: &GpuConfig, k: &MatmulTiled, block: usize) -> f64 {
    let t = k.block_trace(block, gpu);
    let mut l1 = Cache::new(gpu.l1_size, gpu.l1_line, gpu.l1_assoc);
    let mut l2 = Cache::new(gpu.l2_size / gpu.num_sms, 32, gpu.l2_assoc);
    simulate_sm(gpu, std::slice::from_ref(&t), &mut l1, &mut l2)
        .unwrap()
        .cycles
}

fn report_stability() {
    let gpu = GpuConfig::gtx580();
    let k = MatmulTiled::new(512);
    let grid = k.launch_config().grid_blocks;
    let samples: Vec<f64> = (0..8)
        .map(|i| block_cycles(&gpu, &k, i * grid / 8))
        .collect();
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let max_dev = samples
        .iter()
        .map(|c| (c - mean).abs() / mean)
        .fold(0.0f64, f64::max);
    eprintln!(
        "== ablation_sim: per-block cycle spread over 8 grid positions: max deviation {:.2}% of mean ==",
        max_dev * 100.0
    );
}

fn bench(c: &mut Criterion) {
    report_stability();
    let gpu = GpuConfig::gtx580();
    let mut g = c.benchmark_group("ablation_sim_block_cost");
    g.sample_size(20);
    for &n in &[128usize, 512, 2048] {
        g.bench_with_input(BenchmarkId::new("mm_block_n", n), &n, |b, &n| {
            let k = MatmulTiled::new(n);
            b.iter(|| black_box(block_cycles(&gpu, &k, 0)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
