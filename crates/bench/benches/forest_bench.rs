//! Micro-benchmarks of the random-forest substrate: fit, predict, OOB,
//! permutation importance, partial dependence.

use bf_forest::{ForestParams, PartialDependence, RandomForest, SplitStrategy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn synthetic(n: usize, p: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let x: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..p)
                .map(|j| (((i + 1) * (j + 3) * 2654435761) % 1009) as f64)
                .collect()
        })
        .collect();
    let y: Vec<f64> = x.iter().map(|r| r[0] * 2.0 + r[1].sqrt() * 10.0).collect();
    (x, y)
}

fn bench_fit(c: &mut Criterion) {
    let mut g = c.benchmark_group("forest_fit");
    for &trees in &[50usize, 200, 500] {
        let (x, y) = synthetic(100, 25);
        g.bench_with_input(BenchmarkId::new("n_trees", trees), &trees, |b, &t| {
            let params = ForestParams::default().with_trees(t).with_seed(1);
            b.iter(|| RandomForest::fit(black_box(&x), black_box(&y), &params).unwrap());
        });
    }
    g.finish();
}

fn bench_predict(c: &mut Criterion) {
    let (x, y) = synthetic(100, 25);
    let forest = RandomForest::fit(
        &x,
        &y,
        &ForestParams::default().with_trees(500).with_seed(2),
    )
    .unwrap();
    c.bench_function("forest_predict_row", |b| {
        b.iter(|| forest.predict_row(black_box(&x[17])).unwrap());
    });
    c.bench_function("forest_oob_mse", |b| {
        b.iter(|| black_box(forest.oob_mse()));
    });
}

fn bench_importance(c: &mut Criterion) {
    let (x, y) = synthetic(100, 25);
    let forest = RandomForest::fit(
        &x,
        &y,
        &ForestParams::default().with_trees(200).with_seed(3),
    )
    .unwrap();
    c.bench_function("permutation_importance_200t_25f", |b| {
        b.iter(|| black_box(forest.permutation_importance()));
    });
    c.bench_function("partial_dependence_16pt", |b| {
        b.iter(|| black_box(PartialDependence::compute(&forest, 0, 16)));
    });
}

/// Exact vs histogram split search across training-set sizes — the headline
/// comparison of the binned pipeline (see `crates/bench/src/bin/bench_forest.rs`
/// for the JSON artifact variant).
fn bench_split_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("forest_fit_strategy");
    g.sample_size(10);
    for &n in &[1_000usize, 10_000, 100_000] {
        let (x, y) = synthetic(n, 20);
        let trees = 10;
        for (label, strategy) in [
            ("exact", SplitStrategy::Exact),
            ("histogram", SplitStrategy::Histogram { max_bins: 256 }),
        ] {
            let params = ForestParams::default()
                .with_trees(trees)
                .with_seed(4)
                .with_split_strategy(strategy);
            g.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| RandomForest::fit(black_box(&x), black_box(&y), &params).unwrap());
            });
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_fit,
    bench_predict,
    bench_importance,
    bench_split_strategies
);
criterion_main!(benches);
