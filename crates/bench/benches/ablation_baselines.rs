//! Ablation: the paper's model-choice claims, tested head-to-head.
//!
//! §1: random forest "usually outperforms the more traditional
//! classification and regression algorithms, such as support vector machine
//! and neural networks, especially for scarce training data"; §2 argues
//! stepwise-regression approaches (Stargazer) are "less powerful".
//!
//! This bench evaluates RF vs stepwise linear regression vs a
//! single-hidden-layer MLP vs MARS on the paper's own workload datasets
//! (MM and NW), at both full and scarce training sizes, printing held-out
//! R² per model before timing the fits.

use bf_forest::{ForestParams, RandomForest};
use bf_linalg::stats::r_squared;
use bf_regress::{Mars, MarsParams, MlpParams, MlpRegressor, StepwiseModel, StepwiseParams};
use blackforest::collect::{collect_matmul, collect_nw, CollectOptions};
use blackforest::Dataset;
use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::GpuConfig;
use std::hint::black_box;

fn datasets() -> Vec<(&'static str, Dataset)> {
    let gpu = GpuConfig::gtx580();
    let opts = CollectOptions::default().with_repetitions(2, 0.02);
    let mm_sizes: Vec<usize> = (2..=24).step_by(2).map(|k| k * 16).collect();
    let nw_lengths: Vec<usize> = (1..=24).map(|k| k * 64).collect();
    vec![
        ("matmul", collect_matmul(&gpu, &mm_sizes, &opts).unwrap()),
        ("nw", collect_nw(&gpu, &nw_lengths, &opts).unwrap()),
    ]
}

fn holdout_r2(ds: &Dataset, train_n: Option<usize>, seed: u64) -> Vec<(String, f64)> {
    let (mut train, test) = ds.split(0.8, seed);
    if let Some(n) = train_n {
        train.rows.truncate(n);
        train.response.truncate(n);
    }
    let mut out = Vec::new();
    let rf = RandomForest::fit(
        &train.rows,
        &train.response,
        &ForestParams::default().with_trees(300).with_seed(seed),
    )
    .unwrap();
    out.push((
        "random forest".into(),
        r_squared(&rf.predict(&test.rows).unwrap(), &test.response),
    ));
    let sw = StepwiseModel::fit(&train.rows, &train.response, &StepwiseParams::default()).unwrap();
    out.push((
        "stepwise linear".into(),
        r_squared(&sw.predict(&test.rows), &test.response),
    ));
    let mlp = MlpRegressor::fit(
        &train.rows,
        &train.response,
        &MlpParams {
            epochs: 3000,
            ..MlpParams::default()
        },
    )
    .unwrap();
    out.push((
        "mlp (1 hidden)".into(),
        r_squared(&mlp.predict(&test.rows), &test.response),
    ));
    let mars = Mars::fit(
        &train.rows,
        &train.response,
        &MarsParams {
            max_terms: 15,
            max_knots: 12,
            ..MarsParams::default()
        },
    )
    .unwrap();
    out.push((
        "mars".into(),
        r_squared(&mars.predict(&test.rows), &test.response),
    ));
    out
}

fn bench(c: &mut Criterion) {
    let data = datasets();
    for (name, ds) in &data {
        eprintln!("== ablation_baselines {name}: held-out R^2 ==");
        for (train_n, label) in [(None, "full train"), (Some(12), "scarce train (12 runs)")] {
            eprintln!("  [{label}]");
            for (model, r2) in holdout_r2(ds, train_n, 2016) {
                eprintln!("    {model:<18} {r2:+.4}");
            }
        }
    }

    let (_, mm) = &data[0];
    let mut g = c.benchmark_group("ablation_baselines_fit");
    g.sample_size(10);
    g.bench_function("random_forest_300", |b| {
        b.iter(|| {
            RandomForest::fit(
                black_box(&mm.rows),
                black_box(&mm.response),
                &ForestParams::default().with_trees(300).with_seed(1),
            )
            .unwrap()
        })
    });
    g.bench_function("stepwise", |b| {
        b.iter(|| {
            StepwiseModel::fit(
                black_box(&mm.rows),
                black_box(&mm.response),
                &StepwiseParams::default(),
            )
            .unwrap()
        })
    });
    g.bench_function("mlp", |b| {
        b.iter(|| {
            MlpRegressor::fit(
                black_box(&mm.rows),
                black_box(&mm.response),
                &MlpParams {
                    epochs: 500,
                    ..MlpParams::default()
                },
            )
            .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
