//! Micro-benchmarks of the statistical substrates: eigendecomposition, PCA
//! with varimax, MARS, and the GLM solver — the per-model costs behind one
//! BlackForest pipeline run.

use bf_linalg::{Matrix, SymmetricEigen};
use bf_pca::{varimax, Pca, PcaOptions};
use bf_regress::glm::{Basis, LinearModel};
use bf_regress::mars::{Mars, MarsParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn correlated_matrix(n: usize, p: usize) -> Matrix {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..p)
                .map(|j| {
                    let base = (i * (j + 1)) as f64;
                    base.sin() * 10.0 + (i as f64) * 0.1 * (j % 3) as f64
                })
                .collect()
        })
        .collect();
    Matrix::from_rows(&rows).unwrap()
}

fn bench_eigen(c: &mut Criterion) {
    let mut g = c.benchmark_group("jacobi_eigen");
    for &p in &[8usize, 16, 32] {
        let x = correlated_matrix(200, p);
        let cov = bf_linalg::stats::covariance_matrix(&x).unwrap();
        g.bench_with_input(BenchmarkId::new("p", p), &p, |b, _| {
            b.iter(|| SymmetricEigen::decompose(black_box(&cov)).unwrap());
        });
    }
    g.finish();
}

fn bench_pca_varimax(c: &mut Criterion) {
    let x = correlated_matrix(120, 28); // a figure-sized counter matrix
    c.bench_function("pca_fit_28f", |b| {
        b.iter(|| Pca::fit(black_box(&x), PcaOptions::default()).unwrap());
    });
    let pca = Pca::fit(&x, PcaOptions::default()).unwrap();
    let loadings = pca.factor_loadings(4).unwrap();
    c.bench_function("varimax_28x4", |b| {
        b.iter(|| varimax(black_box(&loadings), true));
    });
}

fn bench_regressions(c: &mut Criterion) {
    let xs: Vec<Vec<f64>> = (0..120).map(|i| vec![i as f64]).collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|r| (r[0] / 20.0).min(3.0) * 7.0 + r[0] * 0.01)
        .collect();
    c.bench_function("mars_fit_120x1", |b| {
        b.iter(|| Mars::fit(black_box(&xs), black_box(&ys), &MarsParams::default()).unwrap());
    });
    let basis = Basis::polynomial(0, 3);
    c.bench_function("glm_cubic_120x1", |b| {
        b.iter(|| LinearModel::fit(&basis, black_box(&xs), black_box(&ys)).unwrap());
    });
}

criterion_group!(benches, bench_eigen, bench_pca_varimax, bench_regressions);
criterion_main!(benches);
