//! Ablation: GLM vs MARS counter models on the NW workload (§6.1.2 uses
//! MARS precisely because the NW counters are nonlinear in the sequence
//! length).
//!
//! Accuracy per family (training R² per counter) is printed once; criterion
//! measures the fit cost of each family.

use blackforest::collect::{collect_nw, CollectOptions};
use blackforest::countermodel::{CounterModelSet, ModelStrategy};
use blackforest::model::{BlackForestModel, ModelConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::GpuConfig;
use std::hint::black_box;

fn setup() -> (blackforest::Dataset, Vec<String>) {
    let lengths: Vec<usize> = (1..=24).map(|k| k * 64).collect();
    let ds = collect_nw(
        &GpuConfig::gtx580(),
        &lengths,
        &CollectOptions::default().with_repetitions(2, 0.02),
    )
    .unwrap();
    let model = BlackForestModel::fit(&ds, &ModelConfig::quick(77)).unwrap();
    let selected = model.selected.clone();
    (ds, selected)
}

fn bench(c: &mut Criterion) {
    let (ds, selected) = setup();
    let chars = vec!["size".to_string()];
    for strategy in [ModelStrategy::Glm, ModelStrategy::Mars] {
        let set = CounterModelSet::fit(&ds, &selected, &chars, strategy).unwrap();
        eprintln!(
            "== ablation_regress {:?}: mean R^2 {:.4} ==",
            strategy,
            set.mean_r_squared()
        );
        for m in &set.models {
            eprintln!("  {:<28} {:.4}", m.counter, m.r_squared);
        }
    }
    let mut g = c.benchmark_group("ablation_regress_fit");
    g.sample_size(20);
    g.bench_function("glm", |b| {
        b.iter(|| {
            CounterModelSet::fit(black_box(&ds), &selected, &chars, ModelStrategy::Glm).unwrap()
        })
    });
    g.bench_function("mars", |b| {
        b.iter(|| {
            CounterModelSet::fit(black_box(&ds), &selected, &chars, ModelStrategy::Mars).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
