//! Ablation: forest hyperparameter sensitivity — tree count, mtry, and
//! training-set size (paper §7: "additional studies need to be made to
//! determine the minimal training set").
//!
//! Accuracy per setting is printed once (OOB explained variance); criterion
//! tracks the fit cost so the accuracy/cost trade-off is visible in one run.

use bf_forest::{ForestParams, RandomForest};
use blackforest::collect::{collect_matmul, CollectOptions};
use blackforest::Dataset;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::GpuConfig;
use std::hint::black_box;

fn dataset() -> Dataset {
    let sizes: Vec<usize> = (2..=20).map(|k| k * 16).collect();
    collect_matmul(
        &GpuConfig::gtx580(),
        &sizes,
        &CollectOptions::default().with_repetitions(4, 0.02),
    )
    .unwrap()
}

fn report_sensitivity(ds: &Dataset) {
    eprintln!("== ablation_forest sensitivity (OOB explained variance) ==");
    for trees in [10usize, 50, 200, 500] {
        let f = RandomForest::fit(
            &ds.rows,
            &ds.response,
            &ForestParams::default().with_trees(trees).with_seed(5),
        )
        .unwrap();
        eprintln!("  n_trees {trees:4}: {:.4}", f.oob_r_squared());
    }
    for mtry in [1usize, 4, 8, 16] {
        let f = RandomForest::fit(
            &ds.rows,
            &ds.response,
            &ForestParams::default()
                .with_trees(200)
                .with_mtry(mtry)
                .with_seed(5),
        )
        .unwrap();
        eprintln!("  mtry {mtry:4}   : {:.4}", f.oob_r_squared());
    }
    // Training-set size: fit on a prefix fraction, measure OOB.
    for frac in [0.25f64, 0.5, 0.75, 1.0] {
        let n = ((ds.len() as f64) * frac) as usize;
        let f = RandomForest::fit(
            &ds.rows[..n],
            &ds.response[..n],
            &ForestParams::default().with_trees(200).with_seed(5),
        )
        .unwrap();
        eprintln!("  train n {n:4}: {:.4}", f.oob_r_squared());
    }
}

fn bench(c: &mut Criterion) {
    let ds = dataset();
    report_sensitivity(&ds);
    let mut g = c.benchmark_group("ablation_forest_trees");
    for &trees in &[10usize, 100, 500] {
        g.bench_with_input(BenchmarkId::new("n_trees", trees), &trees, |b, &t| {
            b.iter(|| {
                RandomForest::fit(
                    black_box(&ds.rows),
                    black_box(&ds.response),
                    &ForestParams::default().with_trees(t).with_seed(5),
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
