//! Micro-benchmarks of the GPU-simulator substrate: per-kernel launch
//! simulation and full-application profiling throughput.

use bf_kernels::matmul::matmul_application;
use bf_kernels::nw::nw_application;
use bf_kernels::reduce::{reduce_application, ReduceVariant};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::GpuConfig;
use std::hint::black_box;

fn bench_reduce(c: &mut Criterion) {
    let gpu = GpuConfig::gtx580();
    let mut g = c.benchmark_group("sim_reduce1");
    for &n in &[1usize << 16, 1 << 20] {
        g.bench_with_input(BenchmarkId::new("elems", n), &n, |b, &n| {
            b.iter(|| {
                let app = reduce_application(ReduceVariant::Reduce1, n, 256);
                black_box(app.profile(&gpu).unwrap())
            });
        });
    }
    g.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let gpu = GpuConfig::gtx580();
    let mut g = c.benchmark_group("sim_matmul");
    g.sample_size(20);
    for &n in &[256usize, 1024] {
        g.bench_with_input(BenchmarkId::new("n", n), &n, |b, &n| {
            b.iter(|| black_box(matmul_application(n).profile(&gpu).unwrap()));
        });
    }
    g.finish();
}

fn bench_nw(c: &mut Criterion) {
    let gpu = GpuConfig::gtx580();
    let mut g = c.benchmark_group("sim_nw");
    g.sample_size(10);
    for &n in &[512usize, 2048] {
        g.bench_with_input(BenchmarkId::new("len", n), &n, |b, &n| {
            b.iter(|| black_box(nw_application(n, 10).profile(&gpu).unwrap()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_reduce, bench_matmul, bench_nw);
criterion_main!(benches);
