//! Raw hardware events and named performance counters.
//!
//! [`RawEvents`] is what the simulation engine accumulates: plain event
//! counts, deliberately close to what the hardware PM units of the paper's
//! GPUs count. [`CounterSet`] is the nvprof-facing view: named metrics (the
//! paper's Table 1 plus the additional counters its figures reference), with
//! per-architecture availability.

use crate::arch::GpuArchitecture;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Raw event counts accumulated by the simulator. All fields are `f64`
/// because sampled-block counts are scaled to the full grid.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RawEvents {
    /// Total SM cycles covered by the launch (sum over waves of wave cycles).
    pub elapsed_cycles: f64,
    /// Warp instructions executed (replays excluded).
    pub inst_executed: f64,
    /// Warp instructions issued (replays included).
    pub inst_issued: f64,
    /// Thread-level instructions executed (sums active lanes).
    pub thread_inst_executed: f64,
    /// Executed global-load warp instructions.
    pub gld_request: f64,
    /// Executed global-store warp instructions.
    pub gst_request: f64,
    /// Bytes the kernel actually asked for in global loads (active lanes).
    pub gld_requested_bytes: f64,
    /// Bytes the kernel actually asked for in global stores (active lanes).
    pub gst_requested_bytes: f64,
    /// Global load transactions (L1 lines on Fermi, 32B sectors on Kepler).
    pub global_load_transactions: f64,
    /// Global store transactions.
    pub global_store_transactions: f64,
    /// L1 hits for global loads (Fermi only; 0 on Kepler).
    pub l1_global_load_hit: f64,
    /// L1 misses for global loads (Fermi only; 0 on Kepler).
    pub l1_global_load_miss: f64,
    /// Executed shared-memory load warp instructions.
    pub shared_load: f64,
    /// Executed shared-memory store warp instructions.
    pub shared_store: f64,
    /// Replays caused by shared-memory bank conflicts on loads.
    pub shared_load_replay: f64,
    /// Replays caused by shared-memory bank conflicts on stores.
    pub shared_store_replay: f64,
    /// L2 read transactions (32-byte sectors).
    pub l2_read_transactions: f64,
    /// L2 write transactions (32-byte sectors).
    pub l2_write_transactions: f64,
    /// L2 read hits.
    pub l2_read_hits: f64,
    /// DRAM read transactions (32-byte).
    pub dram_read_transactions: f64,
    /// DRAM write transactions (32-byte).
    pub dram_write_transactions: f64,
    /// Branch warp instructions executed.
    pub branch: f64,
    /// Divergent branch warp instructions.
    pub divergent_branch: f64,
    /// Integral of resident active warps over time (warp-cycles).
    pub active_warp_cycles: f64,
    /// Cycles during which at least one warp was resident.
    pub active_cycles: f64,
    /// Cycles the LDST pipeline was busy.
    pub ldst_busy_cycles: f64,
    /// Issue slots available (elapsed_cycles x warp schedulers).
    pub issue_slots: f64,
    /// Warps launched.
    pub warps_launched: f64,
    /// Thread blocks launched.
    pub blocks_launched: f64,
    /// Elapsed wall-clock seconds of the launch.
    pub time_seconds: f64,
}

/// Applies a macro to every [`RawEvents`] field, in declaration order. This
/// is the single source of truth for the field list: the flat-array view
/// ([`RawEvents::as_array`]), the binary disk-cache codec, and the
/// steady-state extrapolation deltas all build on it, so adding a field
/// updates them together (and must bump the disk-cache schema version).
macro_rules! for_each_raw_event_field {
    ($m:ident) => {
        $m!(
            elapsed_cycles,
            inst_executed,
            inst_issued,
            thread_inst_executed,
            gld_request,
            gst_request,
            gld_requested_bytes,
            gst_requested_bytes,
            global_load_transactions,
            global_store_transactions,
            l1_global_load_hit,
            l1_global_load_miss,
            shared_load,
            shared_store,
            shared_load_replay,
            shared_store_replay,
            l2_read_transactions,
            l2_write_transactions,
            l2_read_hits,
            dram_read_transactions,
            dram_write_transactions,
            branch,
            divergent_branch,
            active_warp_cycles,
            active_cycles,
            ldst_busy_cycles,
            issue_slots,
            warps_launched,
            blocks_launched,
            time_seconds
        )
    };
}

/// Number of [`RawEvents`] fields (the length of [`RawEvents::as_array`]).
pub const RAW_EVENT_FIELDS: usize = 30;

/// Field names in [`RawEvents::as_array`] order.
pub fn raw_event_field_names() -> [&'static str; RAW_EVENT_FIELDS] {
    macro_rules! names {
        ($($f:ident),*) => { [$(stringify!($f)),*] };
    }
    for_each_raw_event_field!(names)
}

impl RawEvents {
    /// All fields as a flat array, in declaration order.
    pub fn as_array(&self) -> [f64; RAW_EVENT_FIELDS] {
        macro_rules! arr {
            ($($f:ident),*) => { [$(self.$f),*] };
        }
        for_each_raw_event_field!(arr)
    }

    /// Rebuilds events from a flat array produced by [`Self::as_array`].
    pub fn from_array(values: [f64; RAW_EVENT_FIELDS]) -> RawEvents {
        let mut out = RawEvents::default();
        let mut it = values.into_iter();
        macro_rules! fill {
            ($($f:ident),*) => { $( out.$f = it.next().unwrap(); )* };
        }
        for_each_raw_event_field!(fill);
        out
    }

    /// Accumulates another launch's events into this one (used by host
    /// drivers that issue many launches per application run, e.g. the
    /// multi-pass reduction and the per-diagonal NW kernels).
    pub fn accumulate(&mut self, other: &RawEvents) {
        macro_rules! acc {
            ($($f:ident),*) => { $( self.$f += other.$f; )* };
        }
        acc!(
            elapsed_cycles,
            inst_executed,
            inst_issued,
            thread_inst_executed,
            gld_request,
            gst_request,
            gld_requested_bytes,
            gst_requested_bytes,
            global_load_transactions,
            global_store_transactions,
            l1_global_load_hit,
            l1_global_load_miss,
            shared_load,
            shared_store,
            shared_load_replay,
            shared_store_replay,
            l2_read_transactions,
            l2_write_transactions,
            l2_read_hits,
            dram_read_transactions,
            dram_write_transactions,
            branch,
            divergent_branch,
            active_warp_cycles,
            active_cycles,
            ldst_busy_cycles,
            issue_slots,
            warps_launched,
            blocks_launched,
            time_seconds
        );
    }

    /// Scales every event count by `factor` (time and cycles included) —
    /// used to extrapolate sampled blocks to the full grid.
    pub fn scaled_counts(&self, factor: f64) -> RawEvents {
        let mut out = self.clone();
        macro_rules! scale {
            ($($f:ident),*) => { $( out.$f *= factor; )* };
        }
        scale!(
            inst_executed,
            inst_issued,
            thread_inst_executed,
            gld_request,
            gst_request,
            gld_requested_bytes,
            gst_requested_bytes,
            global_load_transactions,
            global_store_transactions,
            l1_global_load_hit,
            l1_global_load_miss,
            shared_load,
            shared_store,
            shared_load_replay,
            shared_store_replay,
            l2_read_transactions,
            l2_write_transactions,
            l2_read_hits,
            dram_read_transactions,
            dram_write_transactions,
            branch,
            divergent_branch,
            active_warp_cycles,
            ldst_busy_cycles,
            warps_launched,
            blocks_launched
        );
        out
    }
}

/// A named set of performance-counter/metric values, the simulator's
/// equivalent of one nvprof profiling run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CounterSet {
    values: BTreeMap<String, f64>,
}

impl CounterSet {
    /// Creates an empty set.
    pub fn new() -> CounterSet {
        CounterSet::default()
    }

    /// Sets (or overwrites) a counter value.
    pub fn set(&mut self, name: &str, value: f64) {
        self.values.insert(name.to_string(), value);
    }

    /// Reads a counter value, if present.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values.get(name).copied()
    }

    /// Whether a counter is present.
    pub fn contains(&self, name: &str) -> bool {
        self.values.contains_key(name)
    }

    /// Iterates `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.values.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Counter names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.values.keys().map(|k| k.as_str()).collect()
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Architecture bits for counter-availability masks, one per
/// [`GpuArchitecture`] in ordinal order (`arch.bit()` yields the same
/// values). Combine with `|` to describe which generations' PM units can
/// produce a counter.
pub mod arch_mask {
    /// Compute capability 2.x.
    pub const FERMI: u8 = 1 << 0;
    /// Compute capability 3.x.
    pub const KEPLER: u8 = 1 << 1;
    /// Compute capability 5.x.
    pub const MAXWELL: u8 = 1 << 2;
    /// Compute capability 6.x.
    pub const PASCAL: u8 = 1 << 3;
    /// Compute capability 7.0.
    pub const VOLTA: u8 = 1 << 4;
    /// Every modelled generation.
    pub const ALL: u8 = FERMI | KEPLER | MAXWELL | PASCAL | VOLTA;
    /// Generations whose L1 caches global loads (and therefore report L1
    /// global hit/miss counters): Fermi's line-tagged L1 and the
    /// sector-tagged Pascal/Volta L1s.
    pub const L1_GLOBAL: u8 = FERMI | PASCAL | VOLTA;
    /// Generations reporting bank conflicts through the nvprof-era
    /// `shared_ld/st_bank_conflict` events rather than Kepler's replay
    /// counters or Fermi's single conflict counter.
    pub const POST_KEPLER: u8 = MAXWELL | PASCAL | VOLTA;
}

/// Description of one counter: its name, meaning (Table 1 wording), and the
/// architectures it exists on.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CounterInfo {
    /// nvprof-style counter/metric name.
    pub name: &'static str,
    /// Human-readable meaning.
    pub meaning: &'static str,
    /// Bitmask of [`GpuArchitecture`]s whose PM units produce this counter
    /// (bit `arch.bit()`; see [`arch_mask`]).
    pub available: u8,
}

impl CounterInfo {
    /// Whether this counter exists on the given architecture.
    pub fn on(&self, arch: GpuArchitecture) -> bool {
        self.available & arch.bit() != 0
    }
}

/// The full catalogue of counters this profiler emits — the paper's Table 1
/// plus the extra counters referenced by its figures (`inst_issued`,
/// `l2_read_transactions`, `gld_throughput`, `ldst_fu_utilization`, ...).
pub const COUNTER_CATALOG: &[CounterInfo] = &[
    CounterInfo { name: "shared_replay_overhead", meaning: "average number of replays due to shared memory conflicts for each instruction executed", available: arch_mask::ALL },
    CounterInfo { name: "shared_load", meaning: "number of executed shared load instructions, increments per warp on a multiprocessor", available: arch_mask::ALL },
    CounterInfo { name: "shared_store", meaning: "number of executed shared store instructions, increments per warp on a multiprocessor", available: arch_mask::ALL },
    CounterInfo { name: "inst_replay_overhead", meaning: "average number of replays for each instruction executed", available: arch_mask::ALL },
    CounterInfo { name: "l1_global_load_hit", meaning: "number of cache lines that hit in L1 for global memory load accesses", available: arch_mask::L1_GLOBAL },
    CounterInfo { name: "l1_global_load_miss", meaning: "number of cache lines that miss in L1 for global memory load accesses", available: arch_mask::L1_GLOBAL },
    CounterInfo { name: "l1_shared_bank_conflict", meaning: "number of shared memory bank conflicts", available: arch_mask::FERMI },
    CounterInfo { name: "shared_load_replay", meaning: "replays of shared load instructions due to bank conflicts", available: arch_mask::KEPLER },
    CounterInfo { name: "shared_store_replay", meaning: "replays of shared store instructions due to bank conflicts", available: arch_mask::KEPLER },
    CounterInfo { name: "shared_ld_bank_conflict", meaning: "number of shared load bank conflicts (Maxwell-era event naming)", available: arch_mask::POST_KEPLER },
    CounterInfo { name: "shared_st_bank_conflict", meaning: "number of shared store bank conflicts (Maxwell-era event naming)", available: arch_mask::POST_KEPLER },
    CounterInfo { name: "global_hit_rate", meaning: "hit rate of global loads in the sectored unified L1 (%)", available: arch_mask::PASCAL | arch_mask::VOLTA },
    CounterInfo { name: "gld_request", meaning: "number of executed global load instructions, increments per warp on a multiprocessor", available: arch_mask::ALL },
    CounterInfo { name: "gst_request", meaning: "similar to gld_request for store instructions", available: arch_mask::ALL },
    CounterInfo { name: "global_load_transaction", meaning: "number of global load transactions; increments per transaction which can be 32, 64, 96 or 128 bytes", available: arch_mask::ALL },
    CounterInfo { name: "global_store_transaction", meaning: "number of global store transactions; increments per transaction which can be 32, 64, 96 or 128 bytes", available: arch_mask::ALL },
    CounterInfo { name: "gld_requested_throughput", meaning: "requested global memory load throughput (GB/s)", available: arch_mask::ALL },
    CounterInfo { name: "gst_requested_throughput", meaning: "requested global memory store throughput (GB/s)", available: arch_mask::ALL },
    CounterInfo { name: "gld_throughput", meaning: "achieved global memory load throughput (GB/s)", available: arch_mask::ALL },
    CounterInfo { name: "gst_throughput", meaning: "achieved global memory store throughput (GB/s)", available: arch_mask::ALL },
    CounterInfo { name: "achieved_occupancy", meaning: "ratio of average active warps per active cycle to the maximum number of warps per SM", available: arch_mask::ALL },
    CounterInfo { name: "l2_read_transactions", meaning: "memory read transactions at L2 cache", available: arch_mask::ALL },
    CounterInfo { name: "l2_write_transactions", meaning: "memory write transactions at L2 cache", available: arch_mask::ALL },
    CounterInfo { name: "l2_read_throughput", meaning: "memory read throughput at L2 cache (GB/s)", available: arch_mask::ALL },
    CounterInfo { name: "l2_write_throughput", meaning: "memory write throughput at L2 cache (GB/s)", available: arch_mask::ALL },
    CounterInfo { name: "dram_read_transactions", meaning: "device memory read transactions", available: arch_mask::ALL },
    CounterInfo { name: "dram_write_transactions", meaning: "device memory write transactions", available: arch_mask::ALL },
    CounterInfo { name: "ipc", meaning: "number of instructions executed per cycle", available: arch_mask::ALL },
    CounterInfo { name: "issue_slot_utilization", meaning: "percentage of issue slots that issued at least one instruction, averaged across all cycles", available: arch_mask::ALL },
    CounterInfo { name: "warp_execution_efficiency", meaning: "ratio of the average active threads per warp to the maximum number of threads per warp supported by the multiprocessor", available: arch_mask::ALL },
    CounterInfo { name: "inst_executed", meaning: "number of warp instructions executed (does not include replays)", available: arch_mask::ALL },
    CounterInfo { name: "inst_issued", meaning: "number of warp instructions issued (includes replays)", available: arch_mask::ALL },
    CounterInfo { name: "branch", meaning: "number of branch instructions executed per warp on a multiprocessor", available: arch_mask::ALL },
    CounterInfo { name: "divergent_branch", meaning: "number of divergent branches within a warp", available: arch_mask::ALL },
    CounterInfo { name: "ldst_fu_utilization", meaning: "utilization level of the load/store function units", available: arch_mask::ALL },
];

/// Looks up a counter's catalogue entry by name.
pub fn counter_info(name: &str) -> Option<&'static CounterInfo> {
    COUNTER_CATALOG.iter().find(|c| c.name == name)
}

/// Whether a counter exists on the given architecture.
pub fn counter_available(name: &str, arch: GpuArchitecture) -> bool {
    counter_info(name).is_some_and(|c| c.on(arch))
}

/// All counter names available on an architecture, in catalogue order.
pub fn counters_for(arch: GpuArchitecture) -> Vec<&'static str> {
    COUNTER_CATALOG
        .iter()
        .filter(|c| c.on(arch))
        .map(|c| c.name)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_no_duplicate_names() {
        let mut names: Vec<_> = COUNTER_CATALOG.iter().map(|c| c.name).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn fermi_specific_counters_absent_on_kepler() {
        assert!(counter_available(
            "l1_shared_bank_conflict",
            GpuArchitecture::Fermi
        ));
        assert!(!counter_available(
            "l1_shared_bank_conflict",
            GpuArchitecture::Kepler
        ));
        assert!(counter_available(
            "l1_global_load_miss",
            GpuArchitecture::Fermi
        ));
        assert!(!counter_available(
            "l1_global_load_miss",
            GpuArchitecture::Kepler
        ));
    }

    #[test]
    fn kepler_specific_counters_absent_on_fermi() {
        assert!(counter_available(
            "shared_load_replay",
            GpuArchitecture::Kepler
        ));
        assert!(!counter_available(
            "shared_load_replay",
            GpuArchitecture::Fermi
        ));
        assert!(counter_available(
            "shared_store_replay",
            GpuArchitecture::Kepler
        ));
        assert!(!counter_available(
            "shared_store_replay",
            GpuArchitecture::Fermi
        ));
    }

    #[test]
    fn table1_counters_all_present() {
        for name in [
            "shared_replay_overhead",
            "shared_load",
            "shared_store",
            "inst_replay_overhead",
            "l1_global_load_hit",
            "l1_global_load_miss",
            "gld_request",
            "gst_request",
            "global_store_transaction",
            "gld_requested_throughput",
            "achieved_occupancy",
            "l2_read_throughput",
            "l2_write_transactions",
            "ipc",
            "issue_slot_utilization",
            "warp_execution_efficiency",
        ] {
            assert!(counter_info(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn counterset_roundtrip() {
        let mut cs = CounterSet::new();
        cs.set("ipc", 1.5);
        cs.set("branch", 42.0);
        assert_eq!(cs.get("ipc"), Some(1.5));
        assert_eq!(cs.get("nope"), None);
        assert_eq!(cs.len(), 2);
        assert!(cs.contains("branch"));
        let names = cs.names();
        assert_eq!(names, vec!["branch", "ipc"]); // sorted
    }

    #[test]
    fn accumulate_sums_fields() {
        let mut a = RawEvents {
            inst_executed: 10.0,
            time_seconds: 1.0,
            ..RawEvents::default()
        };
        let b = RawEvents {
            inst_executed: 5.0,
            time_seconds: 0.5,
            ..RawEvents::default()
        };
        a.accumulate(&b);
        assert_eq!(a.inst_executed, 15.0);
        assert_eq!(a.time_seconds, 1.5);
    }

    #[test]
    fn scaled_counts_leaves_time_alone() {
        let a = RawEvents {
            inst_executed: 10.0,
            gld_request: 4.0,
            time_seconds: 2.0,
            elapsed_cycles: 100.0,
            ..RawEvents::default()
        };
        let s = a.scaled_counts(3.0);
        assert_eq!(s.inst_executed, 30.0);
        assert_eq!(s.gld_request, 12.0);
        // Time and elapsed cycles reflect the wave model, not per-block
        // scaling, and must not be multiplied here.
        assert_eq!(s.time_seconds, 2.0);
        assert_eq!(s.elapsed_cycles, 100.0);
    }

    #[test]
    fn counters_for_returns_arch_subsets() {
        let fermi = counters_for(GpuArchitecture::Fermi);
        let kepler = counters_for(GpuArchitecture::Kepler);
        assert!(fermi.contains(&"l1_global_load_hit"));
        assert!(!kepler.contains(&"l1_global_load_hit"));
        assert!(kepler.contains(&"shared_load_replay"));
        assert!(!fermi.contains(&"shared_load_replay"));
        // Common counters exist in both.
        for c in ["ipc", "gld_request", "achieved_occupancy"] {
            assert!(fermi.contains(&c) && kepler.contains(&c));
        }
    }

    #[test]
    fn availability_masks_track_memory_paths_across_the_zoo() {
        // L1 global hit/miss exists exactly where globals are L1-cached:
        // Fermi's line-tagged L1 and the Pascal/Volta sectored L1s.
        for (arch, cached) in [
            (GpuArchitecture::Fermi, true),
            (GpuArchitecture::Kepler, false),
            (GpuArchitecture::Maxwell, false),
            (GpuArchitecture::Pascal, true),
            (GpuArchitecture::Volta, true),
        ] {
            assert_eq!(
                counter_available("l1_global_load_hit", arch),
                cached,
                "l1_global_load_hit on {}",
                arch.name()
            );
            assert_eq!(
                counter_available("l1_global_load_miss", arch),
                cached,
                "l1_global_load_miss on {}",
                arch.name()
            );
        }
        // Bank conflicts are reported through three generation-specific
        // spellings, mutually exclusive per architecture.
        for arch in GpuArchitecture::all() {
            let fermi_style = counter_available("l1_shared_bank_conflict", arch);
            let kepler_style = counter_available("shared_load_replay", arch);
            let maxwell_style = counter_available("shared_ld_bank_conflict", arch);
            assert_eq!(
                [fermi_style, kepler_style, maxwell_style]
                    .iter()
                    .filter(|&&b| b)
                    .count(),
                1,
                "exactly one conflict-counter spelling on {}",
                arch.name()
            );
        }
        // global_hit_rate is a sectored-L1 metric only.
        assert!(counter_available(
            "global_hit_rate",
            GpuArchitecture::Pascal
        ));
        assert!(counter_available("global_hit_rate", GpuArchitecture::Volta));
        assert!(!counter_available(
            "global_hit_rate",
            GpuArchitecture::Fermi
        ));
        assert!(!counter_available(
            "global_hit_rate",
            GpuArchitecture::Kepler
        ));
        assert!(!counter_available(
            "global_hit_rate",
            GpuArchitecture::Maxwell
        ));
    }

    #[test]
    fn arch_mask_bits_match_arch_bit() {
        use super::arch_mask;
        assert_eq!(arch_mask::FERMI, GpuArchitecture::Fermi.bit());
        assert_eq!(arch_mask::KEPLER, GpuArchitecture::Kepler.bit());
        assert_eq!(arch_mask::MAXWELL, GpuArchitecture::Maxwell.bit());
        assert_eq!(arch_mask::PASCAL, GpuArchitecture::Pascal.bit());
        assert_eq!(arch_mask::VOLTA, GpuArchitecture::Volta.bit());
        let all = GpuArchitecture::all()
            .into_iter()
            .fold(0u8, |m, a| m | a.bit());
        assert_eq!(arch_mask::ALL, all);
    }

    #[test]
    fn every_catalog_entry_exists_somewhere() {
        for c in COUNTER_CATALOG {
            assert_ne!(c.available, 0, "{} available nowhere", c.name);
            assert_eq!(
                c.available & !arch_mask::ALL,
                0,
                "{} sets unknown architecture bits",
                c.name
            );
        }
    }
}
