//! Basic-block segmentation of warp instruction streams.
//!
//! A *basic block* here is a maximal run of warp instructions ending at a
//! control boundary — a [`WarpInstruction::Branch`] or
//! [`WarpInstruction::Barrier`] (the terminator belongs to its block) — or at
//! the end of the stream. This mirrors how compilers segment straight-line
//! code, specialised to the trace vocabulary: branches are the only explicit
//! control transfers and barriers are block-wide scheduling boundaries.
//!
//! Block ids are **content-derived and structural**: a stable 64-bit digest
//! of the instruction *shapes* (kind, folded ALU count, access width,
//! divergence flag) with addresses, offsets, and lane masks deliberately
//! excluded. The same code region therefore hashes to the same id in every
//! warp and every thread block, even when boundary warps run with partial
//! masks or lanes touch different addresses — which is exactly what lets
//! per-block counter attributions aggregate across a whole launch (see
//! `bf-analyze`'s attribution module). Two genuinely different code regions
//! with identical instruction shapes also merge; that is accepted and
//! documented behaviour, not a defect, since attribution cares about *cost
//! structure*, not provenance.

use crate::trace::WarpInstruction;

/// One basic block within a warp's instruction stream: the half-open
/// instruction index range `[start, end)` plus the content-derived id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSpan {
    /// Index of the block's first instruction in the stream.
    pub start: usize,
    /// One past the block's last instruction (the terminator, when present).
    pub end: usize,
    /// Stable content-derived block id (see [`block_content_id`]).
    pub id: u64,
}

impl BlockSpan {
    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the span covers no instructions (never produced by
    /// [`segment_stream`], but `len`/`is_empty` come in pairs).
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }
}

/// True when the instruction ends a basic block.
pub fn is_terminator(i: &WarpInstruction) -> bool {
    matches!(i, WarpInstruction::Branch { .. } | WarpInstruction::Barrier)
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// Folds one instruction's *structural* shape into the digest: a kind tag
/// plus the fields that describe the code, never the data (no addresses,
/// offsets, or lane masks — those vary per warp and per thread block for
/// the same code region).
fn fold_instruction(hash: &mut u64, i: &WarpInstruction) {
    match i {
        WarpInstruction::Alu { count, .. } => {
            fnv1a(hash, &[1]);
            fnv1a(hash, &count.to_le_bytes());
        }
        WarpInstruction::Sfu { .. } => fnv1a(hash, &[2]),
        WarpInstruction::LoadGlobal { width, .. } => fnv1a(hash, &[3, *width]),
        WarpInstruction::StoreGlobal { width, .. } => fnv1a(hash, &[4, *width]),
        WarpInstruction::LoadShared { width, .. } => fnv1a(hash, &[5, *width]),
        WarpInstruction::StoreShared { width, .. } => fnv1a(hash, &[6, *width]),
        WarpInstruction::Branch { divergent, .. } => fnv1a(hash, &[7, *divergent as u8]),
        WarpInstruction::Barrier => fnv1a(hash, &[8]),
    }
}

/// The stable content-derived id of a run of instructions: a 64-bit FNV-1a
/// digest over the structural encoding of each instruction in order. The
/// hash function is fixed here (not `DefaultHasher`) so ids are stable
/// across processes, platforms, and compiler versions — they appear in
/// persisted lint reports.
pub fn block_content_id(instrs: &[WarpInstruction]) -> u64 {
    let mut hash = FNV_OFFSET;
    for i in instrs {
        fold_instruction(&mut hash, i);
    }
    hash
}

/// Segments one warp's instruction stream into basic blocks.
///
/// Every instruction belongs to exactly one block, blocks are contiguous and
/// in stream order, and each block's id is the content digest of its own
/// instructions. An empty stream yields no blocks.
pub fn segment_stream(stream: &[WarpInstruction]) -> Vec<BlockSpan> {
    let mut spans = Vec::new();
    let mut start = 0usize;
    for (i, instr) in stream.iter().enumerate() {
        if is_terminator(instr) {
            spans.push(BlockSpan {
                start,
                end: i + 1,
                id: block_content_id(&stream[start..i + 1]),
            });
            start = i + 1;
        }
    }
    if start < stream.len() {
        spans.push(BlockSpan {
            start,
            end: stream.len(),
            id: block_content_id(&stream[start..]),
        });
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::FULL_MASK;

    fn alu(count: u32) -> WarpInstruction {
        WarpInstruction::Alu {
            count,
            mask: FULL_MASK,
        }
    }

    fn branch(divergent: bool) -> WarpInstruction {
        WarpInstruction::Branch {
            divergent,
            mask: FULL_MASK,
        }
    }

    fn load(addrs: Vec<u64>, mask: u32) -> WarpInstruction {
        WarpInstruction::LoadGlobal {
            addrs,
            width: 4,
            mask,
        }
    }

    #[test]
    fn segmentation_covers_the_stream_exactly_once() {
        let stream = vec![
            alu(2),
            load((0..32).map(|i| i * 4).collect(), FULL_MASK),
            branch(false),
            alu(1),
            WarpInstruction::Barrier,
            alu(3),
        ];
        let spans = segment_stream(&stream);
        assert_eq!(spans.len(), 3);
        assert_eq!((spans[0].start, spans[0].end), (0, 3));
        assert_eq!((spans[1].start, spans[1].end), (3, 5));
        assert_eq!((spans[2].start, spans[2].end), (5, 6));
        // Full coverage, no overlap.
        assert_eq!(spans.iter().map(BlockSpan::len).sum::<usize>(), 6);
        for w in spans.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn trailing_run_without_terminator_is_a_block() {
        let spans = segment_stream(&[alu(1), alu(2)]);
        assert_eq!(spans.len(), 1);
        assert_eq!((spans[0].start, spans[0].end), (0, 2));
        assert!(!spans[0].is_empty());
        assert!(segment_stream(&[]).is_empty());
    }

    #[test]
    fn ids_ignore_addresses_and_masks_but_not_structure() {
        let a = vec![alu(2), load((0..32).map(|i| i * 4).collect(), FULL_MASK)];
        let b = vec![alu(2), load((0..32).map(|i| i * 64).collect(), 0xFFFF)];
        assert_eq!(block_content_id(&a), block_content_id(&b));
        // A different ALU fold count is a different code region.
        let c = vec![alu(3), load((0..32).map(|i| i * 4).collect(), FULL_MASK)];
        assert_ne!(block_content_id(&a), block_content_id(&c));
        // Divergence is structural: it changes the issue count.
        assert_ne!(
            block_content_id(&[branch(true)]),
            block_content_id(&[branch(false)])
        );
    }

    #[test]
    fn same_code_region_matches_across_warps() {
        // Two warps of the same kernel region: same shapes, different data.
        let w0 = vec![
            load((0..32).map(|i| 0x1000 + i * 4).collect(), FULL_MASK),
            alu(4),
            WarpInstruction::Barrier,
        ];
        let w1 = vec![
            load((0..32).map(|i| 0x2000 + i * 4).collect(), 0x00FF),
            alu(4),
            WarpInstruction::Barrier,
        ];
        let s0 = segment_stream(&w0);
        let s1 = segment_stream(&w1);
        assert_eq!(s0[0].id, s1[0].id);
    }
}
